#![warn(missing_docs)]
//! # thrifty-barrier
//!
//! A from-scratch reproduction of *"The Thrifty Barrier: Energy-Aware
//! Synchronization in Shared-Memory Multiprocessors"* (Jian Li, José F.
//! Martínez, Michael C. Huang; HPCA 2004): the algorithm, the CC-NUMA
//! multiprocessor simulator it was evaluated on, the energy model, the
//! workload models, and a real-threads runtime applying the same algorithm
//! with OS-level sleep analogs.
//!
//! The facade re-exports each subsystem under a short path:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `tb-core` | the thrifty barrier algorithm: BIT prediction, BRTS timing, sleep policy, wake-up planning |
//! | [`machine`] | `tb-machine` | the simulated 64-node machine and experiment runners |
//! | [`mem`] | `tb-mem` | caches, directory MESI coherence, hypercube network |
//! | [`energy`] | `tb-energy` | Wattch-style power model, sleep states, energy ledgers |
//! | [`workloads`] | `tb-workloads` | calibrated SPLASH-2-like barrier workloads |
//! | [`runtime`] | `tb-runtime` | the real-threads thrifty barrier |
//! | [`msg`] | `tb-msg` | the thrifty barrier on a message-passing cluster |
//! | [`trace`] | `tb-trace` | per-episode event tracing: ring-buffer capture, Perfetto/JSONL export, accuracy analysis |
//! | [`sim`] | `tb-sim` | discrete-event kernel, statistics, deterministic RNG |
//!
//! # Quick start
//!
//! ```
//! use thrifty_barrier::machine::run::run_app;
//! use thrifty_barrier::core::SystemConfig;
//! use thrifty_barrier::workloads::AppSpec;
//!
//! let app = AppSpec::by_name("FMM").unwrap();
//! let baseline = run_app(&app, 16, 42, SystemConfig::Baseline);
//! let thrifty = run_app(&app, 16, 42, SystemConfig::Thrifty);
//! println!(
//!     "FMM: thrifty saves {:.1}% energy at {:+.2}% runtime",
//!     thrifty.energy_savings_vs(&baseline) * 100.0,
//!     thrifty.slowdown_vs(&baseline) * 100.0,
//! );
//! assert!(thrifty.total_energy() < baseline.total_energy());
//! ```

pub mod cli;

pub use tb_core as core;
pub use tb_energy as energy;
pub use tb_machine as machine;
pub use tb_mem as mem;
pub use tb_msg as msg;
pub use tb_runtime as runtime;
pub use tb_sim as sim;
pub use tb_trace as trace;
pub use tb_workloads as workloads;
