//! Command-line option parsing for the `thrifty-barrier` binary.
//!
//! Lives in the library (rather than `main.rs`) so the rejection rules are
//! unit-testable and integration tests can build the exact option sets the
//! binary would.

use tb_core::{FaultPlan, SystemConfig};
use tb_machine::run::PAPER_SEED;
use tb_workloads::AppSpec;

/// Parsed command options (the flags shared by every subcommand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Machine size (power of two in `2..=64`).
    pub nodes: u16,
    /// Base workload seed.
    pub seed: u64,
    /// Number of replicated seeds (`seed, seed+1, …`).
    pub seeds: u64,
    /// Worker-pool size; `0` means one worker per hardware thread.
    pub jobs: usize,
    /// Configuration name for `run`/`trace`.
    pub config: Option<String>,
    /// Emit machine-readable JSON instead of the human tables.
    pub json: bool,
    /// Output file for `trace`.
    pub out: Option<String>,
    /// Trace export format (`perfetto` or `jsonl`).
    pub format: String,
    /// Per-thread trace ring capacity (events).
    pub ring: usize,
    /// Fault scenario name for `sweep --faults` (validated against
    /// [`FaultPlan::scenario_names`] at parse time).
    pub faults: Option<String>,
    /// Transient-failure retry budget per cell for supervised sweeps
    /// (`--retries`, at most [`MAX_RETRIES`]).
    pub retries: u32,
    /// Per-attempt wall-clock deadline in milliseconds (`--timeout-ms`);
    /// `None` waits indefinitely.
    pub timeout_ms: Option<u64>,
    /// Write a crash-consistent sweep journal to this path (`--journal`).
    pub journal: Option<String>,
    /// Resume a sweep from an existing journal (`--resume`); mutually
    /// exclusive with `--journal` (resume appends to the journal it
    /// reads).
    pub resume: Option<String>,
}

/// Cap on `--retries`: backoff doubles per attempt, so anything deeper
/// than this spends more time sleeping than simulating.
pub const MAX_RETRIES: u32 = 10;

impl Default for Options {
    fn default() -> Self {
        Options {
            nodes: 64,
            seed: PAPER_SEED,
            seeds: 1,
            jobs: 0,
            config: None,
            json: false,
            out: None,
            format: "perfetto".to_string(),
            ring: 1 << 16,
            faults: None,
            retries: 0,
            timeout_ms: None,
            journal: None,
            resume: None,
        }
    }
}

impl Options {
    /// The replication seed list: `seeds` consecutive seeds starting at
    /// `seed`.
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds).map(|i| self.seed.wrapping_add(i)).collect()
    }
}

/// Resolves an application by name (case-insensitive).
///
/// # Errors
///
/// Unknown names are rejected with the list of valid application names.
pub fn app_by_name(name: &str) -> Result<AppSpec, String> {
    AppSpec::splash2()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let options: Vec<String> = AppSpec::splash2().into_iter().map(|a| a.name).collect();
            format!(
                "unknown application {name:?} (options: {})",
                options.join(", ")
            )
        })
}

/// Resolves a system configuration by name or single-letter code
/// (case-insensitive on names).
///
/// # Errors
///
/// Unknown names are rejected with the list of valid configuration names.
pub fn config_by_name(name: &str) -> Result<SystemConfig, String> {
    SystemConfig::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name) || c.letter().to_string() == name)
        .ok_or_else(|| {
            let options: Vec<&str> = SystemConfig::ALL.iter().map(|c| c.name()).collect();
            format!("unknown config {name:?} (options: {})", options.join(", "))
        })
}

/// Parses the option tail of a subcommand.
///
/// # Errors
///
/// Returns a human-readable message on unknown flags, missing values, or
/// out-of-range values (non-power-of-two `--nodes`, zero `--seeds` or
/// `--ring`, unknown `--format`).
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--nodes" => {
                let v = it.next().ok_or("--nodes needs a value")?;
                opts.nodes = v.parse().map_err(|_| format!("bad node count {v:?}"))?;
                if !opts.nodes.is_power_of_two() || !(2..=64).contains(&opts.nodes) {
                    return Err(format!(
                        "node count must be a power of two in 2..=64, got {}",
                        opts.nodes
                    ));
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                opts.seeds = v.parse().map_err(|_| format!("bad seed count {v:?}"))?;
                if opts.seeds == 0 {
                    return Err("--seeds must be at least 1".to_string());
                }
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad job count {v:?}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--config" => {
                opts.config = Some(it.next().ok_or("--config needs a value")?.clone());
            }
            "--json" => opts.json = true,
            "--out" => {
                opts.out = Some(it.next().ok_or("--out needs a value")?.clone());
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                if v != "perfetto" && v != "jsonl" {
                    return Err(format!("--format must be perfetto or jsonl, got {v:?}"));
                }
                opts.format = v.clone();
            }
            "--ring" => {
                let v = it.next().ok_or("--ring needs a value")?;
                opts.ring = v.parse().map_err(|_| format!("bad ring capacity {v:?}"))?;
                if opts.ring == 0 {
                    return Err("ring capacity must be positive".to_string());
                }
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs a value")?;
                if FaultPlan::by_name(v, 0).is_none() {
                    return Err(format!(
                        "unknown fault scenario {v:?} (options: {})",
                        FaultPlan::scenario_names().join(", ")
                    ));
                }
                opts.faults = Some(v.clone());
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                opts.retries = v.parse().map_err(|_| format!("bad retry count {v:?}"))?;
                if opts.retries > MAX_RETRIES {
                    return Err(format!(
                        "--retries must be at most {MAX_RETRIES}, got {}",
                        opts.retries
                    ));
                }
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                opts.timeout_ms = Some(v.parse().map_err(|_| format!("bad timeout {v:?}"))?);
                if opts.timeout_ms == Some(0) {
                    return Err("--timeout-ms must be positive".to_string());
                }
            }
            "--journal" => {
                opts.journal = Some(it.next().ok_or("--journal needs a value")?.clone());
            }
            "--resume" => {
                opts.resume = Some(it.next().ok_or("--resume needs a value")?.clone());
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if opts.journal.is_some() && opts.resume.is_some() {
        return Err(
            "--journal and --resume are mutually exclusive (resume appends to the journal \
             it reads)"
                .to_string(),
        );
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_options(&owned)
    }

    #[test]
    fn defaults_without_flags() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, Options::default());
        assert_eq!(opts.nodes, 64);
        assert_eq!(opts.seed, PAPER_SEED);
        assert_eq!(opts.seeds, 1);
        assert_eq!(opts.jobs, 0, "0 = one worker per hardware thread");
        assert_eq!(opts.seed_list(), vec![PAPER_SEED]);
    }

    #[test]
    fn full_flag_set_round_trips() {
        let opts = parse(&[
            "--nodes", "16", "--seed", "9", "--seeds", "3", "--jobs", "4", "--config", "Thrifty",
            "--json", "--out", "x.json", "--format", "jsonl", "--ring", "1024",
        ])
        .unwrap();
        assert_eq!(opts.nodes, 16);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.seeds, 3);
        assert_eq!(opts.seed_list(), vec![9, 10, 11]);
        assert_eq!(opts.jobs, 4);
        assert_eq!(opts.config.as_deref(), Some("Thrifty"));
        assert!(opts.json);
        assert_eq!(opts.out.as_deref(), Some("x.json"));
        assert_eq!(opts.format, "jsonl");
        assert_eq!(opts.ring, 1024);
    }

    #[test]
    fn rejects_non_power_of_two_nodes() {
        let err = parse(&["--nodes", "12"]).unwrap_err();
        assert!(err.contains("power of two"), "{err}");
        assert!(parse(&["--nodes", "128"]).is_err(), "above the 64 cap");
        assert!(parse(&["--nodes", "1"]).is_err(), "below the 2 floor");
        assert!(parse(&["--nodes", "banana"]).is_err());
        assert!(parse(&["--nodes"]).is_err(), "missing value");
    }

    #[test]
    fn rejects_zero_ring() {
        let err = parse(&["--ring", "0"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn rejects_bad_format() {
        let err = parse(&["--format", "csv"]).unwrap_err();
        assert!(err.contains("perfetto or jsonl"), "{err}");
        assert!(parse(&["--format", "perfetto"]).is_ok());
        assert!(parse(&["--format", "jsonl"]).is_ok());
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
        assert!(err.contains("--frobnicate"), "{err}");
        // Bare positional words are unknown options too.
        assert!(parse(&["fast"]).is_err());
    }

    #[test]
    fn rejects_zero_jobs_and_zero_seeds() {
        assert!(parse(&["--jobs", "0"]).unwrap_err().contains("at least 1"));
        assert!(parse(&["--seeds", "0"]).unwrap_err().contains("at least 1"));
        assert!(parse(&["--jobs", "-1"]).is_err());
        assert!(parse(&["--seeds"]).is_err(), "missing value");
    }

    #[test]
    fn accepts_every_named_fault_scenario() {
        for name in FaultPlan::scenario_names() {
            let opts = parse(&["--faults", name]).unwrap();
            assert_eq!(opts.faults.as_deref(), Some(*name));
        }
        // Case-insensitive, like the other name lookups.
        assert!(parse(&["--faults", "STORM"]).is_ok());
    }

    #[test]
    fn rejects_unknown_fault_scenario_listing_options() {
        let err = parse(&["--faults", "meteor"]).unwrap_err();
        assert!(err.contains("unknown fault scenario"), "{err}");
        for name in FaultPlan::scenario_names() {
            assert!(err.contains(name), "error lists {name:?}: {err}");
        }
        assert!(parse(&["--faults"]).is_err(), "missing value");
    }

    #[test]
    fn supervision_flags_round_trip() {
        let opts = parse(&[
            "--retries",
            "3",
            "--timeout-ms",
            "5000",
            "--journal",
            "sweep.jsonl",
        ])
        .unwrap();
        assert_eq!(opts.retries, 3);
        assert_eq!(opts.timeout_ms, Some(5000));
        assert_eq!(opts.journal.as_deref(), Some("sweep.jsonl"));
        assert_eq!(opts.resume, None);
        let opts = parse(&["--resume", "sweep.jsonl"]).unwrap();
        assert_eq!(opts.resume.as_deref(), Some("sweep.jsonl"));
        assert_eq!(opts.journal, None);
    }

    #[test]
    fn rejects_bad_retries() {
        let err = parse(&["--retries", "11"]).unwrap_err();
        assert!(err.contains("at most 10"), "{err}");
        assert!(
            parse(&["--retries", "10"]).is_ok(),
            "the cap itself is fine"
        );
        assert!(parse(&["--retries", "many"]).is_err());
        assert!(parse(&["--retries", "-1"]).is_err());
        assert!(parse(&["--retries"]).is_err(), "missing value");
    }

    #[test]
    fn rejects_bad_timeout() {
        let err = parse(&["--timeout-ms", "0"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        assert!(parse(&["--timeout-ms", "soon"]).is_err());
        assert!(parse(&["--timeout-ms"]).is_err(), "missing value");
        assert_eq!(
            parse(&["--timeout-ms", "250"]).unwrap().timeout_ms,
            Some(250)
        );
    }

    #[test]
    fn rejects_journal_resume_conflict() {
        let err = parse(&["--journal", "a.jsonl", "--resume", "b.jsonl"]).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        // Order-independent.
        let err = parse(&["--resume", "b.jsonl", "--journal", "a.jsonl"]).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        assert!(parse(&["--journal"]).is_err(), "missing value");
        assert!(parse(&["--resume"]).is_err(), "missing value");
    }

    #[test]
    fn unknown_app_error_lists_every_application() {
        let err = app_by_name("Raytrace").unwrap_err();
        assert!(err.contains("unknown application"), "{err}");
        for app in AppSpec::splash2() {
            assert!(err.contains(&app.name), "error lists {:?}: {err}", app.name);
        }
        assert_eq!(app_by_name("ocean").unwrap().name, "Ocean", "case folded");
    }

    #[test]
    fn unknown_config_error_lists_every_configuration() {
        let err = config_by_name("Frugal").unwrap_err();
        assert!(err.contains("unknown config"), "{err}");
        for config in SystemConfig::ALL {
            assert!(err.contains(config.name()), "error lists {}", config.name());
        }
        assert_eq!(
            config_by_name("thrifty").unwrap(),
            SystemConfig::Thrifty,
            "case folded"
        );
        assert_eq!(
            config_by_name(&SystemConfig::Ideal.letter().to_string()).unwrap(),
            SystemConfig::Ideal,
            "single-letter code"
        );
    }
}
