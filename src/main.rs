//! `thrifty-barrier` — command-line front end to the simulator.
//!
//! ```text
//! thrifty-barrier list
//! thrifty-barrier run <app> [--nodes N] [--seed S] [--config NAME] [--json]
//! thrifty-barrier sweep [--nodes N] [--seed S] [--json]
//! thrifty-barrier cutoff [--nodes N] [--seed S]
//! thrifty-barrier trace <app> --out FILE [--format perfetto|jsonl] [--config NAME]
//! ```
//!
//! The full table/figure reproduction lives in the bench targets
//! (`cargo bench`); this binary is the interactive entry point.

use thrifty_barrier::core::SystemConfig;
use thrifty_barrier::machine::run::{
    run_config_matrix, run_trace, run_trace_recording, run_trace_with, PAPER_SEED,
};
use thrifty_barrier::machine::RunReport;
use thrifty_barrier::trace::PredictionAccuracyReport;
use thrifty_barrier::workloads::AppSpec;

struct Options {
    nodes: u16,
    seed: u64,
    config: Option<String>,
    json: bool,
    out: Option<String>,
    format: String,
    ring: usize,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        nodes: 64,
        seed: PAPER_SEED,
        config: None,
        json: false,
        out: None,
        format: "perfetto".to_string(),
        ring: 1 << 16,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--nodes" => {
                let v = it.next().ok_or("--nodes needs a value")?;
                opts.nodes = v.parse().map_err(|_| format!("bad node count {v:?}"))?;
                if !opts.nodes.is_power_of_two() || !(2..=64).contains(&opts.nodes) {
                    return Err(format!(
                        "node count must be a power of two in 2..=64, got {}",
                        opts.nodes
                    ));
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--config" => {
                opts.config = Some(it.next().ok_or("--config needs a value")?.clone());
            }
            "--json" => opts.json = true,
            "--out" => {
                opts.out = Some(it.next().ok_or("--out needs a value")?.clone());
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                if v != "perfetto" && v != "jsonl" {
                    return Err(format!("--format must be perfetto or jsonl, got {v:?}"));
                }
                opts.format = v.clone();
            }
            "--ring" => {
                let v = it.next().ok_or("--ring needs a value")?;
                opts.ring = v.parse().map_err(|_| format!("bad ring capacity {v:?}"))?;
                if opts.ring == 0 {
                    return Err("ring capacity must be positive".to_string());
                }
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn app_by_name(name: &str) -> Result<AppSpec, String> {
    AppSpec::splash2()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown application {name:?} (try `list`)"))
}

fn config_by_name(name: &str) -> Option<SystemConfig> {
    SystemConfig::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name) || c.letter().to_string() == name)
}

fn print_report(r: &RunReport, base: Option<&RunReport>) {
    println!("{r}");
    if let Some(base) = base {
        println!(
            "  vs baseline: energy {:+.1}%, time {:+.2}%",
            -r.energy_savings_vs(base) * 100.0,
            r.slowdown_vs(base) * 100.0
        );
    }
    let c = &r.counts;
    println!(
        "  {} episodes, {} sleeps ({} int / {} ext wake-ups, {} early), {} spins, \
         {} flushes, {} cut-off disables",
        c.episodes,
        c.total_sleeps(),
        c.internal_wakeups,
        c.external_wakeups,
        c.early_wakeups,
        c.spins,
        c.flushes,
        c.cutoff_disables
    );
}

fn cmd_list() {
    println!(
        "{:<11} {:<36} {:>10} {:>8}",
        "app", "problem size", "imbalance", "target"
    );
    for app in AppSpec::splash2() {
        println!(
            "{:<11} {:<36} {:>9.2}% {:>8}",
            app.name,
            app.problem_size,
            app.target_imbalance * 100.0,
            if app.is_target() { "yes" } else { "no" }
        );
    }
}

fn cmd_run(app_name: &str, opts: &Options) -> Result<(), String> {
    let app = app_by_name(app_name)?;
    match &opts.config {
        Some(name) => {
            let sys = config_by_name(name).ok_or_else(|| {
                format!("unknown config {name:?} (Baseline/Thrifty-Halt/Oracle-Halt/Thrifty/Ideal)")
            })?;
            let trace = app.generate(opts.nodes as usize, opts.seed);
            let base = run_trace(&trace, opts.nodes, SystemConfig::Baseline);
            let r = if sys == SystemConfig::Baseline {
                base.clone()
            } else {
                run_trace(&trace, opts.nodes, sys)
            };
            if opts.json {
                println!("{}", serde::json::to_string(&r));
            } else {
                print_report(&r, Some(&base));
            }
        }
        None => {
            let reports = run_config_matrix(&app, opts.nodes, opts.seed);
            if opts.json {
                println!("{}", serde::json::to_string(&reports));
            } else {
                let base = reports[0].clone();
                for r in &reports {
                    print_report(r, Some(&base));
                }
            }
        }
    }
    Ok(())
}

fn cmd_sweep(opts: &Options) {
    if opts.json {
        let mut all: Vec<RunReport> = Vec::new();
        for app in AppSpec::splash2() {
            all.extend(run_config_matrix(&app, opts.nodes, opts.seed));
        }
        println!("{}", serde::json::to_string(&all));
        return;
    }
    println!(
        "{:<11} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>8}",
        "app", "imbal", "E:Halt", "E:Orac", "E:Thr", "E:Ideal", "slowdn"
    );
    for app in AppSpec::splash2() {
        let reports = run_config_matrix(&app, opts.nodes, opts.seed);
        let base = &reports[0];
        let e: Vec<f64> = reports
            .iter()
            .map(|r| r.energy_normalized_to(base).total() * 100.0)
            .collect();
        println!(
            "{:<11} {:>8.2}% | {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% | {:>+7.2}%",
            app.name,
            base.barrier_imbalance() * 100.0,
            e[1],
            e[2],
            e[3],
            e[4],
            reports[3].slowdown_vs(base) * 100.0
        );
    }
}

fn cmd_cutoff(opts: &Options) {
    use thrifty_barrier::core::AlgorithmConfig;
    let app = AppSpec::by_name("Ocean").expect("Ocean exists");
    let trace = app.generate(opts.nodes as usize, opts.seed);
    let base = run_trace(&trace, opts.nodes, SystemConfig::Baseline);
    for (label, th) in [("cut-off off", None), ("cut-off 10%", Some(0.10))] {
        let cfg = AlgorithmConfig::thrifty().with_overprediction_threshold(th);
        let r = run_trace_with(&trace, opts.nodes, label, cfg, None);
        println!(
            "{label:<13} energy {:>6.1}%  slowdown {:>+6.2}%  disables {}",
            r.energy_normalized_to(&base).total() * 100.0,
            r.slowdown_vs(&base) * 100.0,
            r.counts.cutoff_disables
        );
    }
}

fn cmd_trace(app_name: &str, opts: &Options) -> Result<(), String> {
    let app = app_by_name(app_name)?;
    let out = opts
        .out
        .as_deref()
        .ok_or("trace needs --out FILE (the export destination)")?;
    let sys = match &opts.config {
        Some(name) => config_by_name(name).ok_or_else(|| {
            format!("unknown config {name:?} (Baseline/Thrifty-Halt/Oracle-Halt/Thrifty/Ideal)")
        })?,
        None => SystemConfig::Thrifty,
    };
    let app_trace = app.generate(opts.nodes as usize, opts.seed);
    let traced = run_trace_recording(&app_trace, opts.nodes, sys, opts.ring);
    let body = match opts.format.as_str() {
        "jsonl" => thrifty_barrier::trace::to_jsonl(&traced.events),
        _ => {
            let name = format!("{} / {} / {} nodes", app.name, sys.name(), opts.nodes);
            thrifty_barrier::trace::to_perfetto(&traced.events, &name)
        }
    };
    std::fs::write(out, &body).map_err(|e| format!("writing {out:?}: {e}"))?;

    let summary = traced.report.trace.as_ref().expect("recording run");
    println!(
        "wrote {} ({}: {} events, {} dropped)",
        out, opts.format, summary.events, summary.dropped
    );
    let wl = &summary.wake_latency;
    println!(
        "wake-up latency over {} sleeper departures: p50 {:.0} p95 {:.0} p99 {:.0} max {} cycles",
        wl.samples, wl.p50, wl.p95, wl.p99, wl.max
    );
    print!("{}", PredictionAccuracyReport::from_events(&traced.events));
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: thrifty-barrier <command> [options]\n\
         commands:\n  \
         list                      the ten Table 2 applications\n  \
         run <app> [--config C]    run one app (all five configs by default)\n  \
         sweep                     all apps x all configs (Figures 5/6 data)\n  \
         cutoff                    the Ocean overprediction cut-off story\n  \
         trace <app> --out FILE    record per-episode events to a trace file\n\
         options: --nodes N (power of two <= 64), --seed S, --json,\n\
         \x20        --format perfetto|jsonl, --ring EVENTS_PER_THREAD, --config C"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let result = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => {
            let Some(app) = args.get(1) else { usage() };
            match parse_options(&args[2..]) {
                Ok(opts) => cmd_run(app, &opts),
                Err(e) => Err(e),
            }
        }
        "sweep" => parse_options(&args[1..]).map(|o| cmd_sweep(&o)),
        "cutoff" => parse_options(&args[1..]).map(|o| cmd_cutoff(&o)),
        "trace" => {
            let Some(app) = args.get(1) else { usage() };
            match parse_options(&args[2..]) {
                Ok(opts) => cmd_trace(app, &opts),
                Err(e) => Err(e),
            }
        }
        _ => {
            usage();
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
