//! `thrifty-barrier` — command-line front end to the simulator.
//!
//! ```text
//! thrifty-barrier list
//! thrifty-barrier run <app> [--nodes N] [--seed S] [--seeds K] [--jobs J] [--config NAME] [--json]
//! thrifty-barrier sweep [--nodes N] [--seed S] [--seeds K] [--jobs J] [--json] [--faults SCENARIO]
//!                       [--retries N] [--timeout-ms MS] [--journal PATH | --resume PATH]
//! thrifty-barrier cutoff [--nodes N] [--seed S]
//! thrifty-barrier trace <app> --out FILE [--format perfetto|jsonl] [--config NAME]
//! ```
//!
//! `run` and `sweep` fan their (app × config × seed) cells out across a
//! [`Harness`] worker pool: `--jobs J` sets the pool size (default: one
//! worker per hardware thread) and `--seeds K` replicates every cell over
//! K consecutive seeds, reporting mean ± σ. Each (app, nodes, seed)
//! generates its trace once and simulates Baseline exactly once, no matter
//! how many configurations consume it; results are emitted in matrix
//! order, so output is byte-identical at every `--jobs` level.
//!
//! The full table/figure reproduction lives in the bench targets
//! (`cargo bench`); this binary is the interactive entry point.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;
use thrifty_barrier::cli::{app_by_name, config_by_name, parse_options, Options};
use thrifty_barrier::core::{FaultPlan, SystemConfig};
use thrifty_barrier::machine::harness::{AppMatrix, Cell, Harness, SupervisionPolicy};
use thrifty_barrier::machine::journal::{CellKey, StoredOutcome, SweepJournal};
use thrifty_barrier::machine::run::{run_trace_recording, run_trace_with};
use thrifty_barrier::machine::{AggregateReport, CellCoverage, CellOutcome, RunReport};
use thrifty_barrier::trace::PredictionAccuracyReport;
use thrifty_barrier::workloads::AppSpec;

/// The short column label used in the sweep table (derived from the
/// config, never from a position).
fn short_label(config: SystemConfig) -> &'static str {
    match config {
        SystemConfig::Baseline => "Base",
        SystemConfig::ThriftyHalt => "Halt",
        SystemConfig::OracleHalt => "Orac",
        SystemConfig::Thrifty => "Thr",
        SystemConfig::Ideal => "Ideal",
    }
}

fn print_report(r: &RunReport, base: Option<&RunReport>) {
    println!("{r}");
    if let Some(base) = base {
        println!(
            "  vs baseline: energy {:+.1}%, time {:+.2}%",
            -r.energy_savings_vs(base) * 100.0,
            r.slowdown_vs(base) * 100.0
        );
    }
    let c = &r.counts;
    println!(
        "  {} episodes, {} sleeps ({} int / {} ext wake-ups, {} early), {} spins, \
         {} flushes, {} cut-off disables",
        c.episodes,
        c.total_sleeps(),
        c.internal_wakeups,
        c.external_wakeups,
        c.early_wakeups,
        c.spins,
        c.flushes,
        c.cutoff_disables
    );
}

fn print_aggregate(a: &AggregateReport) {
    println!(
        "{}/{} over {} seeds: wall {:.0}±{:.0} cycles, energy {:.3}±{:.3}J",
        a.app,
        a.config,
        a.runs(),
        a.wall_time.mean(),
        a.wall_time.std_dev(),
        a.total_energy.mean(),
        a.total_energy.std_dev(),
    );
    println!(
        "  vs baseline: energy {:+.1}±{:.1}%, time {:+.2}±{:.2}%",
        (a.energy_vs_baseline.mean() - 1.0) * 100.0,
        a.energy_vs_baseline.std_dev() * 100.0,
        a.slowdown_vs_baseline.mean() * 100.0,
        a.slowdown_vs_baseline.std_dev() * 100.0,
    );
}

fn cmd_list() {
    println!(
        "{:<11} {:<36} {:>10} {:>8}",
        "app", "problem size", "imbalance", "target"
    );
    for app in AppSpec::splash2() {
        println!(
            "{:<11} {:<36} {:>9.2}% {:>8}",
            app.name,
            app.problem_size,
            app.target_imbalance * 100.0,
            if app.is_target() { "yes" } else { "no" }
        );
    }
}

fn cmd_run(app_name: &str, opts: &Options) -> Result<(), String> {
    let app = app_by_name(app_name)?;
    let harness = Harness::new(opts.jobs);
    let seeds = opts.seed_list();
    match &opts.config {
        Some(name) => {
            let sys = config_by_name(name)?;
            let cells: Vec<Cell> = seeds
                .iter()
                .map(|&s| Cell::new(app.clone(), opts.nodes, s, sys))
                .collect();
            // One pass: the harness caches the Baseline run each oracle
            // configuration needs, and the comparison row below reuses
            // that same cached run instead of simulating Baseline again.
            let reports = harness
                .run_cells(&cells)
                .map_err(|e| format!("cell failed: {e}"))?;
            if opts.json {
                if seeds.len() == 1 {
                    println!("{}", serde::json::to_string(&reports[0]));
                } else {
                    println!("{}", serde::json::to_string(&reports));
                }
            } else if seeds.len() == 1 {
                let base = harness.baseline(&app, opts.nodes, seeds[0]);
                print_report(&reports[0], Some(&base.report));
            } else {
                let mut agg = AggregateReport::new(&app.name, sys.name(), opts.nodes as usize);
                for (r, &s) in reports.iter().zip(&seeds) {
                    agg.push(r, &harness.baseline(&app, opts.nodes, s).report);
                }
                print_aggregate(&agg);
            }
        }
        None => {
            let matrix = harness
                .run_matrix(&[app], &SystemConfig::ALL, opts.nodes, &seeds)
                .map_err(|e| format!("cell failed: {e}"))?
                .remove(0);
            if opts.json {
                println!("{}", serde::json::to_string(&matrix.into_flat_reports()));
            } else if seeds.len() == 1 {
                let base = &matrix.config_reports(SystemConfig::Baseline)[0];
                for row in &matrix.reports {
                    print_report(&row[0], Some(base));
                }
            } else {
                for agg in matrix.aggregates() {
                    print_aggregate(&agg);
                }
            }
        }
    }
    Ok(())
}

fn cmd_sweep(opts: &Options) -> Result<(), String> {
    // Supervision (fault scenarios, retries, deadlines, journaling) all
    // flows through the outcome-per-cell path; the plain matrix path stays
    // the fast default and the two must render byte-identical tables.
    let supervised = opts.faults.is_some()
        || opts.journal.is_some()
        || opts.resume.is_some()
        || opts.retries > 0
        || opts.timeout_ms.is_some();
    if supervised {
        return cmd_sweep_supervised(opts);
    }
    let harness = Harness::new(opts.jobs);
    let seeds = opts.seed_list();
    let matrix = harness
        .run_matrix(&AppSpec::splash2(), &SystemConfig::ALL, opts.nodes, &seeds)
        .map_err(|e| format!("cell failed: {e}"))?;
    render_sweep(&matrix, &SystemConfig::ALL, &seeds, opts.json);
    Ok(())
}

/// Renders the sweep result: flat-report JSON or the per-app table.
fn render_sweep(matrix: &[AppMatrix], configs: &[SystemConfig], seeds: &[u64], json: bool) {
    if json {
        let all: Vec<RunReport> = matrix
            .iter()
            .cloned()
            .flat_map(|m| m.into_flat_reports())
            .collect();
        println!("{}", serde::json::to_string(&all));
        return;
    }
    // Column order is derived from the configuration list, so reordering
    // it (or `SystemConfig::ALL`) reorders the table instead of silently
    // printing one configuration's numbers under another's header.
    let energy_cols: Vec<usize> = (0..configs.len())
        .filter(|&i| configs[i] != SystemConfig::Baseline)
        .collect();
    let slow_col = configs
        .iter()
        .position(|&c| c == SystemConfig::Thrifty)
        .expect("sweep table quotes the Thrifty slowdown");
    let replicated = seeds.len() > 1;
    let mut header = format!("{:<11} {:>9} |", "app", "imbal");
    for &i in &energy_cols {
        let label = format!("E:{}", short_label(configs[i]));
        if replicated {
            header.push_str(&format!(" {label:>13}"));
        } else {
            header.push_str(&format!(" {label:>8}"));
        }
    }
    header.push_str(&format!(" | {:>8}", "slowdn"));
    println!("{header}");
    for m in matrix {
        let aggs = m.aggregates();
        let base = &aggs[configs
            .iter()
            .position(|&c| c == SystemConfig::Baseline)
            .expect("sweep normalizes to Baseline")];
        let mut row = format!(
            "{:<11} {:>8.2}% |",
            m.app.name,
            base.imbalance.mean() * 100.0
        );
        for &i in &energy_cols {
            let e = &aggs[i].energy_vs_baseline;
            if replicated {
                row.push_str(&format!(
                    " {:>6.1}±{:>4.1}%",
                    e.mean() * 100.0,
                    e.std_dev() * 100.0
                ));
            } else {
                row.push_str(&format!(" {:>7.1}%", e.mean() * 100.0));
            }
        }
        row.push_str(&format!(
            " | {:>+7.2}%",
            aggs[slow_col].slowdown_vs_baseline.mean() * 100.0
        ));
        println!("{row}");
    }
}

/// The supervised sweep: every (app × config × seed) cell runs as an
/// isolated [`CellOutcome`], optionally under a named fault scenario, a
/// retry budget, a wall-clock deadline, and a crash-consistent journal.
/// A disabled scenario ("none") — or no scenario at all — renders the
/// ordinary sweep table from the same plumbing, byte-for-byte, so the
/// zero-cost-when-disabled guarantee is directly observable.
fn cmd_sweep_supervised(opts: &Options) -> Result<(), String> {
    let harness = Harness::new(opts.jobs);
    let configs = SystemConfig::ALL;
    let seeds = opts.seed_list();
    let apps = AppSpec::splash2();
    let scenario = opts.faults.as_deref();
    // Flat cell list in run_matrix's layout (app-major, then config, then
    // seed); each cell's fault streams are seeded by its workload seed.
    let mut cells: Vec<Cell> = Vec::with_capacity(apps.len() * configs.len() * seeds.len());
    for app in &apps {
        for &config in &configs {
            for &seed in &seeds {
                let mut cell = Cell::new(app.clone(), opts.nodes, seed, config);
                if let Some(name) = scenario {
                    let plan = FaultPlan::by_name(name, seed).expect("validated at parse");
                    cell = cell.with_faults(plan);
                }
                cells.push(cell);
            }
        }
    }
    let idx = |a: usize, c: usize, s: usize| (a * configs.len() + c) * seeds.len() + s;

    // The journal's params line pins everything that changes the cell
    // matrix or its results. `--jobs`, `--retries`, and `--timeout-ms`
    // are deliberately excluded: a sweep may be resumed at a different
    // parallelism or patience level and still produce identical output.
    let params = format!(
        "sweep nodes={} seed={} seeds={} faults={}",
        opts.nodes,
        opts.seed,
        opts.seeds,
        scenario.unwrap_or("-")
    );
    let mut replayed: HashMap<String, StoredOutcome> = HashMap::new();
    let journal = match (&opts.journal, &opts.resume) {
        (Some(path), None) => Some(
            SweepJournal::create(path, &params).map_err(|e| format!("--journal {path:?}: {e}"))?,
        ),
        (None, Some(path)) => {
            let (journal, records) = SweepJournal::resume(path, &params)
                .map_err(|e| format!("--resume {path:?}: {e}"))?;
            replayed = records;
            Some(journal)
        }
        (None, None) => None,
        (Some(_), Some(_)) => unreachable!("rejected at parse"),
    };

    // Partition: cells whose outcome the journal already holds are
    // replayed verbatim; the rest run fresh. The resume note goes to
    // stderr so resumed stdout stays byte-identical to an uninterrupted
    // sweep.
    let keys: Vec<CellKey> = cells.iter().map(CellKey::of).collect();
    let mut outcomes: Vec<Option<CellOutcome>> = (0..cells.len()).map(|_| None).collect();
    let mut todo: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match replayed
            .get(&key.canonical())
            .and_then(|stored| stored.clone().into_outcome())
        {
            Some(outcome) => outcomes[i] = Some(outcome),
            None => todo.push(i),
        }
    }
    if opts.resume.is_some() {
        eprintln!(
            "resume: {} of {} cells replayed from journal, {} left to run",
            cells.len() - todo.len(),
            cells.len(),
            todo.len()
        );
    }

    let policy = SupervisionPolicy::default()
        .with_retries(opts.retries)
        .with_timeout(opts.timeout_ms.map(Duration::from_millis));
    let todo_cells: Vec<Cell> = todo.iter().map(|&i| cells[i].clone()).collect();
    let journal = journal.map(Mutex::new);
    let append_err: Mutex<Option<String>> = Mutex::new(None);
    let fresh = harness.run_cells_supervised_with(&todo_cells, &policy, |t, outcome| {
        if let Some(journal) = &journal {
            let result = journal.lock().unwrap().append(&keys[todo[t]], outcome);
            if let Err(e) = result {
                let mut slot = append_err.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(format!("journal append failed: {e}"));
                }
            }
        }
    });
    if let Some(e) = append_err.into_inner().unwrap() {
        return Err(e);
    }
    for (t, outcome) in fresh.into_iter().enumerate() {
        outcomes[todo[t]] = Some(outcome);
    }
    let outcomes: Vec<CellOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every cell is either replayed or run"))
        .collect();

    let faulted = scenario
        .map(|name| {
            FaultPlan::by_name(name, 0)
                .expect("validated at parse")
                .enabled()
        })
        .unwrap_or(false);
    if !faulted {
        // Fault-free sweep: a failed cell (a timeout that exhausted its
        // retries, say) has no row to render, so it aborts the sweep with
        // a typed message instead of fabricating a table.
        for (i, outcome) in outcomes.iter().enumerate() {
            if let Err(err) = &outcome.report {
                let cell = &cells[i];
                return Err(format!(
                    "{}/{} seed {} failed after {} attempt(s): {err}",
                    cell.app.name,
                    cell.config.name(),
                    cell.seed,
                    outcome.attempts()
                ));
            }
        }
        // Reshape into the ordinary matrix and render the ordinary sweep,
        // byte-for-byte.
        let matrix: Vec<AppMatrix> = apps
            .iter()
            .enumerate()
            .map(|(a, app)| AppMatrix {
                app: app.clone(),
                configs: configs.to_vec(),
                seeds: seeds.clone(),
                reports: configs
                    .iter()
                    .enumerate()
                    .map(|(c, _)| {
                        seeds
                            .iter()
                            .enumerate()
                            .map(|(s, _)| {
                                outcomes[idx(a, c, s)]
                                    .report
                                    .clone()
                                    .expect("failed cells abort above")
                            })
                            .collect()
                    })
                    .collect(),
            })
            .collect();
        render_sweep(&matrix, &configs, &seeds, opts.json);
        return Ok(());
    }
    let scenario = scenario.expect("faulted implies a scenario");

    // Aggregate per (app, config): metrics normalized to the same-seed
    // *faulted* Baseline, fault tallies merged, panics recorded as failed
    // cells instead of aborting the sweep.
    let base_col = configs
        .iter()
        .position(|&c| c == SystemConfig::Baseline)
        .expect("fault sweep normalizes to Baseline");
    let thr_col = configs
        .iter()
        .position(|&c| c == SystemConfig::Thrifty)
        .expect("fault sweep quotes the Thrifty columns");
    let mut aggs: Vec<AggregateReport> = Vec::with_capacity(apps.len() * configs.len());
    for (a, app) in apps.iter().enumerate() {
        for (c, &config) in configs.iter().enumerate() {
            let mut agg = AggregateReport::new(&app.name, config.name(), opts.nodes as usize);
            for s in 0..seeds.len() {
                let outcome = &outcomes[idx(a, c, s)];
                agg.merge_faults(&outcome.faults);
                agg.record_retries(outcome.retries.len() as u64);
                match (&outcome.report, &outcomes[idx(a, base_col, s)].report) {
                    (Ok(report), Ok(baseline)) => agg.push(report, baseline),
                    (Err(err), _) => agg.record_error(err),
                    (Ok(_), Err(_)) => agg.record_failure("baseline cell failed"),
                }
            }
            aggs.push(agg);
        }
    }
    if opts.json {
        println!("{}", serde::json::to_string(&aggs));
        return Ok(());
    }

    println!(
        "fault sweep: scenario {scenario:?}, {} nodes, {} seed(s)",
        opts.nodes,
        seeds.len()
    );
    println!(
        "{:<11} {:>7} {:>7} {:>6} | {:>8} {:>8} | {:>6}",
        "app", "inject", "recov", "quar", "E:Thr", "slowdn", "failed"
    );
    let mut totals = (0u64, 0u64, 0u64, 0u64);
    for (a, app) in apps.iter().enumerate() {
        let rows = &aggs[a * configs.len()..(a + 1) * configs.len()];
        let injected: u64 = rows.iter().map(|r| r.faults.injected()).sum();
        let recovered: u64 = rows.iter().map(|r| r.faults.guard_recoveries).sum();
        let quarantined: u64 = rows.iter().map(|r| r.faults.quarantine_entries).sum();
        let failed: u64 = rows.iter().map(|r| r.failed_cells).sum();
        let thrifty = &rows[thr_col];
        println!(
            "{:<11} {:>7} {:>7} {:>6} | {:>7.1}% {:>+7.2}% | {:>6}",
            app.name,
            injected,
            recovered,
            quarantined,
            thrifty.energy_vs_baseline.mean() * 100.0,
            thrifty.slowdown_vs_baseline.mean() * 100.0,
            failed
        );
        totals.0 += injected;
        totals.1 += recovered;
        totals.2 += quarantined;
        totals.3 += failed;
    }
    println!(
        "{scenario}: {} faults injected, {} guard recoveries, {} quarantine entries, \
         {} failed cells",
        totals.0, totals.1, totals.2, totals.3
    );
    // Coverage accounting only appears when supervision had something to
    // say — a fully clean sweep prints the historical output unchanged.
    let mut coverage = CellCoverage::default();
    for agg in &aggs {
        coverage.merge(&agg.coverage);
    }
    if coverage.retried > 0 || !coverage.is_complete() {
        println!("coverage: {coverage}");
    }
    Ok(())
}

fn cmd_cutoff(opts: &Options) -> Result<(), String> {
    use thrifty_barrier::core::AlgorithmConfig;
    let app = app_by_name("Ocean")?;
    let harness = Harness::new(opts.jobs);
    // The cached Baseline bundle: one trace generation, one Baseline
    // simulation, shared with any other command using this harness.
    let trace = harness.trace(&app, opts.nodes, opts.seed);
    let base = harness.baseline(&app, opts.nodes, opts.seed);
    for (label, th) in [("cut-off off", None), ("cut-off 10%", Some(0.10))] {
        let cfg = AlgorithmConfig::thrifty().with_overprediction_threshold(th);
        let r = run_trace_with(&trace, opts.nodes, label, cfg, None);
        println!(
            "{label:<13} energy {:>6.1}%  slowdown {:>+6.2}%  disables {}",
            r.energy_normalized_to(&base.report).total() * 100.0,
            r.slowdown_vs(&base.report) * 100.0,
            r.counts.cutoff_disables
        );
    }
    Ok(())
}

fn cmd_trace(app_name: &str, opts: &Options) -> Result<(), String> {
    let app = app_by_name(app_name)?;
    let out = opts
        .out
        .as_deref()
        .ok_or("trace needs --out FILE (the export destination)")?;
    let sys = match &opts.config {
        Some(name) => config_by_name(name)?,
        None => SystemConfig::Thrifty,
    };
    let app_trace = app.generate(opts.nodes as usize, opts.seed);
    let traced = run_trace_recording(&app_trace, opts.nodes, sys, opts.ring);
    let body = match opts.format.as_str() {
        "jsonl" => thrifty_barrier::trace::to_jsonl(&traced.events),
        _ => {
            let name = format!("{} / {} / {} nodes", app.name, sys.name(), opts.nodes);
            thrifty_barrier::trace::to_perfetto(&traced.events, &name)
        }
    };
    std::fs::write(out, &body).map_err(|e| format!("writing {out:?}: {e}"))?;

    let summary = traced.report.trace.as_ref().expect("recording run");
    println!(
        "wrote {} ({}: {} events, {} dropped)",
        out, opts.format, summary.events, summary.dropped
    );
    let wl = &summary.wake_latency;
    println!(
        "wake-up latency over {} sleeper departures: p50 {:.0} p95 {:.0} p99 {:.0} max {} cycles",
        wl.samples, wl.p50, wl.p95, wl.p99, wl.max
    );
    print!("{}", PredictionAccuracyReport::from_events(&traced.events));
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: thrifty-barrier <command> [options]\n\
         commands:\n  \
         list                      the ten Table 2 applications\n  \
         run <app> [--config C]    run one app (all five configs by default)\n  \
         sweep [--faults SC]       all apps x all configs (Figures 5/6 data);\n  \
         \x20                          --faults runs the fault-matrix sweep\n  \
         cutoff                    the Ocean overprediction cut-off story\n  \
         trace <app> --out FILE    record per-episode events to a trace file\n\
         options: --nodes N (power of two <= 64), --seed S, --seeds K, --jobs J,\n\
         \x20        --json, --format perfetto|jsonl, --ring EVENTS_PER_THREAD, --config C\n\
         sweep supervision: --retries N (re-run transient failures, max 10),\n\
         \x20        --timeout-ms MS (per-cell wall-clock deadline),\n\
         \x20        --journal PATH (checkpoint completed cells to a JSONL journal),\n\
         \x20        --resume PATH (replay a journal, run only what is missing)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let result = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => {
            let Some(app) = args.get(1) else { usage() };
            match parse_options(&args[2..]) {
                Ok(opts) => cmd_run(app, &opts),
                Err(e) => Err(e),
            }
        }
        "sweep" => parse_options(&args[1..]).and_then(|o| cmd_sweep(&o)),
        "cutoff" => parse_options(&args[1..]).and_then(|o| cmd_cutoff(&o)),
        "trace" => {
            let Some(app) = args.get(1) else { usage() };
            match parse_options(&args[2..]) {
                Ok(opts) => cmd_trace(app, &opts),
                Err(e) => Err(e),
            }
        }
        _ => {
            usage();
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
