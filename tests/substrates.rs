//! Cross-substrate integration: the *same* `tb-core` algorithm, driven by
//! three different machines (directory CC-NUMA, snooping-bus SMP,
//! message-passing cluster) and by real OS threads, must tell the same
//! story — the portability claim of the paper's §1/§7.

use thrifty_barrier::core::{AlgorithmConfig, SystemConfig};
use thrifty_barrier::machine::run::run_trace;
use thrifty_barrier::machine::sim::{simulate, SimulatorConfig};
use thrifty_barrier::mem::BusConfig;
use thrifty_barrier::msg::{ClusterConfig, MsgSimulator};
use thrifty_barrier::workloads::AppSpec;

const NODES: u16 = 16;
const SEED: u64 = 0x7B41;

/// (baseline_energy, thrifty_energy, thrifty_slowdown) per substrate.
fn directory_numbers(app: &AppSpec) -> (f64, f64, f64) {
    let trace = app.generate(NODES as usize, SEED);
    let base = run_trace(&trace, NODES, SystemConfig::Baseline);
    let thrifty = run_trace(&trace, NODES, SystemConfig::Thrifty);
    (
        base.total_energy(),
        thrifty.total_energy(),
        thrifty.slowdown_vs(&base),
    )
}

fn bus_numbers(app: &AppSpec) -> (f64, f64, f64) {
    let trace = app.generate(NODES as usize, SEED);
    let mut cfg = SimulatorConfig::paper_with_nodes("Baseline", NODES);
    cfg.bus = Some(BusConfig::smp(NODES));
    let base = simulate(cfg.clone(), &trace, AlgorithmConfig::baseline(), None);
    let thrifty = simulate(cfg, &trace, AlgorithmConfig::thrifty(), None);
    (
        base.total_energy(),
        thrifty.total_energy(),
        thrifty.slowdown_vs(&base),
    )
}

fn msg_numbers(app: &AppSpec) -> (f64, f64, f64) {
    let trace = app.generate(NODES as usize, SEED);
    let cluster = ClusterConfig::default_cluster(NODES);
    let base = MsgSimulator::new(cluster.clone(), trace.clone(), AlgorithmConfig::baseline()).run();
    let thrifty = MsgSimulator::new(cluster, trace, AlgorithmConfig::thrifty()).run();
    (
        base.total_energy(),
        thrifty.total_energy(),
        thrifty.slowdown_vs(&base),
    )
}

#[test]
fn savings_agree_across_substrates() {
    // On every substrate, the relative savings for a stable target app
    // land in the same band.
    let app = AppSpec::by_name("FMM").unwrap();
    let mut ratios = Vec::new();
    for (label, (base, thrifty, slowdown)) in [
        ("directory", directory_numbers(&app)),
        ("bus", bus_numbers(&app)),
        ("msg", msg_numbers(&app)),
    ] {
        let ratio = thrifty / base;
        assert!(
            (0.80..0.95).contains(&ratio),
            "{label}: energy ratio {ratio} outside the FMM band"
        );
        assert!(slowdown < 0.02, "{label}: slowdown {slowdown}");
        ratios.push(ratio);
    }
    let spread = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 0.03,
        "substrates should agree within 3 points, spread {spread}"
    );
}

#[test]
fn volrend_approaches_ideal_everywhere() {
    let app = AppSpec::by_name("Volrend").unwrap();
    for (label, (base, thrifty, _)) in [
        ("directory", directory_numbers(&app)),
        ("bus", bus_numbers(&app)),
        ("msg", msg_numbers(&app)),
    ] {
        let savings = 1.0 - thrifty / base;
        assert!(
            savings > 0.30,
            "{label}: Volrend should save >30%, got {:.1}%",
            savings * 100.0
        );
    }
}

#[test]
fn balanced_apps_are_safe_everywhere() {
    // Radiosity (1% imbalance): no substrate may lose meaningful energy
    // or time under Thrifty.
    let app = AppSpec::by_name("Radiosity").unwrap();
    for (label, (base, thrifty, slowdown)) in [
        ("directory", directory_numbers(&app)),
        ("bus", bus_numbers(&app)),
        ("msg", msg_numbers(&app)),
    ] {
        assert!(
            thrifty <= base * 1.01,
            "{label}: Radiosity must not cost energy"
        );
        assert!(slowdown < 0.02, "{label}: slowdown {slowdown}");
    }
}

#[test]
fn trace_reuse_is_exact_across_substrates() {
    // All three simulators consume the identical deterministic trace.
    let app = AppSpec::by_name("Barnes").unwrap();
    let t1 = app.generate(NODES as usize, SEED);
    let t2 = app.generate(NODES as usize, SEED);
    assert_eq!(t1, t2);
    assert_eq!(t1.threads, NODES as usize);
}
