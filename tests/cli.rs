//! End-to-end tests of the `thrifty-barrier` binary: flag rejection exit
//! paths and the parallel-harness determinism guarantee.

use std::process::{Command, Output};

fn bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_thrifty-barrier"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn bad_options_exit_nonzero_with_message() {
    for (args, needle) in [
        (&["sweep", "--nodes", "12"][..], "power of two"),
        (&["sweep", "--jobs", "0"][..], "at least 1"),
        (&["sweep", "--seeds", "0"][..], "at least 1"),
        (
            &["trace", "Ocean", "--format", "csv"][..],
            "perfetto or jsonl",
        ),
        (&["trace", "Ocean", "--ring", "0"][..], "positive"),
        (&["sweep", "--frobnicate"][..], "unknown option"),
        (
            &["run", "NoSuchApp", "--nodes", "8"][..],
            "unknown application",
        ),
        (&["sweep", "--retries", "eleven"][..], "bad retry count"),
        (&["sweep", "--retries", "11"][..], "at most 10"),
        (&["sweep", "--timeout-ms", "soon"][..], "bad timeout"),
        (&["sweep", "--timeout-ms", "0"][..], "positive"),
        (&["sweep", "--retries"][..], "--retries needs a value"),
        (&["sweep", "--journal"][..], "--journal needs a value"),
        (
            &["sweep", "--journal", "a.jsonl", "--resume", "b.jsonl"][..],
            "mutually exclusive",
        ),
        (
            &["sweep", "--resume", "b.jsonl", "--journal", "a.jsonl"][..],
            "mutually exclusive",
        ),
    ] {
        let out = bin(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(
            stderr(&out).contains(needle),
            "{args:?}: stderr {:?} should mention {needle:?}",
            stderr(&out)
        );
    }
}

#[test]
fn unknown_command_prints_usage() {
    let out = bin(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

/// The acceptance bar for the parallel harness: `sweep --jobs 8` must be
/// byte-identical to `--jobs 1`, in both the human table and the
/// `RunReport` JSON.
#[test]
fn sweep_output_is_identical_at_every_jobs_level() {
    let serial = bin(&["sweep", "--nodes", "8", "--jobs", "1"]);
    let parallel = bin(&["sweep", "--nodes", "8", "--jobs", "8"]);
    assert!(serial.status.success() && parallel.status.success());
    assert!(!serial.stdout.is_empty());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "human table must byte-match"
    );

    let serial_json = bin(&["sweep", "--nodes", "8", "--jobs", "1", "--json"]);
    let parallel_json = bin(&["sweep", "--nodes", "8", "--jobs", "8", "--json"]);
    assert!(serial_json.status.success() && parallel_json.status.success());
    assert_eq!(
        serial_json.stdout, parallel_json.stdout,
        "RunReport JSON must byte-match"
    );
    // And the JSON really is the full 10 × 5 matrix of reports.
    let reports: Vec<thrifty_barrier::machine::RunReport> =
        serde::json::from_str(&String::from_utf8_lossy(&serial_json.stdout)).expect("valid JSON");
    assert_eq!(reports.len(), 50);
}

/// Journal errors surface at runtime (the path is only opened once the
/// sweep starts), with both the flag and the cause in the message.
#[test]
fn resume_of_missing_or_mismatched_journal_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("tb-cli-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let missing = dir.join("no-such.jsonl");
    let out = bin(&[
        "sweep",
        "--nodes",
        "8",
        "--resume",
        missing.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "missing journal must fail");
    assert!(
        stderr(&out).contains("--resume"),
        "stderr names the flag: {:?}",
        stderr(&out)
    );

    // A journal recorded for one sweep shape refuses to resume another.
    let journal = dir.join("n8.jsonl");
    let journal = journal.to_str().unwrap();
    let create = bin(&["sweep", "--nodes", "8", "--journal", journal]);
    assert!(create.status.success(), "{}", stderr(&create));
    let out = bin(&["sweep", "--nodes", "16", "--resume", journal]);
    assert!(!out.status.success(), "params mismatch must fail");
    assert!(
        stderr(&out).contains("params mismatch"),
        "stderr quotes both sides: {:?}",
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("nodes=8") && stderr(&out).contains("nodes=16"),
        "stderr quotes both sides: {:?}",
        stderr(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_with_seeds_reports_aggregates() {
    let out = bin(&[
        "run", "Volrend", "--nodes", "8", "--seeds", "2", "--config", "Thrifty",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("over 2 seeds"), "{stdout}");
    assert!(stdout.contains("±"), "{stdout}");
}
