//! Golden-output tests: the simulator's observable behavior is pinned by
//! committed fixtures, so performance work on the substrates (event queue,
//! directory, caches, flush path) can be proven byte-neutral. Any
//! intentional behavior change must regenerate the fixtures (see
//! EXPERIMENTS.md, "Performance methodology") in the same commit.

use std::process::Command;
use tb_sim::digest::fnv1a64_hex;

fn bin(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_thrifty-barrier"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn fixture(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// The 8-node sweep table must be byte-identical to the fixture at every
/// worker-pool size: results are emitted in matrix order regardless of
/// completion order, so parallelism may never change output.
#[test]
fn sweep_n8_text_matches_fixture_at_every_jobs_level() {
    let want = fixture("sweep_n8.txt");
    for jobs in ["1", "2", "4"] {
        let got = bin(&["sweep", "--nodes", "8", "--jobs", jobs]);
        assert_eq!(
            got, want,
            "sweep --nodes 8 --jobs {jobs} drifted from tests/golden/sweep_n8.txt"
        );
    }
}

/// Single-app run output is pinned too (per-report rendering, not just the
/// sweep table).
#[test]
fn run_ocean_n8_matches_fixture() {
    let got = bin(&["run", "Ocean", "--nodes", "8"]);
    assert_eq!(
        got,
        fixture("run_ocean_n8.txt"),
        "run Ocean --nodes 8 drifted from tests/golden/run_ocean_n8.txt"
    );
}

/// The full machine-readable report stream is pinned by digest — the same
/// digest `cargo bench -p tb-bench --bench bench_sim` checks in quick mode
/// (TB_BENCH_QUICK=1), so CI and local tests gate on the same fixture.
#[test]
fn sweep_n8_json_digest_matches_fixture() {
    let json = bin(&["sweep", "--nodes", "8", "--json"]);
    // The CLI prints the JSON with a trailing newline; the digest covers
    // the document itself.
    let trimmed = json.strip_suffix(b"\n").unwrap_or(&json);
    let want = fixture("sweep_n8_json.digest");
    let want = String::from_utf8(want).expect("digest fixture is ASCII hex");
    assert_eq!(
        fnv1a64_hex(trimmed),
        want.trim(),
        "sweep --nodes 8 --json digest drifted from tests/golden/sweep_n8_json.digest"
    );
}

/// Fault plumbing must be provably zero-cost when disabled: `sweep
/// --faults none` routes every cell through the fault-aware, panic-isolated
/// path with a disabled plan, and its bytes must equal the plain sweep
/// fixture at every worker-pool size — table and JSON alike.
#[test]
fn sweep_faults_none_is_byte_identical_to_clean_sweep() {
    let want = fixture("sweep_n8.txt");
    for jobs in ["1", "2", "4"] {
        let got = bin(&["sweep", "--nodes", "8", "--jobs", jobs, "--faults", "none"]);
        assert_eq!(
            got, want,
            "sweep --faults none --jobs {jobs} drifted from the clean sweep fixture"
        );
    }
    let json = bin(&["sweep", "--nodes", "8", "--json", "--faults", "none"]);
    let trimmed = json.strip_suffix(b"\n").unwrap_or(&json);
    let want = fixture("sweep_n8_json.digest");
    let want = String::from_utf8(want).expect("digest fixture is ASCII hex");
    assert_eq!(
        fnv1a64_hex(trimmed),
        want.trim(),
        "sweep --faults none --json digest drifted from the clean JSON fixture"
    );
}

/// The fault-matrix sweep under the storm scenario: deterministic fault
/// schedules pin the whole table — injected/recovery/quarantine tallies and
/// the failed-cell column — at every worker-pool size. The trailing
/// "0 failed cells" summary doubles as the CI fault-smoke assertion that
/// every faulted episode terminated.
#[test]
fn fault_sweep_n8_matches_fixture_at_every_jobs_level() {
    let want = fixture("fault_sweep_n8.txt");
    for jobs in ["1", "2", "4"] {
        let got = bin(&["sweep", "--nodes", "8", "--jobs", jobs, "--faults", "storm"]);
        assert_eq!(
            got, want,
            "sweep --faults storm --jobs {jobs} drifted from tests/golden/fault_sweep_n8.txt"
        );
    }
    let text = String::from_utf8(want).expect("fixture is UTF-8");
    assert!(
        text.trim_end().ends_with("0 failed cells"),
        "the pinned fault sweep must report zero failed cells"
    );
    assert!(
        text.contains("faults injected"),
        "the summary line reports injected-fault totals"
    );
}

/// The paper-scale (64-node) sweep table, serial vs. parallel, against its
/// fixture. Slower than the 8-node tests but still the tier-1 gate for the
/// exact workload the performance numbers are quoted on.
#[test]
fn sweep_n64_text_matches_fixture() {
    let want = fixture("sweep_n64.txt");
    let got = bin(&["sweep", "--nodes", "64", "--jobs", "2"]);
    assert_eq!(
        got, want,
        "sweep --nodes 64 --jobs 2 drifted from tests/golden/sweep_n64.txt"
    );
}
