//! End-to-end integration tests asserting the paper's qualitative results
//! across the whole stack (workloads → machine → core → energy).
//!
//! These run at 16 nodes to stay fast; the bench targets regenerate the
//! 64-node figures.

use thrifty_barrier::core::SystemConfig;
use thrifty_barrier::energy::EnergyCategory;
use thrifty_barrier::machine::run::{run_config_matrix, run_trace, run_trace_with};
use thrifty_barrier::machine::RunReport;
use thrifty_barrier::workloads::AppSpec;

const NODES: u16 = 16;
const SEED: u64 = 0x7B41;

fn matrix(name: &str) -> Vec<RunReport> {
    let app = AppSpec::by_name(name).expect("known app");
    run_config_matrix(&app, NODES, SEED)
}

#[test]
fn every_app_measures_its_table2_imbalance() {
    for app in AppSpec::splash2() {
        let trace = app.generate(NODES as usize, SEED);
        let base = run_trace(&trace, NODES, SystemConfig::Baseline);
        assert!(
            (base.barrier_imbalance() - app.target_imbalance).abs() < 0.015,
            "{}: measured {:.4} vs Table 2 {:.4}",
            app.name,
            base.barrier_imbalance(),
            app.target_imbalance
        );
    }
}

#[test]
fn thrifty_saves_energy_on_every_target_app() {
    for app in AppSpec::targets() {
        let reports = matrix(&app.name);
        let (base, thrifty) = (&reports[0], &reports[3]);
        let savings = thrifty.energy_savings_vs(base);
        assert!(
            savings > 0.05,
            "{}: thrifty should save >5%, got {:.1}%",
            app.name,
            savings * 100.0
        );
        assert!(
            thrifty.slowdown_vs(base) < 0.03,
            "{}: slowdown {:.2}% too large",
            app.name,
            thrifty.slowdown_vs(base) * 100.0
        );
    }
}

#[test]
fn savings_track_imbalance_ordering() {
    // §5.1: the more imbalanced the application, the more thrifty saves.
    let volrend = matrix("Volrend");
    let water_sp = matrix("Water-Sp");
    let radiosity = matrix("Radiosity");
    let s = |m: &Vec<RunReport>| m[3].energy_savings_vs(&m[0]);
    assert!(s(&volrend) > s(&water_sp));
    assert!(s(&water_sp) > s(&radiosity));
}

#[test]
fn multiple_sleep_states_beat_halt_only() {
    // §5.1: "exploiting multiple sleep states is indeed beneficial".
    for name in ["Volrend", "FMM"] {
        let reports = matrix(name);
        let (base, halt, thrifty) = (&reports[0], &reports[1], &reports[3]);
        assert!(
            thrifty.energy_savings_vs(base) > halt.energy_savings_vs(base),
            "{name}: Thrifty should beat Thrifty-Halt"
        );
    }
}

#[test]
fn oracle_configurations_never_degrade_performance() {
    // §5.2: "the theoretical lower bounds Oracle-Halt and Ideal, which
    // never mispredict, would actually save energy without incurring any
    // performance penalty".
    for name in ["Volrend", "FMM", "Ocean", "Water-Nsq"] {
        let reports = matrix(name);
        let base = &reports[0];
        for r in [&reports[2], &reports[4]] {
            assert!(
                r.slowdown_vs(base) < 0.01,
                "{name}/{}: slowdown {:.2}%",
                r.config,
                r.slowdown_vs(base) * 100.0
            );
            assert!(r.total_energy() <= base.total_energy());
        }
    }
}

#[test]
fn fft_and_cholesky_behave_exactly_like_baseline() {
    // §5.1: "In the case of FFT and Cholesky, Thrifty (and Thrifty-Halt)
    // behaves just like Baseline … which leaves Thrifty's PC-indexed
    // predictor unused."
    for name in ["FFT", "Cholesky"] {
        let reports = matrix(name);
        let (base, halt, thrifty) = (&reports[0], &reports[1], &reports[3]);
        for r in [halt, thrifty] {
            assert_eq!(r.counts.total_sleeps(), 0, "{name}: no history, no sleep");
            assert!(
                (r.total_energy() / base.total_energy() - 1.0).abs() < 0.001,
                "{name}: energy must match baseline"
            );
            assert_eq!(
                r.wall_time, base.wall_time,
                "{name}: time must match baseline"
            );
        }
    }
}

#[test]
fn ideal_lower_bounds_every_configuration() {
    for name in ["Volrend", "Radix", "Barnes"] {
        let reports = matrix(name);
        let ideal_energy = reports[4].total_energy();
        for r in &reports[..4] {
            assert!(
                ideal_energy <= r.total_energy() * 1.01,
                "{name}: Ideal ({ideal_energy}) must lower-bound {} ({})",
                r.config,
                r.total_energy()
            );
        }
    }
}

#[test]
fn ocean_needs_the_cutoff() {
    // §5.2 / §3.3.3: without the cut-off Ocean degrades noticeably; with
    // it the damage is contained and the barrier mostly spins.
    use thrifty_barrier::core::AlgorithmConfig;
    let app = AppSpec::by_name("Ocean").unwrap();
    let trace = app.generate(NODES as usize, SEED);
    let base = run_trace(&trace, NODES, SystemConfig::Baseline);
    let with = run_trace_with(
        &trace,
        NODES,
        "with-cutoff",
        AlgorithmConfig::thrifty(),
        None,
    );
    let without = run_trace_with(
        &trace,
        NODES,
        "no-cutoff",
        AlgorithmConfig::thrifty().with_overprediction_threshold(None),
        None,
    );
    assert!(
        with.counts.cutoff_disables > 0,
        "the cut-off engages on Ocean"
    );
    assert_eq!(without.counts.cutoff_disables, 0);
    assert!(
        without.slowdown_vs(&base) > 2.0 * with.slowdown_vs(&base),
        "cut-off must contain the slowdown: with {:.2}% vs without {:.2}%",
        with.slowdown_vs(&base) * 100.0,
        without.slowdown_vs(&base) * 100.0
    );
    assert!(
        with.counts.spins > without.counts.spins,
        "disabled (thread, site) pairs fall back to spinning"
    );
}

#[test]
fn energy_breakdown_structure_matches_figures() {
    // Figure 5's structural claims: Baseline has no Transition/Sleep;
    // Thrifty converts most Spin into Sleep+Transition on stable apps.
    let reports = matrix("Volrend");
    let (base, thrifty) = (&reports[0], &reports[3]);
    let be = base.energy();
    assert_eq!(be[EnergyCategory::Transition], 0.0);
    assert_eq!(be[EnergyCategory::Sleep], 0.0);
    assert!(be[EnergyCategory::Spin] > 0.0);
    let te = thrifty.energy();
    assert!(te[EnergyCategory::Sleep] > 0.0);
    assert!(te[EnergyCategory::Transition] > 0.0);
    assert!(
        te[EnergyCategory::Spin] < 0.25 * be[EnergyCategory::Spin],
        "most spinning should be gone"
    );
}

#[test]
fn deep_sleep_flushes_show_up_in_compute() {
    // §5.2: "Thrifty is the only configuration for which Compute
    // energy/time increases for many applications, mainly due to cache
    // flush overheads associated with deep sleep states."
    let reports = matrix("Water-Nsq");
    let (base, halt, thrifty) = (&reports[0], &reports[1], &reports[3]);
    assert!(thrifty.counts.flushes > 0);
    assert_eq!(halt.counts.flushes, 0);
    let base_compute = base.energy()[EnergyCategory::Compute];
    let thrifty_compute = thrifty.energy()[EnergyCategory::Compute];
    assert!(
        thrifty_compute > base_compute,
        "flushes and post-flush upgrades must surface in Compute"
    );
}

#[test]
fn prediction_is_accurate_on_stable_apps_and_poor_on_ocean() {
    let fmm = matrix("FMM");
    let ocean = matrix("Ocean");
    assert!(
        fmm[3].prediction_error.mean() < 0.10,
        "FMM error {:.3}",
        fmm[3].prediction_error.mean()
    );
    assert!(
        ocean[3].prediction_error.mean() > 0.30,
        "Ocean error {:.3} should be large",
        ocean[3].prediction_error.mean()
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let a = matrix("Barnes");
    let b = matrix("Barnes");
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.wall_time, rb.wall_time);
        assert_eq!(ra.total_energy(), rb.total_energy());
        assert_eq!(ra.counts.episodes, rb.counts.episodes);
    }
}
