//! End-to-end checkpoint/resume tests of the `thrifty-barrier` binary.
//!
//! A crash mid-sweep leaves the journal with a prefix of fsync'd records,
//! possibly ending in a torn line. These tests reconstruct exactly those
//! on-disk states from a complete journal (truncating it to `k` records,
//! or mid-record) and assert the resumed sweep's stdout is byte-identical
//! to an uninterrupted run at every `--jobs` level — the acceptance bar
//! from the supervision design. The real SIGKILL rehearsal lives in CI's
//! interrupted-sweep smoke job.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_thrifty-barrier"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tb-journal-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

/// One complete journaled n=8 sweep, reused by every test below: returns
/// the clean stdout and the journal's lines (header + 50 cell records).
fn complete_sweep() -> (Vec<u8>, Vec<String>) {
    let journal = tmp("complete.jsonl");
    let journal_str = journal.to_str().unwrap();
    let out = bin(&["sweep", "--nodes", "8", "--journal", journal_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    let body = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<String> = body.lines().map(String::from).collect();
    assert_eq!(lines.len(), 51, "header + one record per cell");
    std::fs::remove_file(&journal).ok();
    (out.stdout, lines)
}

#[test]
fn resume_after_simulated_crash_is_byte_identical_at_every_jobs_level() {
    let (clean, lines) = complete_sweep();
    // Kill at cell 20: the journal holds the header and the first twenty
    // fsync'd records, nothing else.
    for jobs in ["1", "2", "4"] {
        let journal = tmp(&format!("kill20-j{jobs}.jsonl"));
        std::fs::write(&journal, format!("{}\n", lines[..21].join("\n"))).unwrap();
        let out = bin(&[
            "sweep",
            "--nodes",
            "8",
            "--resume",
            journal.to_str().unwrap(),
            "--jobs",
            jobs,
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        assert_eq!(
            out.stdout, clean,
            "resumed stdout must byte-match the uninterrupted sweep at --jobs {jobs}"
        );
        assert!(
            stderr(&out).contains("20 of 50 cells replayed"),
            "resume note goes to stderr: {:?}",
            stderr(&out)
        );
        // The journal is now complete again: resuming a second time
        // replays everything and runs nothing.
        let again = bin(&[
            "sweep",
            "--nodes",
            "8",
            "--resume",
            journal.to_str().unwrap(),
        ]);
        assert!(again.status.success(), "{}", stderr(&again));
        assert_eq!(again.stdout, clean);
        assert!(
            stderr(&again).contains("50 of 50 cells replayed"),
            "{:?}",
            stderr(&again)
        );
        std::fs::remove_file(&journal).ok();
    }
}

#[test]
fn torn_trailing_record_is_truncated_not_fatal() {
    let (clean, lines) = complete_sweep();
    let journal = tmp("torn.jsonl");
    // A crash mid-write: 30 whole records, then half of the 31st.
    let mut body = format!("{}\n", lines[..31].join("\n"));
    body.push_str(&lines[31][..lines[31].len() / 2]);
    std::fs::write(&journal, body).unwrap();
    let out = bin(&[
        "sweep",
        "--nodes",
        "8",
        "--resume",
        journal.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(out.stdout, clean, "torn tail truncated, rest replayed");
    assert!(
        stderr(&out).contains("30 of 50 cells replayed"),
        "the torn record does not count: {:?}",
        stderr(&out)
    );
    std::fs::remove_file(&journal).ok();
}

/// The watchdog acceptance bar: a sweep whose every cell wedges (the
/// `hang` scenario loses wake-ups and disables guard recovery) still
/// terminates, exits 0, and reports the cells as livelocked.
#[test]
fn hang_scenario_terminates_with_livelock_coverage() {
    let out = bin(&["sweep", "--nodes", "8", "--faults", "hang"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("50 failed cells"), "{stdout}");
    assert!(stdout.contains("50 livelocked"), "{stdout}");
}
