//! The thrifty barrier on a message-passing cluster (the paper's §1/§7
//! extension): the *unmodified* algorithm drives a coordinator barrier
//! whose release message both wakes sleepers and carries the measured
//! interval time.
//!
//! ```text
//! cargo run --release --example msg_cluster [app-name] [nodes]
//! ```

use thrifty_barrier::core::AlgorithmConfig;
use thrifty_barrier::energy::EnergyCategory;
use thrifty_barrier::msg::{ClusterConfig, MsgSimulator};
use thrifty_barrier::workloads::AppSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "Volrend".to_string());
    let nodes: u16 = args
        .next()
        .map(|s| s.parse().expect("nodes must be a number"))
        .unwrap_or(64);
    let app = AppSpec::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown application {name:?}");
        std::process::exit(1);
    });
    let cluster = ClusterConfig::default_cluster(nodes);
    println!("== {app}\ncluster: {cluster}\n");
    let trace = app.generate(nodes as usize, 0x7B41);

    let base = MsgSimulator::new(cluster.clone(), trace.clone(), AlgorithmConfig::baseline()).run();
    let thrifty = MsgSimulator::new(cluster, trace, AlgorithmConfig::thrifty()).run();

    for (label, r) in [("polling", &base), ("thrifty", &thrifty)] {
        let e = r.ledger.energy().fractions();
        println!(
            "{label:<8} wall {}  energy {:>8.2} J  (compute {:.1}% poll {:.1}% trans {:.1}% sleep {:.1}%)",
            r.wall_time,
            r.total_energy(),
            e[EnergyCategory::Compute] * 100.0,
            e[EnergyCategory::Spin] * 100.0,
            e[EnergyCategory::Transition] * 100.0,
            e[EnergyCategory::Sleep] * 100.0,
        );
    }
    println!(
        "\nthrifty saves {:.1}% energy at {:+.2}% wall-clock \
         ({} sleeps: {} timer wake-ups, {} message wake-ups)",
        thrifty.energy_savings_vs(&base) * 100.0,
        thrifty.slowdown_vs(&base) * 100.0,
        thrifty.total_sleeps(),
        thrifty.internal_wakeups,
        thrifty.external_wakeups,
    );
}
