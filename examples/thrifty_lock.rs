//! The thrifty *lock* (the paper's §7 future work) on real threads:
//! contended waiters predict their wait per acquisition site and spin
//! (short waits) or park their core (long waits).
//!
//! ```text
//! cargo run --release --example thrifty_lock [threads] [rounds]
//! ```

use std::sync::Arc;
use std::time::Duration;
use thrifty_barrier::runtime::{LockSite, ThriftyLock};

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or(4);
    let rounds: usize = args
        .next()
        .map(|s| s.parse().expect("rounds must be a number"))
        .unwrap_or(40);

    // Two acquisition sites with very different hold times: a short
    // critical section (bump a counter) and a long one (simulated I/O).
    let lock = Arc::new(ThriftyLock::new(0u64));
    let short_site = LockSite::new(0x1);
    let long_site = LockSite::new(0x2);

    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let l = Arc::clone(&lock);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    {
                        let mut g = l.lock(short_site);
                        *g += 1;
                    }
                    if (r + t) % threads == 0 {
                        // This thread holds the lock across "I/O".
                        let mut g = l.lock(long_site);
                        *g += 1;
                        std::thread::sleep(Duration::from_millis(2));
                    } else {
                        let mut g = l.lock(long_site);
                        *g += 1;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = started.elapsed();
    let stats = lock.stats();

    println!("{threads} threads x {rounds} rounds in {elapsed:.2?}");
    println!("lock stats: {stats}");
    println!(
        "learned wait predictions: short site {:?}, long site {:?}",
        lock.predicted_wait(short_site),
        lock.predicted_wait(long_site)
    );
    println!(
        "counter: {} (expected {})",
        *lock.lock(short_site),
        threads as u64 * rounds as u64 * 2
    );
}
