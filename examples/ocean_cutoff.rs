//! The Ocean rescue story (§3.3.3 / §5.2 of the paper): swinging barrier
//! interval times make last-value prediction overshoot, and without the
//! overprediction cut-off the exposed exit transitions and flushes pile up
//! into a double-digit slowdown. The 10 % cut-off contains the damage.
//!
//! ```text
//! cargo run --release --example ocean_cutoff [threads]
//! ```

use thrifty_barrier::core::{AlgorithmConfig, SystemConfig};
use thrifty_barrier::machine::run::{run_trace, run_trace_with, PAPER_SEED};
use thrifty_barrier::workloads::AppSpec;

fn main() {
    let threads: u16 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or(64);

    let app = AppSpec::by_name("Ocean").expect("Ocean is in Table 2");
    let trace = app.generate(threads as usize, PAPER_SEED);
    let base = run_trace(&trace, threads, SystemConfig::Baseline);

    println!("Ocean, {threads} processors — overprediction cut-off sweep\n");
    println!(
        "{:<22} {:>9} {:>9} {:>10} {:>9}",
        "threshold", "energy", "slowdown", "disables", "spins"
    );
    let mut rows: Vec<(String, Option<f64>)> = vec![("disabled (no cut-off)".into(), None)];
    for th in [0.02, 0.05, 0.10, 0.20, 0.50] {
        rows.push((format!("{:.0}% of BIT", th * 100.0), Some(th)));
    }
    for (label, threshold) in rows {
        let cfg = AlgorithmConfig::thrifty().with_overprediction_threshold(threshold);
        let r = run_trace_with(&trace, threads, "Thrifty", cfg, None);
        println!(
            "{:<22} {:>8.1}% {:>+8.2}% {:>10} {:>9}",
            label,
            r.energy_normalized_to(&base).total() * 100.0,
            r.slowdown_vs(&base) * 100.0,
            r.counts.cutoff_disables,
            r.counts.spins,
        );
    }
    println!("\npaper: ~12% slowdown without the cut-off, within 3.5% of Baseline with it");
}
