//! Quickstart: simulate one SPLASH-2-like application on the paper's
//! 64-node machine under conventional and thrifty barriers, and compare.
//!
//! ```text
//! cargo run --release --example quickstart [app-name] [threads]
//! ```

use thrifty_barrier::core::SystemConfig;
use thrifty_barrier::energy::EnergyCategory;
use thrifty_barrier::machine::run::{run_config_matrix, PAPER_SEED};
use thrifty_barrier::workloads::AppSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "FMM".to_string());
    let threads: u16 = args
        .next()
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or(64);
    let app = AppSpec::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown application {name:?}; known apps:");
        for a in AppSpec::splash2() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(1);
    });

    println!("== {app}");
    println!("machine: {threads} nodes (Table 1 latencies), seed {PAPER_SEED:#x}\n");

    let reports = run_config_matrix(&app, threads, PAPER_SEED);
    let baseline = &reports[0];

    println!(
        "{:<13} {:>9} {:>10} {:>9}   energy breakdown (C/S/T/Z %)",
        "config", "energy", "vs base", "time"
    );
    for r in &reports {
        let e = r.energy_normalized_to(baseline);
        let t = r.time_normalized_to(baseline);
        println!(
            "{:<13} {:>8.1}% {:>9.1}% {:>8.1}%   {:>5.1} {:>5.1} {:>5.1} {:>5.1}",
            r.config,
            e.total() * 100.0,
            r.energy_savings_vs(baseline) * 100.0,
            t.total() * 100.0,
            e[EnergyCategory::Compute] * 100.0,
            e[EnergyCategory::Spin] * 100.0,
            e[EnergyCategory::Transition] * 100.0,
            e[EnergyCategory::Sleep] * 100.0,
        );
    }

    let thrifty = reports
        .iter()
        .find(|r| r.config == SystemConfig::Thrifty.name())
        .expect("matrix has Thrifty");
    println!(
        "\nbaseline barrier imbalance: {:.2}% (Table 2 target: {:.2}%)",
        baseline.barrier_imbalance() * 100.0,
        app.target_imbalance * 100.0
    );
    println!(
        "thrifty: {} sleeps ({} internal / {} external wake-ups), {} spins, \
         {} flushes, mean BIT prediction error {:.1}%",
        thrifty.counts.total_sleeps(),
        thrifty.counts.internal_wakeups,
        thrifty.counts.external_wakeups,
        thrifty.counts.spins,
        thrifty.counts.flushes,
        thrifty.prediction_error.mean() * 100.0
    );
}
