//! The thrifty barrier on real OS threads: an imbalanced fork-join loop
//! where early threads learn to park instead of burning their cores.
//!
//! ```text
//! cargo run --release --example realtime_barrier [threads] [iterations]
//! ```

use std::sync::Arc;
use std::time::Duration;
use thrifty_barrier::core::{AlgorithmConfig, BarrierPc};
use thrifty_barrier::runtime::{RuntimeSleepLevels, ThriftyRuntimeBarrier};

fn run(label: &str, threads: usize, iterations: usize, cfg: AlgorithmConfig) -> (Duration, f64) {
    let barrier = Arc::new(ThriftyRuntimeBarrier::with_config(threads, cfg));
    let pc = BarrierPc::new(0x4000);
    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for i in 0..iterations {
                    // Imbalanced phase: one rotating straggler does 4 ms of
                    // "work", everyone else 200 µs.
                    let straggler = i % threads;
                    let work = if t == straggler {
                        Duration::from_millis(4)
                    } else {
                        Duration::from_micros(200)
                    };
                    std::thread::sleep(work);
                    b.wait(t, pc);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = started.elapsed();
    let stats = barrier.stats().combined();
    println!(
        "{label:<22} wall {elapsed:>9.2?}  stall spin={} yield={} park={}  \
         ({} sleeps, {} spins, {:.1}% of stall time freed)",
        stats.spin,
        stats.yielded,
        stats.parked,
        stats.sleeps,
        stats.spins,
        stats.freed_fraction() * 100.0
    );
    (elapsed, stats.freed_fraction())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args
        .next()
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or(4);
    let iterations: usize = args
        .next()
        .map(|s| s.parse().expect("iterations must be a number"))
        .unwrap_or(50);

    println!("{threads} threads, {iterations} imbalanced fork-join iterations\n");
    let baseline_cfg = AlgorithmConfig {
        sleep_table: RuntimeSleepLevels::table(),
        ..AlgorithmConfig::baseline()
    };
    let thrifty_cfg = AlgorithmConfig {
        sleep_table: RuntimeSleepLevels::table(),
        ..AlgorithmConfig::thrifty()
    };
    let (t_base, _) = run("conventional (spin)", threads, iterations, baseline_cfg);
    let (t_thrifty, freed) = run("thrifty (yield/park)", threads, iterations, thrifty_cfg);

    println!(
        "\nthrifty freed {:.1}% of barrier stall time for other work, \
         at {:+.1}% wall-clock",
        freed * 100.0,
        (t_thrifty.as_secs_f64() / t_base.as_secs_f64() - 1.0) * 100.0
    );
}
