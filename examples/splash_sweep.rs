//! Sweep all ten SPLASH-2-like applications across the five system
//! configurations — the data behind Figures 5 and 6 of the paper.
//!
//! ```text
//! cargo run --release --example splash_sweep [threads]
//! ```

use thrifty_barrier::machine::run::{run_config_matrix, PAPER_SEED};
use thrifty_barrier::workloads::AppSpec;

fn main() {
    let threads: u16 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or(64);

    println!("{threads}-processor CC-NUMA, seed {PAPER_SEED:#x}\n");
    println!(
        "{:<11} {:>8} | {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7}",
        "app", "imbal", "E:H", "E:O", "E:T", "E:I", "T:T", "slowdn"
    );
    println!("{}", "-".repeat(78));

    let mut target_e_halt = Vec::new();
    let mut target_e_thrifty = Vec::new();
    let mut target_slowdown = Vec::new();

    for app in AppSpec::splash2() {
        let reports = run_config_matrix(&app, threads, PAPER_SEED);
        let base = &reports[0];
        let norm_e: Vec<f64> = reports
            .iter()
            .map(|r| r.energy_normalized_to(base).total() * 100.0)
            .collect();
        let thrifty = &reports[3];
        let slow = thrifty.slowdown_vs(base) * 100.0;
        println!(
            "{:<11} {:>7.2}% | {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% | {:>6.1}% {:>+6.2}%",
            app.name,
            base.barrier_imbalance() * 100.0,
            norm_e[1],
            norm_e[2],
            norm_e[3],
            norm_e[4],
            thrifty.time_normalized_to(base).total() * 100.0,
            slow,
        );
        if app.is_target() {
            target_e_halt.push(1.0 - norm_e[1] / 100.0);
            target_e_thrifty.push(1.0 - norm_e[3] / 100.0);
            target_slowdown.push(slow);
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("{}", "-".repeat(78));
    println!(
        "target apps (imbalance >= 10%): Thrifty saves {:.1}% (paper: ~17%), \
         Thrifty-Halt {:.1}% (paper: ~11%), slowdown {:.2}% (paper: ~2%)",
        mean(&target_e_thrifty) * 100.0,
        mean(&target_e_halt) * 100.0,
        mean(&target_slowdown),
    );
}
