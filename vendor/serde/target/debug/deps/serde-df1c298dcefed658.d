/root/repo/vendor/serde/target/debug/deps/serde-df1c298dcefed658.d: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/serde-df1c298dcefed658: src/lib.rs

src/lib.rs:
