/root/repo/vendor/serde/target/debug/deps/serde-828d716738c84999.d: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde-828d716738c84999.rlib: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde-828d716738c84999.rmeta: src/lib.rs

src/lib.rs:
