//! Minimal, offline-friendly stand-in for the `serde` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! handful of external dependencies are vendored as small, API-compatible
//! subsets (wired up via `[patch.crates-io]` in the workspace `Cargo.toml`).
//!
//! The real serde is a zero-copy visitor framework; this implementation uses a
//! much simpler owned value-tree data model: `Serialize` lowers a type to a
//! [`Value`], `Deserialize` rebuilds a type from a [`Value`], and the [`json`]
//! module renders/parses `Value` trees. Only the surface this workspace
//! actually uses is provided: `#[derive(Serialize, Deserialize)]` on
//! non-generic structs and enums (no `#[serde(...)]` attributes), plus
//! `serde::json::{to_string, to_string_pretty, from_str}`.
//!
//! The JSON representation follows serde_json conventions: newtype structs are
//! transparent, unit enum variants render as `"Name"`, and data-carrying
//! variants render as `{"Name": ...}`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The owned value tree every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (also covers smaller unsigned types).
    U64(u64),
    /// A signed integer, wide enough for `i128` fields.
    I128(i128),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, arrays, tuples, tuple structs).
    Seq(Vec<Value>),
    /// A map with string keys (structs, struct variants, string-keyed maps).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a `Value::Map`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when rebuilding a type from a [`Value`] fails.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lowers `self` to the value-tree data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value-tree data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: fetch field `key` from a struct map and
/// deserialize it. A missing field maps to `Value::Null` so `Option` fields
/// tolerate omission.
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    match v.get(key) {
        Some(field) => {
            T::from_value(field).map_err(|e| Error::msg(format!("field `{key}`: {}", e.0)))
        }
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{key}`")))
        }
    }
}

/// Helper used by derived code: fetch element `idx` from a sequence and
/// deserialize it.
pub fn de_elem<T: Deserialize>(seq: &[Value], idx: usize) -> Result<T, Error> {
    let v = seq
        .get(idx)
        .ok_or_else(|| Error::msg(format!("missing tuple element {idx}")))?;
    T::from_value(v)
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I128(n) if *n >= 0 && *n <= u64::MAX as i128 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::msg(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::I128(*self as i128)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I128(*self as i128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i128 = match v {
                    Value::I128(n) => *n,
                    Value::U64(n) => *n as i128,
                    Value::F64(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(Error::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I128(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected map, got {other:?}"))),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => Ok(($(de_elem::<$t>(items, $n)?,)+)),
                    other => Err(Error::msg(format!("expected tuple sequence, got {other:?}"))),
                }
            }
        }
    )+};
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

pub mod json {
    //! JSON rendering and parsing over the [`Value`](super::Value) tree.

    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serializes `value` to a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        render(&value.to_value(), &mut out, None, 0);
        out
    }

    /// Serializes `value` to an indented JSON string.
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        render(&value.to_value(), &mut out, Some(2), 0);
        out
    }

    /// Parses a JSON string and rebuilds `T` from it.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
        T::from_value(&parse(s)?)
    }

    /// Parses a JSON string into a [`Value`] tree.
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }

    fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I128(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(f) => {
                // JSON has no NaN/Infinity; degrade to null like lossy encoders do.
                if f.is_finite() {
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    render(item, out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    render(item, out, indent, depth + 1);
                }
                if !entries.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * depth {
                out.push(' ');
            }
        }
    }

    fn render_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(b) = self.bytes.get(self.pos) {
                if b.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::msg(format!(
                    "expected `{}` at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.seq(),
                Some(b'{') => self.map(),
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
            }
        }

        fn seq(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::msg(format!("bad sequence at byte {}", self.pos))),
                }
            }
        }

        fn map(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                entries.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::msg(format!("bad map at byte {}", self.pos))),
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| Error::msg("bad \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                                // Surrogate pairs are not produced by our renderer;
                                // map lone surrogates to the replacement character.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err(Error::msg("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        let start = self.pos;
                        while let Some(b) = self.peek() {
                            if b == b'"' || b == b'\\' {
                                break;
                            }
                            self.pos += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..self.pos])
                                .map_err(|_| Error::msg("invalid utf-8 in string"))?,
                        );
                    }
                    None => return Err(Error::msg("unterminated string")),
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut is_float = false;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::msg("invalid number"))?;
            if is_float {
                text.parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::msg(format!("invalid number `{text}`")))
            } else if text.starts_with('-') {
                text.parse::<i128>()
                    .map(Value::I128)
                    .map_err(|_| Error::msg(format!("invalid number `{text}`")))
            } else {
                text.parse::<u64>().map(Value::U64).or_else(|_| {
                    text.parse::<i128>()
                        .map(Value::I128)
                        .map_err(|_| Error::msg(format!("invalid number `{text}`")))
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            let json = json::to_string(&v);
            assert_eq!(json::from_str::<u64>(&json).unwrap(), v);
        }
        assert_eq!(json::to_string(&-5i64), "-5");
        assert_eq!(json::from_str::<i64>("-5").unwrap(), -5);
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        // Integral floats keep a decimal point so they parse back as floats.
        assert_eq!(json::to_string(&1.0f64), "1.0");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(json::from_str::<Vec<u64>>(&json::to_string(&v)).unwrap(), v);
        let opt: Option<u64> = None;
        assert_eq!(json::to_string(&opt), "null");
        let arr = [1.5f64, 2.5, 3.5, 4.5];
        assert_eq!(
            json::from_str::<[f64; 4]>(&json::to_string(&arr)).unwrap(),
            arr
        );
        let tup = (1u64, -2i64, true);
        assert_eq!(
            json::from_str::<(u64, i64, bool)>(&json::to_string(&tup)).unwrap(),
            tup
        );
    }

    #[test]
    fn parser_handles_nesting_and_ws() {
        let v = json::parse(r#" { "a" : [ 1 , 2.5 , null ] , "b" : { "c" : "d" } } "#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Seq(vec![
                Value::U64(1),
                Value::F64(2.5),
                Value::Null
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Str("d".into())));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Map(vec![
            ("x".into(), Value::Seq(vec![Value::U64(1), Value::U64(2)])),
            ("y".into(), Value::Str("z".into())),
        ]);
        let pretty = json::to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(json::parse(&pretty).unwrap(), v);
    }
}
