//! Minimal, offline-friendly stand-in for the `proptest` crate.
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] runner macro, `prop_assert*`/`prop_assume!`, [`Strategy`]
//! with `prop_map`/`boxed`, range and tuple strategies, [`Just`], weighted
//! and unweighted [`prop_oneof!`], and [`collection`]`::{vec, btree_set}`.
//!
//! Differences from real proptest, deliberately accepted for a vendored
//! test-only shim: no shrinking (a failing case reports its inputs' effects,
//! not a minimized counterexample), no persistence (`*.proptest-regressions`
//! files are ignored), and a fixed deterministic seed derived from the test
//! name, so runs are reproducible.

use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case, from a per-test hash and the
    /// case index.
    pub fn for_case(test_hash: u64, case: u64) -> Self {
        TestRng {
            state: test_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform u64 in `[0, span)`; `span == 0` means full range.
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.next_u64();
        }
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// FNV-1a hash used to derive per-test seeds from the test path.
#[doc(hidden)]
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; try another case.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Result type of a single property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honored by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim trims it to keep the
        // simulation-heavy property suites fast while still exploring
        // a meaningful sample.
        ProptestConfig {
            cases: 96,
            max_global_rejects: 4096,
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Keeps only values passing `pred`, rejecting the case otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            pred,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.gen_value(rng))
    }
}

/// Output of [`Strategy::prop_filter`]; resamples until the predicate holds.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1024 samples in a row",
            self.whence
        );
    }
}

/// Weighted union of type-erased strategies, produced by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

range_strategy_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let (lo, hi) = (self.start as f64, self.end as f64);
                let v = lo + rng.unit_f64() * (hi - lo);
                if (v as $t) < self.end { v as $t } else { self.start }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

/// Function-pointer strategy backing [`any`].
pub struct FnStrategy<T> {
    f: fn(&mut TestRng) -> T,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// Returns the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! arbitrary_prim {
    ($($t:ty => $f:expr),+ $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                FnStrategy { f: $f, _marker: PhantomData }
            }
        }
    )+};
}

arbitrary_prim!(
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
    // Floats: finite, sign-balanced, spanning several magnitudes.
    f64 => |rng| {
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 { -mag } else { mag }
    },
    f32 => |rng| {
        let mag = (rng.unit_f64() * 1e6) as f32;
        if rng.next_u64() & 1 == 1 { -mag } else { mag }
    },
);

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// Collection size specification: an exact size or a range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo) as u64 + 1;
        self.lo + rng.below(span) as usize
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing `Vec`s of `elem` with a size drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet`s. The size bound caps insertion
    /// attempts, so duplicate draws can make the set smaller, like real
    /// proptest.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    /// Output of [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            for _ in 0..target {
                set.insert(self.elem.gen_value(rng));
            }
            set
        }
    }
}

pub use collection::{BTreeSetStrategy, VecStrategy};

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Each function runs `config.cases` successful
/// cases with inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strats = ($($strat,)+);
            let __hash = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __case: u64 = 0;
            while __passed < __config.cases {
                assert!(
                    __rejected <= __config.max_global_rejects,
                    "proptest: too many prop_assume! rejections ({__rejected})"
                );
                let mut __rng = $crate::TestRng::for_case(__hash, __case);
                __case += 1;
                let ($($arg,)+) = $crate::Strategy::gen_value(&__strats, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { { $body } ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest property `{}` failed at case {} (seed {:#x}): {}",
                            stringify!($name),
                            __case - 1,
                            __hash ^ (__case - 1),
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                __l, format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Chooses among strategies, optionally with `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The commonly-imported surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// Keep BTreeSet referenced for the doc link above even without std feature
// gymnastics.
#[allow(unused)]
fn _btree_set_marker(_: BTreeSet<u8>) {}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 0);
        for _ in 0..500 {
            let v = (3u64..17).gen_value(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i32..6).gen_value(&mut rng);
            assert!((-5..6).contains(&s));
            let f = (0.25f64..0.75).gen_value(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (2u8..=4).gen_value(&mut rng);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn oneof_weighted_and_unweighted_compile_and_cover() {
        let mut rng = crate::TestRng::for_case(2, 0);
        let u = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let w = prop_oneof![4 => Just(10u8), 1 => Just(20u8)];
        let mut seen = std::collections::BTreeSet::new();
        let mut tens = 0;
        for _ in 0..300 {
            seen.insert(u.gen_value(&mut rng));
            if w.gen_value(&mut rng) == 10 {
                tens += 1;
            }
        }
        assert_eq!(seen.len(), 3);
        assert!(tens > 150, "weight-4 arm should dominate, got {tens}/300");
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::for_case(3, 0);
        for _ in 0..100 {
            let v = collection::vec(0u64..10, 2..5).gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = collection::vec(0u64..10, 4usize).gen_value(&mut rng);
            assert_eq!(exact.len(), 4);
            let s = collection::btree_set(0u16..8, 0..7).gen_value(&mut rng);
            assert!(s.len() < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn runner_executes_and_maps(x in 1u64..100, y in any::<bool>()) {
            let mapped = (0u64..10).prop_map(move |v| v + x);
            let mut rng = crate::TestRng::for_case(9, x);
            let v = mapped.gen_value(&mut rng);
            prop_assert!(v >= x, "map should offset by x");
            prop_assert_ne!(v, x + 10);
            if y {
                prop_assert_eq!(x, x);
            }
        }

        #[test]
        fn helper_question_mark_works(x in 0u64..50) {
            fn helper(x: u64) -> Result<(), TestCaseError> {
                prop_assert!(x < 50);
                Ok(())
            }
            helper(x)?;
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x < 9);
            prop_assert!(x < 9);
        }
    }
}
