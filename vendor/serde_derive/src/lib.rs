//! `#[derive(Serialize, Deserialize)]` for the vendored value-tree serde.
//!
//! Implemented directly on `proc_macro::TokenTree` (no `syn`/`quote`, which
//! are unavailable offline). Supports the shapes this workspace uses:
//! non-generic structs (named, tuple/newtype, unit) and enums (unit, tuple,
//! and struct variants), with no `#[serde(...)]` attributes. Newtype structs
//! serialize transparently; enum variants follow serde_json conventions
//! (`"Unit"` / `{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attribute groups (including expanded doc comments).
    fn skip_attrs(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            self.pos += 1;
                        }
                        _ => panic!("serde_derive: malformed attribute"),
                    }
                }
                _ => break,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored serde");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: malformed struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: malformed enum body: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        fields.push(c.expect_ident("field name"));
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, found {other:?}"),
        }
        // Skip the type: consume until a comma outside of `<...>` nesting.
        // Parens/brackets/braces arrive as single Group tokens, so only angle
        // brackets need explicit depth tracking.
        let mut angle_depth = 0usize;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    c.pos += 1;
                    break;
                }
                _ => {}
            }
            c.pos += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0usize;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        match c.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => c.pos += 1,
            None => {}
            other => panic!("serde_derive: expected `,` between variants, found {other:?}"),
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(names) => map_literal(names.iter().map(|f| {
            (
                f.clone(),
                format!("::serde::Serialize::to_value(&self.{f})"),
            )
        })),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_elem(__items, {i})?"))
                .collect();
            format!(
                "match v {{\n\
                 \t::serde::Value::Seq(__items) => ::std::result::Result::Ok({name}({fields})),\n\
                 \t__other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"{name}: expected sequence, got {{__other:?}}\"))),\n\
                 }}",
                fields = items.join(", ")
            )
        }
        Fields::Named(names) => {
            let items: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         \t\t{body}\n\
         \t}}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => {
                let _ = writeln!(
                    arms,
                    "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                );
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                };
                let _ = writeln!(
                    arms,
                    "{name}::{vname}({binds}) => {map},",
                    binds = binds.join(", "),
                    map = map_literal([(vname.clone(), payload)]),
                );
            }
            Fields::Named(fnames) => {
                let payload = map_literal(
                    fnames
                        .iter()
                        .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})"))),
                );
                let _ = writeln!(
                    arms,
                    "{name}::{vname} {{ {fields} }} => {map},",
                    fields = fnames.join(", "),
                    map = map_literal([(vname.clone(), payload)]),
                );
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{\n\
         \t\tmatch self {{\n{arms}\t\t}}\n\
         \t}}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => {
                let _ = writeln!(
                    unit_arms,
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                );
            }
            Fields::Tuple(1) => {
                let _ = writeln!(
                    data_arms,
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(__inner)?)),"
                );
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::de_elem(__items, {i})?"))
                    .collect();
                let _ = writeln!(
                    data_arms,
                    "\"{vname}\" => match __inner {{\n\
                     \t::serde::Value::Seq(__items) => ::std::result::Result::Ok({name}::{vname}({fields})),\n\
                     \t__other => ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"{name}::{vname}: expected sequence, got {{__other:?}}\"))),\n\
                     }},",
                    fields = items.join(", ")
                );
            }
            Fields::Named(fnames) => {
                let items: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("{f}: ::serde::de_field(__inner, \"{f}\")?"))
                    .collect();
                let _ = writeln!(
                    data_arms,
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                    items.join(", ")
                );
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         \t\tmatch v {{\n\
         \t\t\t::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         \t\t\t\t__other => ::std::result::Result::Err(::serde::Error::msg(\
         ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         \t\t\t}},\n\
         \t\t\t::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
         \t\t\t\tlet (__k, __inner) = &__entries[0];\n\
         \t\t\t\tmatch __k.as_str() {{\n\
         {data_arms}\
         \t\t\t\t\t__other => ::std::result::Result::Err(::serde::Error::msg(\
         ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         \t\t\t\t}}\n\
         \t\t\t}}\n\
         \t\t\t__other => ::std::result::Result::Err(::serde::Error::msg(\
         ::std::format!(\"{name}: expected variant, got {{__other:?}}\"))),\n\
         \t\t}}\n\
         \t}}\n\
         }}"
    )
}

fn map_literal(entries: impl IntoIterator<Item = (String, String)>) -> String {
    let items: Vec<String> = entries
        .into_iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", items.join(", "))
}
