//! Minimal, offline-friendly stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: [`RngCore`], [`SeedableRng`],
//! [`Rng::gen_range`] over half-open integer ranges, and
//! [`rngs::SmallRng`] — implemented, like the real rand 0.8 on 64-bit
//! platforms, as xoshiro256++ seeded through SplitMix64. Statistical quality
//! matters here: the workspace's deterministic-simulation RNG derives from
//! `SmallRng` and its tests check moments and uniformity.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` seed by expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_uniform_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

sample_uniform_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        if v < high {
            v
        } else {
            // Guard against rounding up to the excluded endpoint.
            f64::from_bits(high.to_bits() - 1)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Draws uniformly from `[0, span)` (`span == 0` means the full u64 range)
/// using Lemire's widening-multiply method with rejection, so there is no
/// modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from the half-open range `low..high`.
    ///
    /// Panics if the range is empty, matching rand's behavior.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns a uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Deterministic non-cryptographic generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind rand 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; nudge it.
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    1,
                ];
            }
            SmallRng { s }
        }
    }

    /// Alias used when callers ask for the "standard" generator; same engine.
    pub type StdRng = SmallRng;
}

/// Commonly imported items.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SampleUniform, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "different seeds should diverge");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 zero bytes from a uniform source is a ~1e-31 event.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
