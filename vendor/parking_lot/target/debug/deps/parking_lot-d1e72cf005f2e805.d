/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-d1e72cf005f2e805.d: src/lib.rs

/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-d1e72cf005f2e805: src/lib.rs

src/lib.rs:
