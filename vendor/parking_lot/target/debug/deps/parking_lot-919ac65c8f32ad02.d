/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-919ac65c8f32ad02.d: src/lib.rs

/root/repo/vendor/parking_lot/target/debug/deps/libparking_lot-919ac65c8f32ad02.rlib: src/lib.rs

/root/repo/vendor/parking_lot/target/debug/deps/libparking_lot-919ac65c8f32ad02.rmeta: src/lib.rs

src/lib.rs:
