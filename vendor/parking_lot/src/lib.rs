//! Minimal, offline-friendly stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API: locks
//! return guards directly (poisoning is swallowed — if a thread panicked
//! while holding the lock we keep going, matching parking_lot semantics),
//! and `Condvar::wait`/`wait_for` take `&mut MutexGuard` instead of
//! consuming the guard.

use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutex that hands out guards without a poison `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard for [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable whose wait methods re-lend the guard instead of
/// consuming it.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the guarded mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.relend(guard, |inner| match self.0.wait(inner) {
            Ok(g) => (g, false),
            Err(e) => (e.into_inner(), false),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        WaitTimeoutResult(
            self.relend(guard, |inner| match self.0.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r.timed_out()),
                Err(e) => {
                    let (g, r) = e.into_inner();
                    (g, r.timed_out())
                }
            }),
        )
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    /// Adapts std's guard-consuming waits to parking_lot's `&mut` guard API:
    /// the std guard is moved out of `guard` for the duration of the wait
    /// and the reacquired guard is written back in place. The closure only
    /// returns normally (std condvar waits don't panic), so no intermediate
    /// state escapes.
    fn relend<'a, T, R>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(sync::MutexGuard<'a, T>) -> (sync::MutexGuard<'a, T>, R),
    ) -> R {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let (reacquired, result) = f(inner);
            std::ptr::write(&mut guard.0, reacquired);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
        // The guard is still valid and the mutex still held.
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let ready = Arc::new(AtomicBool::new(false));
        let (pair2, ready2) = (Arc::clone(&pair), Arc::clone(&ready));
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            ready2.store(true, Ordering::SeqCst);
            while !*g {
                let r = cv.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out(), "should be woken, not timed out");
            }
        });
        while !ready.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }
}
