//! Minimal, offline-friendly stand-in for the `criterion` crate.
//!
//! Provides the measurement surface the workspace's benches use
//! (`bench_function`, `benchmark_group`, `Bencher::iter`/`iter_batched`,
//! `black_box`, `criterion_group!`/`criterion_main!`) with a simple but
//! honest methodology: adaptive calibration to a target measurement time,
//! multiple samples, and a median-of-samples report printed to stdout.
//! No plotting, no statistics beyond median/min/max, no saved baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the stub runs one setup per
/// routine invocation regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// Exactly one input per batch.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    target: Duration,
    sample_count: usize,
}

impl Bencher {
    fn new(target: Duration, sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 0,
            target,
            sample_count,
        }
    }

    /// Benchmarks `routine` by calling it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least target/sample_count.
        let per_sample = self.target / self.sample_count as u32;
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= per_sample || iters >= 1 << 30 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                // Aim directly for the per-sample budget, with headroom.
                let scale = per_sample.as_nanos() as f64 / elapsed.as_nanos() as f64;
                (iters as f64 * scale.clamp(1.5, 16.0)).ceil() as u64
            };
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Benchmarks `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let per_sample = self.target / self.sample_count as u32;
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= per_sample || iters >= 1 << 24 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = per_sample.as_nanos() as f64 / elapsed.as_nanos() as f64;
                (iters as f64 * scale.clamp(1.5, 16.0)).ceil() as u64
            };
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    sample_count: usize,
    filter: Option<String>,
    list_only: bool,
    run: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut list_only = false;
        let mut run = true;
        // Accept the argument shapes cargo passes to bench binaries
        // (`--bench`, `--test`, a positional filter, and flags we ignore).
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--quick" | "--noplot" | "--quiet" | "--verbose" | "--exact"
                | "--nocapture" => {}
                "--test" => run = false,
                "--list" => list_only = true,
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" | "--profile-time" => {
                    args.next();
                }
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            measurement_time: Duration::from_millis(400),
            sample_count: 11,
            filter,
            list_only,
            run,
        }
    }
}

impl Criterion {
    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        if self.list_only {
            println!("{id}: benchmark");
            return self;
        }
        if !self.run {
            return self;
        }
        let mut b = Bencher::new(self.measurement_time, self.sample_count);
        f(&mut b);
        b.report(id);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named set of related benchmarks; ids are prefixed with the group name.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group (drop would do the same; provided for API parity).
    pub fn finish(self) {}
}

/// Declares a group function that runs each listed benchmark with a fresh
/// default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(20), 3);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(10), 2);
        b.iter_batched(
            || vec![1u64; 16],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert_eq!(b.samples.len(), 2);
    }

    #[test]
    fn format_scales() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
    }
}
