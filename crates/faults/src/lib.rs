#![warn(missing_docs)]
//! Deterministic fault injection for the thrifty-barrier stack.
//!
//! The paper's correctness story (§3.3) assumes a perfect world: the
//! barrier-flag invalidation always arrives, countdown timers fire exactly
//! when programmed, and sleep-state exits take their rated latency. This
//! crate makes each of those assumptions violable — reproducibly.
//!
//! A [`FaultInjector`] is built from a [`FaultPlan`] (`tb-core::config`)
//! and draws every decision from splittable [`SimRng`] streams derived from
//! the plan's seed, one stream per fault class, so
//!
//! * the same plan and seed replay the identical fault schedule at any
//!   worker-pool size, and
//! * enabling one fault class never perturbs the draws of another.
//!
//! The injector covers the *executor-side* fault classes: countdown-timer
//! drift and spurious fires ([`FaultInjector::timer_skew`]), oversleep
//! stalls ([`FaultInjector::oversleep_extra`]), and delayed unpark analogs
//! ([`FaultInjector::unpark_delay`]). Lost/delayed invalidation wake-ups
//! live in the memory substrate itself (`tb-mem::InvalidationFaults`),
//! configured from the same plan by the simulator.
//!
//! Hardening sizes are here too: [`guard_deadline`] computes the watchdog
//! re-arm point — a multiple of the predicted stall, floored — that
//! backstops lost external wake-ups, and [`FaultSummary`] accumulates
//! injected-fault and recovery counts for reports.

use serde::{Deserialize, Serialize};
use tb_core::{FaultPlan, TimerSkew};
use tb_sim::{Cycles, SimRng};
use tb_trace::FaultKind;

/// Guard-timer multiple: the watchdog fires this many predicted stalls
/// after arming (re-arming at the same multiple while the barrier is still
/// unreleased). Large enough that a healthy wake-up path always wins; small
/// enough that a lost wake-up costs a bounded number of episodes' worth of
/// time, not forever.
pub const GUARD_MULTIPLE: u64 = 4;

/// Guard-interval floor, used when no prediction exists (warm-up episodes,
/// quarantined sites) or the predicted stall is tiny. Comfortably above the
/// deepest sleep state's round-trip (70 µs) so the guard never races a
/// healthy exit transition.
pub const MIN_GUARD: Cycles = Cycles::from_micros(200);

/// The absolute time at which a guard timer armed at `now` should fire,
/// given the predicted stall (if any): `now + max(GUARD_MULTIPLE × stall,
/// MIN_GUARD)`.
pub fn guard_deadline(now: Cycles, predicted_stall: Option<Cycles>) -> Cycles {
    let interval = predicted_stall
        .map(|s| s * GUARD_MULTIPLE)
        .unwrap_or(Cycles::ZERO)
        .max(MIN_GUARD);
    now + interval
}

/// Seed-driven fault source for the executor-side fault classes.
///
/// One independent RNG stream per class; each opportunity (an armed timer,
/// a beginning exit transition, an unpark) draws from its class's stream
/// only, so fault schedules are stable under unrelated changes.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    timer_rng: SimRng,
    oversleep_rng: SimRng,
    unpark_rng: SimRng,
    wedge_rng: SimRng,
}

impl FaultInjector {
    /// Builds the injector, or `None` for a disabled plan — callers keep a
    /// plain `Option` and fault-free runs never touch injection code.
    pub fn from_plan(plan: &FaultPlan) -> Option<Self> {
        if !plan.enabled() {
            return None;
        }
        let root = SimRng::new(plan.seed);
        Some(FaultInjector {
            plan: plan.clone(),
            timer_rng: root.derive("fault-timer", 0),
            oversleep_rng: root.derive("fault-oversleep", 0),
            unpark_rng: root.derive("fault-unpark", 0),
            wedge_rng: root.derive("fault-wedge", 0),
        })
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Fault (b): perturb an armed countdown timer. `countdown` is the
    /// remaining time until the programmed fire. Spurious early fires are
    /// drawn first, then drift, so each armed timer consumes a stable
    /// number of draws per enabled class.
    pub fn timer_skew(&mut self, countdown: Cycles) -> Option<(TimerSkew, FaultKind)> {
        if countdown == Cycles::ZERO {
            return None;
        }
        if self.plan.spurious_fire > 0.0 && self.timer_rng.chance(self.plan.spurious_fire) {
            // Fire anywhere inside the countdown window.
            let early = countdown.scale(self.timer_rng.uniform());
            return Some((TimerSkew::SpuriousEarly(early), FaultKind::SpuriousTimer));
        }
        if self.plan.timer_drift > 0.0 && self.timer_rng.chance(self.plan.timer_drift) {
            let late = countdown.scale(self.plan.timer_drift_frac * self.timer_rng.uniform());
            if late > Cycles::ZERO {
                return Some((TimerSkew::DriftLate(late), FaultKind::TimerDrift));
            }
        }
        None
    }

    /// Fault (c): extra stall added to a sleep-state exit transition, if
    /// this exit oversleeps.
    pub fn oversleep_extra(&mut self) -> Option<Cycles> {
        if self.plan.oversleep > 0.0 && self.oversleep_rng.chance(self.plan.oversleep) {
            let ns = self.oversleep_rng.exponential(self.plan.oversleep_mean_ns);
            Some(Cycles::from_nanos(ns as u64).max(Cycles::new(1)))
        } else {
            None
        }
    }

    /// Fault (b), real-threads flavor: whether a parked thread takes a
    /// spurious OS-level wake-up (the runtime analog of a spurious timer
    /// fire; the predicate loop absorbs it). Drawn from the timer stream.
    pub fn spurious_park_wake(&mut self) -> bool {
        self.plan.spurious_fire > 0.0 && self.timer_rng.chance(self.plan.spurious_fire)
    }

    /// Fault (e): whether a firing guard timer wedges permanently instead
    /// of rescuing its thread. A wedged guard never re-arms, so a thread
    /// that also lost its wake-up is stuck for good — the livelock class
    /// the harness watchdog (not the barrier) must catch. The probability
    /// short-circuits before drawing so plans without this class keep
    /// their schedules unchanged.
    pub fn wedge_guard(&mut self) -> bool {
        self.plan.wedge_guard > 0.0 && self.wedge_rng.chance(self.plan.wedge_guard)
    }

    /// Fault (d): delay added to an unpark analog (real-threads runtime),
    /// if this unpark is delayed.
    pub fn unpark_delay(&mut self) -> Option<Cycles> {
        if self.plan.delay_unpark > 0.0 && self.unpark_rng.chance(self.plan.delay_unpark) {
            let ns = self.unpark_rng.exponential(self.plan.delay_unpark_mean_ns);
            Some(Cycles::from_nanos(ns as u64).max(Cycles::new(1)))
        } else {
            None
        }
    }
}

/// Injected-fault and recovery tallies for one run — the side-channel the
/// harness aggregates (the serialized `RunReport` shape is frozen by golden
/// fixtures, so these travel next to it, not inside it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Dropped barrier-flag invalidation wake-ups.
    pub lost_wakeups: u64,
    /// Delayed barrier-flag invalidation wake-ups.
    pub delayed_wakeups: u64,
    /// Countdown timers that drifted late.
    pub timer_drifts: u64,
    /// Countdown timers that fired spuriously early.
    pub spurious_timers: u64,
    /// Sleep-state exits that stalled past their rated latency.
    pub oversleeps: u64,
    /// Delayed unpark analogs.
    pub delayed_unparks: u64,
    /// Guard timers that wedged permanently instead of rescuing.
    pub wedged_guards: u64,
    /// Guard-timer rescues (threads whose primary wake-up path failed).
    pub guard_recoveries: u64,
    /// Barrier sites that entered predictor quarantine.
    pub quarantine_entries: u64,
    /// Barrier sites that left predictor quarantine.
    pub quarantine_exits: u64,
}

impl FaultSummary {
    /// Tallies one injected fault.
    pub fn record(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::LostWakeup => self.lost_wakeups += 1,
            FaultKind::DelayedWakeup => self.delayed_wakeups += 1,
            FaultKind::TimerDrift => self.timer_drifts += 1,
            FaultKind::SpuriousTimer => self.spurious_timers += 1,
            FaultKind::Oversleep => self.oversleeps += 1,
            FaultKind::DelayedUnpark => self.delayed_unparks += 1,
            FaultKind::WedgedGuard => self.wedged_guards += 1,
        }
    }

    /// Total faults injected (recoveries and quarantine transitions are
    /// responses, not injections).
    pub fn injected(&self) -> u64 {
        self.lost_wakeups
            + self.delayed_wakeups
            + self.timer_drifts
            + self.spurious_timers
            + self.oversleeps
            + self.delayed_unparks
            + self.wedged_guards
    }

    /// Accumulates another run's tallies into this one.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.lost_wakeups += other.lost_wakeups;
        self.delayed_wakeups += other.delayed_wakeups;
        self.timer_drifts += other.timer_drifts;
        self.spurious_timers += other.spurious_timers;
        self.oversleeps += other.oversleeps;
        self.delayed_unparks += other.delayed_unparks;
        self.wedged_guards += other.wedged_guards;
        self.guard_recoveries += other.guard_recoveries;
        self.quarantine_entries += other.quarantine_entries;
        self.quarantine_exits += other.quarantine_exits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::by_name("storm", seed).unwrap()
    }

    #[test]
    fn disabled_plan_builds_no_injector() {
        assert!(FaultInjector::from_plan(&FaultPlan::none()).is_none());
        assert!(FaultInjector::from_plan(&plan(1)).is_some());
    }

    #[test]
    fn injector_is_deterministic() {
        let mut a = FaultInjector::from_plan(&plan(42)).unwrap();
        let mut b = FaultInjector::from_plan(&plan(42)).unwrap();
        for _ in 0..200 {
            let c = Cycles::from_micros(500);
            assert_eq!(a.timer_skew(c), b.timer_skew(c));
            assert_eq!(a.oversleep_extra(), b.oversleep_extra());
            assert_eq!(a.unpark_delay(), b.unpark_delay());
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mut a = FaultInjector::from_plan(&plan(1)).unwrap();
        let mut b = FaultInjector::from_plan(&plan(2)).unwrap();
        let same = (0..256)
            .filter(|_| {
                a.timer_skew(Cycles::from_micros(500)) == b.timer_skew(Cycles::from_micros(500))
            })
            .count();
        assert!(same < 256, "schedules differ somewhere");
    }

    #[test]
    fn timer_skew_respects_the_countdown() {
        let mut inj = FaultInjector::from_plan(&plan(7)).unwrap();
        let countdown = Cycles::from_micros(500);
        let mut saw_spurious = false;
        let mut saw_drift = false;
        for _ in 0..2000 {
            match inj.timer_skew(countdown) {
                Some((TimerSkew::SpuriousEarly(e), FaultKind::SpuriousTimer)) => {
                    assert!(e <= countdown, "fires within the window");
                    saw_spurious = true;
                }
                Some((TimerSkew::DriftLate(l), FaultKind::TimerDrift)) => {
                    // Drift is bounded by drift_frac × countdown.
                    assert!(l <= countdown.scale(plan(7).timer_drift_frac));
                    saw_drift = true;
                }
                Some(other) => panic!("unexpected skew {other:?}"),
                None => {}
            }
        }
        assert!(saw_spurious && saw_drift, "both classes fire under storm");
        assert_eq!(inj.timer_skew(Cycles::ZERO), None, "no countdown, no skew");
    }

    #[test]
    fn delays_are_positive_when_injected() {
        let mut inj = FaultInjector::from_plan(&plan(9)).unwrap();
        let mut hits = 0;
        for _ in 0..500 {
            if let Some(d) = inj.oversleep_extra() {
                assert!(d > Cycles::ZERO);
                hits += 1;
            }
            if let Some(d) = inj.unpark_delay() {
                assert!(d > Cycles::ZERO);
                hits += 1;
            }
        }
        assert!(hits > 0, "storm injects at these rates");
    }

    #[test]
    fn guard_deadline_floors_and_scales() {
        let now = Cycles::from_millis(1);
        assert_eq!(guard_deadline(now, None), now + MIN_GUARD);
        assert_eq!(
            guard_deadline(now, Some(Cycles::from_micros(10))),
            now + MIN_GUARD,
            "tiny stalls floor at MIN_GUARD"
        );
        let stall = Cycles::from_micros(500);
        assert_eq!(
            guard_deadline(now, Some(stall)),
            now + stall * GUARD_MULTIPLE
        );
    }

    #[test]
    fn wedge_guard_short_circuits_when_disabled() {
        // Storm has wedge_guard = 0.0: the method must return false without
        // drawing, so adding the wedge stream never perturbs existing
        // scenarios' schedules.
        let mut storm = FaultInjector::from_plan(&plan(3)).unwrap();
        for _ in 0..100 {
            assert!(!storm.wedge_guard());
        }
        let mut hang = FaultInjector::from_plan(&FaultPlan::by_name("hang", 3).unwrap()).unwrap();
        assert!(hang.wedge_guard(), "hang wedges every firing guard");
    }

    #[test]
    fn summary_records_and_merges() {
        let mut s = FaultSummary::default();
        s.record(FaultKind::LostWakeup);
        s.record(FaultKind::Oversleep);
        s.guard_recoveries = 1;
        let mut t = FaultSummary::default();
        t.record(FaultKind::TimerDrift);
        t.quarantine_entries = 2;
        s.merge(&t);
        assert_eq!(s.injected(), 3);
        assert_eq!(s.lost_wakeups, 1);
        assert_eq!(s.timer_drifts, 1);
        assert_eq!(s.guard_recoveries, 1);
        assert_eq!(s.quarantine_entries, 2);
        let json = serde::json::to_string(&s);
        let back: FaultSummary = serde::json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
