//! Property-based tests of the energy substrate.

use proptest::prelude::*;
use tb_energy::{CpuLedger, EnergyCategory, MachineLedger, PowerModel, SleepTable};
use tb_sim::Cycles;

fn arb_category() -> impl Strategy<Value = EnergyCategory> {
    prop_oneof![
        Just(EnergyCategory::Compute),
        Just(EnergyCategory::Spin),
        Just(EnergyCategory::Transition),
        Just(EnergyCategory::Sleep),
    ]
}

proptest! {
    /// Energy is exactly the sum of power × time over recorded intervals,
    /// per category and in total.
    #[test]
    fn ledger_is_additive(
        records in proptest::collection::vec(
            (arb_category(), 1u64..10_000_000, 0.0f64..200.0),
            0..50,
        ),
    ) {
        let mut ledger = CpuLedger::new();
        let mut expected = [0.0f64; 4];
        let mut expected_time = [0.0f64; 4];
        for &(cat, dur, watts) in &records {
            ledger.record(cat, Cycles::new(dur), watts);
            expected[cat.index()] += watts * Cycles::new(dur).as_secs_f64();
            expected_time[cat.index()] += dur as f64;
        }
        for cat in EnergyCategory::ALL {
            prop_assert!(
                (ledger.energy()[cat] - expected[cat.index()]).abs()
                    < 1e-9 * (1.0 + expected[cat.index()]),
            );
            prop_assert!((ledger.time()[cat] - expected_time[cat.index()]).abs() < 1e-6);
        }
        let total: f64 = expected.iter().sum();
        prop_assert!((ledger.total_energy() - total).abs() < 1e-9 * (1.0 + total));
    }

    /// A transition ramp charges the average of its endpoint powers.
    #[test]
    fn transition_ramp_average(
        dur in 1u64..1_000_000,
        from in 0.0f64..200.0,
        to in 0.0f64..200.0,
    ) {
        let mut ledger = CpuLedger::new();
        ledger.record_transition(Cycles::new(dur), from, to);
        let expected = 0.5 * (from + to) * Cycles::new(dur).as_secs_f64();
        prop_assert!((ledger.energy()[EnergyCategory::Transition] - expected).abs() < 1e-12);
    }

    /// Fractions always sum to 1 (or 0 for an empty breakdown), and
    /// normalization scales linearly.
    #[test]
    fn fractions_and_normalization(
        values in proptest::collection::vec(0.0f64..1e6, 4),
        denom in 0.1f64..1e6,
    ) {
        let mut b = tb_energy::CategoryBreakdown::new();
        for (cat, &v) in EnergyCategory::ALL.iter().zip(&values) {
            b[*cat] = v;
        }
        let f = b.fractions();
        let total: f64 = values.iter().sum();
        if total > 0.0 {
            prop_assert!((f.total() - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(f.total(), 0.0);
        }
        let n = b.normalized_to(denom);
        prop_assert!((n.total() - total / denom).abs() < 1e-9 * (1.0 + total / denom));
    }

    /// Machine-wide aggregation equals the sum over CPUs.
    #[test]
    fn machine_ledger_aggregates(
        per_cpu in proptest::collection::vec((1u64..1_000_000, 0.0f64..100.0), 1..16),
    ) {
        let mut m = MachineLedger::new(per_cpu.len());
        let mut total = 0.0;
        for (cpu, &(dur, watts)) in per_cpu.iter().enumerate() {
            m.cpu_mut(cpu).record(EnergyCategory::Compute, Cycles::new(dur), watts);
            total += watts * Cycles::new(dur).as_secs_f64();
        }
        prop_assert!((m.total_energy() - total).abs() < 1e-9 * (1.0 + total));
    }

    /// Sleep-state residency power never exceeds the power of a shallower
    /// state, and deeper states always have longer-or-equal transitions.
    #[test]
    fn sleep_table_ordering(tdp in 1.0f64..500.0) {
        let table = SleepTable::paper();
        let states: Vec<_> = table.iter().collect();
        for w in states.windows(2) {
            prop_assert!(w[1].power_watts(tdp) < w[0].power_watts(tdp));
            prop_assert!(w[1].transition_latency() >= w[0].transition_latency());
        }
        // All residency powers are below spin power (sleeping always
        // beats spinning once transitions are amortized).
        let power = PowerModel::paper();
        let scaled_spin = power.spin_watts() / power.tdp_max() * tdp;
        for s in &table {
            prop_assert!(s.power_watts(tdp) < scaled_spin);
        }
    }
}
