//! Per-CPU energy and time accounting, in the four categories of the
//! paper's Figures 5 and 6: Compute, Spin, Transition, Sleep.
//!
//! Energy is power × time; the ledger stores joules and cycles per category
//! so any figure can be rebuilt exactly. Transition intervals are charged at
//! the average of the endpoint powers, matching the paper's assumption that
//! "power consumption changes linearly along the transition latency".

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};
use tb_sim::Cycles;

/// The category an interval of a CPU's life belongs to.
///
/// `Compute` includes every stall that is not barrier-related (memory, lock
/// contention), exactly as in §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyCategory {
    /// Executing application code (including non-barrier stalls).
    Compute,
    /// Spinning on a barrier flag.
    Spin,
    /// Transitioning into or out of a low-power sleep state.
    Transition,
    /// Resident in a low-power sleep state.
    Sleep,
}

impl EnergyCategory {
    /// All categories in the display order of the paper's figures.
    pub const ALL: [EnergyCategory; 4] = [
        EnergyCategory::Compute,
        EnergyCategory::Spin,
        EnergyCategory::Transition,
        EnergyCategory::Sleep,
    ];

    /// Stable index in `0..4`.
    pub fn index(self) -> usize {
        match self {
            EnergyCategory::Compute => 0,
            EnergyCategory::Spin => 1,
            EnergyCategory::Transition => 2,
            EnergyCategory::Sleep => 3,
        }
    }

    /// Human-readable label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::Compute => "Compute",
            EnergyCategory::Spin => "Spin",
            EnergyCategory::Transition => "Transition",
            EnergyCategory::Sleep => "Sleep",
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-category totals of some additive quantity (joules or cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CategoryBreakdown {
    values: [f64; 4],
}

impl CategoryBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        CategoryBreakdown::default()
    }

    /// Sum across categories.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Each category as a fraction of this breakdown's own total
    /// (all zeros when the total is zero).
    pub fn fractions(&self) -> CategoryBreakdown {
        let t = self.total();
        if t == 0.0 {
            return CategoryBreakdown::new();
        }
        let mut out = CategoryBreakdown::new();
        for c in EnergyCategory::ALL {
            out[c] = self[c] / t;
        }
        out
    }

    /// Each category scaled by `1/denominator` — used to normalize a
    /// configuration's breakdown to the Baseline total, as in Figures 5-6.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or negative.
    pub fn normalized_to(&self, denominator: f64) -> CategoryBreakdown {
        assert!(
            denominator > 0.0,
            "normalization denominator must be positive"
        );
        let mut out = CategoryBreakdown::new();
        for c in EnergyCategory::ALL {
            out[c] = self[c] / denominator;
        }
        out
    }

    /// Adds another breakdown element-wise.
    pub fn add(&mut self, other: &CategoryBreakdown) {
        for c in EnergyCategory::ALL {
            self[c] += other[c];
        }
    }
}

impl Index<EnergyCategory> for CategoryBreakdown {
    type Output = f64;
    fn index(&self, c: EnergyCategory) -> &f64 {
        &self.values[c.index()]
    }
}

impl IndexMut<EnergyCategory> for CategoryBreakdown {
    fn index_mut(&mut self, c: EnergyCategory) -> &mut f64 {
        &mut self.values[c.index()]
    }
}

impl fmt::Display for CategoryBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in EnergyCategory::ALL {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{}={:.4}", c.label(), self[c])?;
        }
        Ok(())
    }
}

/// One logged sleep-state power transition, tagged with the barrier
/// episode that caused it (for cross-referencing energy against a trace).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionRecord {
    /// The barrier episode the transition belongs to.
    pub episode: u64,
    /// Transition duration.
    pub duration: Cycles,
    /// Power at the start of the ramp, watts.
    pub from_watts: f64,
    /// Power at the end of the ramp, watts.
    pub to_watts: f64,
}

/// The energy/time ledger of one CPU.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CpuLedger {
    energy_joules: CategoryBreakdown,
    time_cycles: CategoryBreakdown,
    /// Per-transition log (empty unless enabled — aggregate accounting
    /// must stay O(1) memory for long runs).
    transition_log: Vec<TransitionRecord>,
    log_transitions: bool,
}

impl CpuLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CpuLedger::default()
    }

    /// Records `duration` spent in `category` drawing `power_watts`.
    ///
    /// # Panics
    ///
    /// Panics if `power_watts` is negative or not finite.
    pub fn record(&mut self, category: EnergyCategory, duration: Cycles, power_watts: f64) {
        assert!(
            power_watts.is_finite() && power_watts >= 0.0,
            "power must be finite and non-negative, got {power_watts}"
        );
        let secs = duration.as_secs_f64();
        self.energy_joules[category] += power_watts * secs;
        self.time_cycles[category] += duration.as_u64() as f64;
    }

    /// Records a linear power ramp from `from_watts` to `to_watts` over
    /// `duration`, charged to `Transition`.
    pub fn record_transition(&mut self, duration: Cycles, from_watts: f64, to_watts: f64) {
        self.record(
            EnergyCategory::Transition,
            duration,
            0.5 * (from_watts + to_watts),
        );
    }

    /// Like [`record_transition`](CpuLedger::record_transition), but also
    /// appends a [`TransitionRecord`] tagged with the barrier `episode` when
    /// transition logging is enabled.
    pub fn record_transition_tagged(
        &mut self,
        duration: Cycles,
        from_watts: f64,
        to_watts: f64,
        episode: u64,
    ) {
        self.record_transition(duration, from_watts, to_watts);
        if self.log_transitions {
            self.transition_log.push(TransitionRecord {
                episode,
                duration,
                from_watts,
                to_watts,
            });
        }
    }

    /// Turns on per-transition logging (off by default; the log grows by
    /// one record per tagged transition).
    pub fn enable_transition_log(&mut self) {
        self.log_transitions = true;
    }

    /// The tagged transitions recorded so far (empty unless logging was
    /// enabled before they happened).
    pub fn transition_log(&self) -> &[TransitionRecord] {
        &self.transition_log
    }

    /// Energy per category, joules.
    pub fn energy(&self) -> &CategoryBreakdown {
        &self.energy_joules
    }

    /// Time per category, cycles.
    pub fn time(&self) -> &CategoryBreakdown {
        &self.time_cycles
    }

    /// Total energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.energy_joules.total()
    }

    /// Total accounted time, cycles.
    pub fn total_time(&self) -> f64 {
        self.time_cycles.total()
    }

    /// Merges another CPU's ledger into this one (including any logged
    /// transitions).
    pub fn merge(&mut self, other: &CpuLedger) {
        self.energy_joules.add(&other.energy_joules);
        self.time_cycles.add(&other.time_cycles);
        self.transition_log.extend_from_slice(&other.transition_log);
    }
}

/// Ledgers for every CPU of a simulated machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineLedger {
    cpus: Vec<CpuLedger>,
}

impl MachineLedger {
    /// Creates a ledger for `n_cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n_cpus` is zero.
    pub fn new(n_cpus: usize) -> Self {
        assert!(n_cpus > 0, "a machine needs at least one CPU");
        MachineLedger {
            cpus: vec![CpuLedger::new(); n_cpus],
        }
    }

    /// Number of CPUs.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// `true` when there are no CPUs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// The ledger of one CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn cpu(&self, cpu: usize) -> &CpuLedger {
        &self.cpus[cpu]
    }

    /// Mutable ledger of one CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn cpu_mut(&mut self, cpu: usize) -> &mut CpuLedger {
        &mut self.cpus[cpu]
    }

    /// Iterates over per-CPU ledgers.
    pub fn iter(&self) -> std::slice::Iter<'_, CpuLedger> {
        self.cpus.iter()
    }

    /// Turns on per-transition logging on every CPU's ledger.
    pub fn enable_transition_log(&mut self) {
        for cpu in &mut self.cpus {
            cpu.enable_transition_log();
        }
    }

    /// Machine-wide energy per category, joules.
    pub fn energy(&self) -> CategoryBreakdown {
        let mut out = CategoryBreakdown::new();
        for c in &self.cpus {
            out.add(c.energy());
        }
        out
    }

    /// Machine-wide CPU-time per category, cycles (sums over CPUs, so the
    /// total is `n_cpus ×` wall-clock when every cycle is accounted).
    pub fn time(&self) -> CategoryBreakdown {
        let mut out = CategoryBreakdown::new();
        for c in &self.cpus {
            out.add(c.time());
        }
        out
    }

    /// Machine-wide total energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.energy().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_indices_are_stable_and_distinct() {
        let idx: Vec<usize> = EnergyCategory::ALL.iter().map(|c| c.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn record_accumulates_energy_and_time() {
        let mut l = CpuLedger::new();
        // 1 ms at 50 W = 0.05 J.
        l.record(EnergyCategory::Compute, Cycles::from_millis(1), 50.0);
        l.record(EnergyCategory::Compute, Cycles::from_millis(1), 50.0);
        assert!((l.energy()[EnergyCategory::Compute] - 0.1).abs() < 1e-12);
        assert_eq!(l.time()[EnergyCategory::Compute], 2e6);
        assert_eq!(l.time()[EnergyCategory::Spin], 0.0);
    }

    #[test]
    fn transition_uses_average_power() {
        let mut l = CpuLedger::new();
        // 10 µs ramping 60 W -> 20 W: average 40 W -> 0.4 mJ.
        l.record_transition(Cycles::from_micros(10), 60.0, 20.0);
        assert!((l.energy()[EnergyCategory::Transition] - 4e-4).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut l = CpuLedger::new();
        l.record(EnergyCategory::Compute, Cycles::from_millis(3), 10.0);
        l.record(EnergyCategory::Spin, Cycles::from_millis(1), 10.0);
        let f = l.energy().fractions();
        assert!((f.total() - 1.0).abs() < 1e-12);
        assert!((f[EnergyCategory::Compute] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(CategoryBreakdown::new().fractions().total(), 0.0);
    }

    #[test]
    fn normalization_to_baseline() {
        let mut thrifty = CategoryBreakdown::new();
        thrifty[EnergyCategory::Compute] = 8.0;
        thrifty[EnergyCategory::Sleep] = 1.0;
        let norm = thrifty.normalized_to(10.0); // baseline total = 10 J
        assert!((norm.total() - 0.9).abs() < 1e-12, "90% of baseline");
    }

    #[test]
    #[should_panic(expected = "denominator must be positive")]
    fn normalization_rejects_zero() {
        let _ = CategoryBreakdown::new().normalized_to(0.0);
    }

    #[test]
    #[should_panic(expected = "power must be finite")]
    fn negative_power_rejected() {
        CpuLedger::new().record(EnergyCategory::Sleep, Cycles::new(1), -1.0);
    }

    #[test]
    fn machine_ledger_aggregates() {
        let mut m = MachineLedger::new(4);
        for cpu in 0..4 {
            m.cpu_mut(cpu)
                .record(EnergyCategory::Compute, Cycles::from_millis(1), 25.0);
        }
        assert_eq!(m.len(), 4);
        assert!((m.total_energy() - 4.0 * 0.025).abs() < 1e-12);
        assert_eq!(m.time()[EnergyCategory::Compute], 4e6);
        assert_eq!(m.iter().count(), 4);
    }

    #[test]
    fn transition_log_is_opt_in_and_tagged() {
        let mut l = CpuLedger::new();
        // Not enabled: charged but not logged.
        l.record_transition_tagged(Cycles::from_micros(10), 60.0, 20.0, 0);
        assert!(l.transition_log().is_empty());
        l.enable_transition_log();
        l.record_transition_tagged(Cycles::from_micros(10), 60.0, 20.0, 7);
        assert_eq!(l.transition_log().len(), 1);
        assert_eq!(l.transition_log()[0].episode, 7);
        // Both calls charged energy identically.
        assert!((l.energy()[EnergyCategory::Transition] - 2.0 * 4e-4).abs() < 1e-12);
        // Merging carries the log along.
        let mut sum = CpuLedger::new();
        sum.merge(&l);
        assert_eq!(sum.transition_log().len(), 1);
    }

    #[test]
    fn machine_wide_transition_log_enable() {
        let mut m = MachineLedger::new(2);
        m.enable_transition_log();
        m.cpu_mut(1)
            .record_transition_tagged(Cycles::from_micros(5), 10.0, 1.0, 3);
        assert!(m.cpu(0).transition_log().is_empty());
        assert_eq!(m.cpu(1).transition_log().len(), 1);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = CpuLedger::new();
        let mut b = CpuLedger::new();
        a.record(EnergyCategory::Sleep, Cycles::from_micros(10), 2.0);
        b.record(EnergyCategory::Sleep, Cycles::from_micros(30), 2.0);
        a.merge(&b);
        assert_eq!(a.time()[EnergyCategory::Sleep], 40_000.0);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpu_machine_rejected() {
        let _ = MachineLedger::new(0);
    }

    #[test]
    fn display_contains_all_labels() {
        let s = CategoryBreakdown::new().to_string();
        for c in EnergyCategory::ALL {
            assert!(s.contains(c.label()), "missing {c}");
        }
    }
}
