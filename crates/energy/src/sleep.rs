//! Low-power processor sleep states (Table 3 of the paper).
//!
//! Each state is characterized by its power savings relative to TDPmax, its
//! one-way transition latency, whether the cache can still respond to
//! coherence protocol requests ("snoop") while asleep, and whether the
//! supply voltage is reduced. The paper's three states are inspired by the
//! Intel Pentium family:
//!
//! | State | Savings | Transition | Snoop? | Voltage reduction? |
//! |-------|---------|-----------|--------|---------------------|
//! | Sleep1 (Halt) | 70.2 % | 10 µs | yes | no |
//! | Sleep2 | 79.2 % | 15 µs | no | no |
//! | Sleep3 | 97.8 % | 35 µs | no | yes |
//!
//! Non-snoopable states force the processor to flush dirty *shared* data
//! before sleeping (§3.1), which the machine model charges as extra compute
//! time and coherence traffic.

use serde::{Deserialize, Serialize};
use std::fmt;
use tb_sim::Cycles;

/// Index of a sleep state within its [`SleepTable`], ordered from the
/// shallowest (index 0) to the deepest state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SleepStateId(usize);

impl SleepStateId {
    /// Raw index into the owning table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SleepStateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

/// One low-power sleep state.
#[derive(Debug, Clone, PartialEq)]
pub struct SleepState {
    name: &'static str,
    power_savings: f64,
    transition_latency: Cycles,
    snoops: bool,
    voltage_reduction: bool,
}

impl SleepState {
    /// Creates a sleep state.
    ///
    /// # Panics
    ///
    /// Panics if `power_savings` is not in `(0, 1]` or the latency is zero.
    pub fn new(
        name: &'static str,
        power_savings: f64,
        transition_latency: Cycles,
        snoops: bool,
        voltage_reduction: bool,
    ) -> Self {
        assert!(
            power_savings > 0.0 && power_savings <= 1.0,
            "{name}: power savings must be in (0,1], got {power_savings}"
        );
        assert!(
            transition_latency > Cycles::ZERO,
            "{name}: transition latency must be positive"
        );
        SleepState {
            name,
            power_savings,
            transition_latency,
            snoops,
            voltage_reduction,
        }
    }

    /// Human-readable name ("Sleep1 (Halt)", …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Fraction of TDPmax saved while resident in the state.
    pub fn power_savings(&self) -> f64 {
        self.power_savings
    }

    /// One-way transition latency (entry and exit are symmetric, as in the
    /// paper's Table 3).
    pub fn transition_latency(&self) -> Cycles {
        self.transition_latency
    }

    /// Entry plus exit latency.
    pub fn round_trip(&self) -> Cycles {
        self.transition_latency * 2
    }

    /// Exit latency under an injected oversleep stall (`tb-faults`): the
    /// rated one-way transition latency plus `extra`. With `extra` zero
    /// this is exactly [`SleepState::transition_latency`], so fault-free
    /// paths can route through it unchanged.
    pub fn stalled_exit(&self, extra: Cycles) -> Cycles {
        self.transition_latency + extra
    }

    /// Whether the cache still services coherence requests while the CPU is
    /// in this state. If `false`, dirty shared data must be flushed before
    /// entering (§3.1) and the on-chip cache controller answers
    /// invalidations on the CPU's behalf.
    pub fn snoops(&self) -> bool {
        self.snoops
    }

    /// Whether the supply voltage is lowered (reduces leakage; Sleep3).
    pub fn voltage_reduction(&self) -> bool {
        self.voltage_reduction
    }

    /// Residency power in watts given the machine's TDPmax.
    pub fn power_watts(&self, tdp_max: f64) -> f64 {
        tdp_max * (1.0 - self.power_savings)
    }
}

impl fmt::Display for SleepState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: savings {:.1}%, transition {}, snoop {}, Vdd-reduction {}",
            self.name,
            self.power_savings * 100.0,
            self.transition_latency,
            if self.snoops { "yes" } else { "no" },
            if self.voltage_reduction { "yes" } else { "no" }
        )
    }
}

/// An ordered table of sleep states, shallowest first, as scanned by the
/// paper's `sleep()` library call (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SleepTable {
    states: Vec<SleepState>,
}

impl SleepTable {
    /// The paper's Table 3.
    pub fn paper() -> Self {
        SleepTable::from_states(vec![
            SleepState::new("Sleep1 (Halt)", 0.702, Cycles::from_micros(10), true, false),
            SleepState::new("Sleep2", 0.792, Cycles::from_micros(15), false, false),
            SleepState::new("Sleep3", 0.978, Cycles::from_micros(35), false, true),
        ])
    }

    /// Only the Halt state — the Thrifty-Halt configuration of §5.1.
    pub fn halt_only() -> Self {
        SleepTable::from_states(vec![SleepState::new(
            "Sleep1 (Halt)",
            0.702,
            Cycles::from_micros(10),
            true,
            false,
        )])
    }

    /// Builds a table from explicit states.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or states are not ordered by strictly
    /// increasing savings and non-decreasing transition latency (deeper
    /// states must save more and may take longer).
    pub fn from_states(states: Vec<SleepState>) -> Self {
        assert!(!states.is_empty(), "sleep table cannot be empty");
        for w in states.windows(2) {
            assert!(
                w[1].power_savings > w[0].power_savings,
                "sleep states must have strictly increasing savings"
            );
            assert!(
                w[1].transition_latency >= w[0].transition_latency,
                "deeper sleep states cannot transition faster"
            );
        }
        SleepTable { states }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `false`; tables are never empty, but the method exists for symmetry
    /// with `len` (C-ITER conventions).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states, shallowest first.
    pub fn iter(&self) -> std::slice::Iter<'_, SleepState> {
        self.states.iter()
    }

    /// The state for an id handed out by this table.
    ///
    /// # Panics
    ///
    /// Panics if the id came from a larger table.
    pub fn state(&self, id: SleepStateId) -> &SleepState {
        &self.states[id.0]
    }

    /// Id of the shallowest state.
    pub fn shallowest(&self) -> SleepStateId {
        SleepStateId(0)
    }

    /// Id of the deepest state.
    pub fn deepest(&self) -> SleepStateId {
        SleepStateId(self.states.len() - 1)
    }

    /// The paper's `sleep()` selection: the deepest state whose round-trip
    /// transition, scaled by the profitability margin `min_stall_multiple`,
    /// fits within the predicted stall time. Returns `None` when not even
    /// the shallowest state fits — the caller then spins conventionally.
    ///
    /// # Panics
    ///
    /// Panics if `min_stall_multiple < 1.0`.
    pub fn best_fit(
        &self,
        predicted_stall: Cycles,
        min_stall_multiple: f64,
    ) -> Option<SleepStateId> {
        assert!(
            min_stall_multiple >= 1.0,
            "min stall multiple must be >= 1.0, got {min_stall_multiple}"
        );
        self.states
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| s.round_trip().scale(min_stall_multiple) <= predicted_stall)
            .map(|(i, _)| SleepStateId(i))
    }
}

impl<'a> IntoIterator for &'a SleepTable {
    type Item = &'a SleepState;
    type IntoIter = std::slice::Iter<'a, SleepState>;
    fn into_iter(self) -> Self::IntoIter {
        self.states.iter()
    }
}

impl fmt::Display for SleepTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.states.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "S{}: {s}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_matches_table3() {
        let t = SleepTable::paper();
        assert_eq!(t.len(), 3);
        let s1 = t.state(t.shallowest());
        let s3 = t.state(t.deepest());
        assert_eq!(s1.power_savings(), 0.702);
        assert_eq!(s1.transition_latency(), Cycles::from_micros(10));
        assert!(s1.snoops());
        assert!(!s1.voltage_reduction());
        assert_eq!(s3.power_savings(), 0.978);
        assert_eq!(s3.transition_latency(), Cycles::from_micros(35));
        assert!(!s3.snoops());
        assert!(s3.voltage_reduction());
        let s2 = &t.iter().nth(1).unwrap();
        assert_eq!(s2.power_savings(), 0.792);
        assert!(!s2.snoops());
        assert!(!s2.voltage_reduction());
    }

    #[test]
    fn residency_power_from_tdp_ratio() {
        let t = SleepTable::paper();
        let halt = t.state(t.shallowest());
        assert!((halt.power_watts(60.0) - 60.0 * 0.298).abs() < 1e-9);
    }

    #[test]
    fn best_fit_picks_deepest_that_fits() {
        let t = SleepTable::paper();
        // Round trips: 20us, 30us, 70us. With multiple=2: need 40/60/140us.
        assert_eq!(t.best_fit(Cycles::from_micros(30), 2.0), None);
        assert_eq!(
            t.best_fit(Cycles::from_micros(50), 2.0),
            Some(t.shallowest())
        );
        assert_eq!(
            t.best_fit(Cycles::from_micros(100), 2.0).map(|i| i.index()),
            Some(1)
        );
        assert_eq!(t.best_fit(Cycles::from_micros(200), 2.0), Some(t.deepest()));
    }

    #[test]
    fn best_fit_margin_one_is_break_even() {
        let t = SleepTable::paper();
        assert_eq!(
            t.best_fit(Cycles::from_micros(20), 1.0),
            Some(t.shallowest())
        );
        assert_eq!(t.best_fit(Cycles::from_micros(19), 1.0), None);
    }

    #[test]
    fn halt_only_has_one_snoopable_state() {
        let t = SleepTable::halt_only();
        assert_eq!(t.len(), 1);
        assert!(t.state(t.deepest()).snoops());
        assert_eq!(t.shallowest(), t.deepest());
    }

    #[test]
    #[should_panic(expected = "strictly increasing savings")]
    fn unordered_savings_rejected() {
        let _ = SleepTable::from_states(vec![
            SleepState::new("a", 0.8, Cycles::from_micros(10), true, false),
            SleepState::new("b", 0.7, Cycles::from_micros(20), true, false),
        ]);
    }

    #[test]
    #[should_panic(expected = "cannot transition faster")]
    fn unordered_latency_rejected() {
        let _ = SleepTable::from_states(vec![
            SleepState::new("a", 0.7, Cycles::from_micros(20), true, false),
            SleepState::new("b", 0.8, Cycles::from_micros(10), true, false),
        ]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_table_rejected() {
        let _ = SleepTable::from_states(vec![]);
    }

    #[test]
    #[should_panic(expected = "power savings must be")]
    fn zero_savings_rejected() {
        let _ = SleepState::new("x", 0.0, Cycles::from_micros(1), true, false);
    }

    #[test]
    fn iteration_orders_shallow_to_deep() {
        let t = SleepTable::paper();
        let savings: Vec<f64> = (&t).into_iter().map(|s| s.power_savings()).collect();
        assert_eq!(savings, vec![0.702, 0.792, 0.978]);
    }

    #[test]
    fn display_lists_all_states() {
        let s = SleepTable::paper().to_string();
        assert!(s.contains("Halt"));
        assert!(s.contains("Sleep3"));
        assert!(s.contains("97.8%"));
    }

    #[test]
    fn round_trip_is_double_latency() {
        let t = SleepTable::paper();
        assert_eq!(t.state(t.deepest()).round_trip(), Cycles::from_micros(70));
    }

    #[test]
    fn stalled_exit_adds_to_rated_latency() {
        let t = SleepTable::paper();
        let s = t.state(t.shallowest());
        assert_eq!(s.stalled_exit(Cycles::ZERO), s.transition_latency());
        assert_eq!(
            s.stalled_exit(Cycles::from_micros(5)),
            Cycles::from_micros(15)
        );
    }
}
