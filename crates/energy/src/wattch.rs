//! Wattch-style architectural power model (§4.3 of the paper).
//!
//! The paper integrates Wattch into its simulator for *active* power and
//! stresses that Wattch is only reliable in relative terms. It therefore
//! (1) microbenchmarks a worst-case instruction mix to estimate TDPmax,
//! (2) takes the published *ratios* between datasheet TDPmax and sleep-state
//! powers, and (3) applies those ratios to the simulated TDPmax. We follow
//! the same recipe: [`WattchModel`] carries per-component peak powers and
//! activity factors, [`WattchModel::microbench_tdp_max`] evaluates the
//! worst-case mix, and [`PowerModel`] packages the derived operating powers.
//!
//! The paper also reports that, averaged over its applications, the barrier
//! spin-loop draws about 85 % of regular compute power; the default activity
//! factors below reproduce that ratio from first principles (a spin loop
//! saturates fetch and the L1 but leaves the FP/integer units and L2 nearly
//! idle).

use std::fmt;

/// One architectural component with its peak power share and activity
/// factors under the two active workload classes.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    name: &'static str,
    /// Fraction of chip peak power this component accounts for.
    peak_share: f64,
    /// Activity factor (0..=1) during ordinary computation.
    compute_activity: f64,
    /// Activity factor (0..=1) while executing a barrier spin-loop.
    spin_activity: f64,
}

impl Component {
    /// Creates a component description.
    ///
    /// # Panics
    ///
    /// Panics if any factor lies outside `[0, 1]`.
    pub fn new(
        name: &'static str,
        peak_share: f64,
        compute_activity: f64,
        spin_activity: f64,
    ) -> Self {
        for (label, v) in [
            ("peak_share", peak_share),
            ("compute_activity", compute_activity),
            ("spin_activity", spin_activity),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "component {name}: {label} must be in [0,1], got {v}"
            );
        }
        Component {
            name,
            peak_share,
            compute_activity,
            spin_activity,
        }
    }

    /// Component name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Fraction of chip peak power.
    pub fn peak_share(&self) -> f64 {
        self.peak_share
    }
}

/// A six-issue out-of-order processor modeled as a set of components with
/// activity-dependent power, in the spirit of Wattch.
#[derive(Debug, Clone, PartialEq)]
pub struct WattchModel {
    components: Vec<Component>,
    /// Chip peak power at worst-case activity, in watts.
    peak_watts: f64,
}

impl WattchModel {
    /// The default model of the paper's 1 GHz six-issue dynamic CPU
    /// (Table 1), with a 60 W worst-case envelope — representative of
    /// high-end server processors of the period (e.g. the Intel Xeon the
    /// paper cites).
    ///
    /// Component peak shares follow the familiar Wattch breakdown for a
    /// dynamically scheduled core; activity factors are set so that the
    /// spin/compute power ratio lands at the paper's measured ~0.85.
    pub fn default_six_issue() -> Self {
        WattchModel::from_components(
            vec![
                Component::new("fetch+bpred", 0.18, 0.80, 0.90),
                Component::new("rename", 0.04, 0.70, 0.60),
                Component::new("issue-window", 0.16, 0.75, 0.50),
                Component::new("regfile", 0.08, 0.70, 0.50),
                Component::new("fu(int+fp)", 0.22, 0.65, 0.30),
                Component::new("l1-caches", 0.16, 0.70, 0.90),
                Component::new("l2-cache", 0.08, 0.40, 0.05),
                Component::new("clock-tree", 0.08, 1.00, 1.00),
            ],
            60.0,
        )
    }

    /// Builds a model from explicit components.
    ///
    /// # Panics
    ///
    /// Panics if the peak shares do not sum to 1 (±1 %), if there are no
    /// components, or if `peak_watts` is not positive.
    pub fn from_components(components: Vec<Component>, peak_watts: f64) -> Self {
        assert!(!components.is_empty(), "a power model needs components");
        assert!(peak_watts > 0.0, "peak power must be positive");
        let share_sum: f64 = components.iter().map(|c| c.peak_share).sum();
        assert!(
            (share_sum - 1.0).abs() < 0.01,
            "component peak shares must sum to 1.0, got {share_sum}"
        );
        WattchModel {
            components,
            peak_watts,
        }
    }

    /// The components of the model.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// "Runs" the worst-case instruction-mix microbenchmark: every component
    /// at activity 1.0. This is the model's TDPmax, the reference for the
    /// sleep-state ratios of Table 3.
    pub fn microbench_tdp_max(&self) -> f64 {
        self.peak_watts
            * self
                .components
                .iter()
                .map(|c| c.peak_share * 1.0)
                .sum::<f64>()
    }

    /// Average power while executing application code, in watts.
    pub fn compute_power(&self) -> f64 {
        self.peak_watts
            * self
                .components
                .iter()
                .map(|c| c.peak_share * c.compute_activity)
                .sum::<f64>()
    }

    /// Average power while executing the barrier spin-loop, in watts.
    pub fn spin_power(&self) -> f64 {
        self.peak_watts
            * self
                .components
                .iter()
                .map(|c| c.peak_share * c.spin_activity)
                .sum::<f64>()
    }
}

/// The derived operating powers used throughout the simulation, in watts,
/// plus the policy knob for how much predicted stall must lie ahead before a
/// sleep state is considered profitable.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    tdp_max: f64,
    compute: f64,
    spin: f64,
    min_stall_multiple: f64,
}

impl PowerModel {
    /// The paper's configuration, derived from
    /// [`WattchModel::default_six_issue`].
    pub fn paper() -> Self {
        PowerModel::from_wattch(&WattchModel::default_six_issue())
    }

    /// Derives operating powers from a Wattch model with the default sleep
    /// profitability threshold (predicted stall must exceed twice the
    /// round-trip transition latency).
    pub fn from_wattch(model: &WattchModel) -> Self {
        PowerModel {
            tdp_max: model.microbench_tdp_max(),
            compute: model.compute_power(),
            spin: model.spin_power(),
            min_stall_multiple: 2.0,
        }
    }

    /// Builds a model from explicit powers (for tests and ablations).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < spin <= compute <= tdp_max`.
    pub fn from_raw(tdp_max: f64, compute: f64, spin: f64) -> Self {
        assert!(
            0.0 < spin && spin <= compute && compute <= tdp_max,
            "powers must satisfy 0 < spin <= compute <= tdp_max \
             (got spin={spin}, compute={compute}, tdp_max={tdp_max})"
        );
        PowerModel {
            tdp_max,
            compute,
            spin,
            min_stall_multiple: 2.0,
        }
    }

    /// Maximum thermal design power, watts.
    pub fn tdp_max(&self) -> f64 {
        self.tdp_max
    }

    /// Average power while computing, watts.
    pub fn compute_watts(&self) -> f64 {
        self.compute
    }

    /// Average power while spinning at a barrier, watts.
    pub fn spin_watts(&self) -> f64 {
        self.spin
    }

    /// Ratio of spin power to compute power (paper: ≈ 0.85).
    pub fn spin_ratio(&self) -> f64 {
        self.spin / self.compute
    }

    /// How many round-trip transition latencies of predicted stall must lie
    /// ahead before a sleep state is considered (the `sleep()` call's
    /// profitability margin).
    pub fn min_stall_multiple(&self) -> f64 {
        self.min_stall_multiple
    }

    /// Returns a copy with a different profitability margin (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `multiple < 1.0` — transitions must at least fit.
    pub fn with_min_stall_multiple(mut self, multiple: f64) -> Self {
        assert!(multiple >= 1.0, "min stall multiple must be >= 1.0");
        self.min_stall_multiple = multiple;
        self
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TDPmax={:.1}W compute={:.1}W spin={:.1}W (spin/compute={:.3})",
            self.tdp_max,
            self.compute,
            self.spin,
            self.spin_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_shares_sum_to_one() {
        let m = WattchModel::default_six_issue();
        let sum: f64 = m.components().iter().map(|c| c.peak_share()).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn microbench_tdp_equals_peak() {
        let m = WattchModel::default_six_issue();
        assert!((m.microbench_tdp_max() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn spin_to_compute_ratio_matches_paper() {
        // §4.3: "the power consumption of executing the spinloop is about
        // 85% of that of regular computation".
        let p = PowerModel::paper();
        assert!(
            (p.spin_ratio() - 0.85).abs() < 0.02,
            "spin/compute ratio {} should be ~0.85",
            p.spin_ratio()
        );
    }

    #[test]
    fn power_ordering_holds() {
        let p = PowerModel::paper();
        assert!(p.spin_watts() < p.compute_watts());
        assert!(p.compute_watts() < p.tdp_max());
    }

    #[test]
    fn from_raw_validates() {
        let p = PowerModel::from_raw(100.0, 75.0, 60.0);
        assert_eq!(p.tdp_max(), 100.0);
        assert!((p.spin_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "powers must satisfy")]
    fn from_raw_rejects_inverted() {
        let _ = PowerModel::from_raw(50.0, 75.0, 60.0);
    }

    #[test]
    #[should_panic(expected = "must sum to 1.0")]
    fn bad_shares_rejected() {
        let _ = WattchModel::from_components(vec![Component::new("x", 0.5, 1.0, 1.0)], 10.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_activity_rejected() {
        let _ = Component::new("x", 0.5, 1.5, 1.0);
    }

    #[test]
    fn stall_multiple_knob() {
        let p = PowerModel::paper().with_min_stall_multiple(1.0);
        assert_eq!(p.min_stall_multiple(), 1.0);
    }

    #[test]
    #[should_panic(expected = "min stall multiple")]
    fn stall_multiple_below_one_rejected() {
        let _ = PowerModel::paper().with_min_stall_multiple(0.5);
    }

    #[test]
    fn display_is_informative() {
        let s = PowerModel::paper().to_string();
        assert!(s.contains("TDPmax"));
        assert!(s.contains("spin"));
    }
}
