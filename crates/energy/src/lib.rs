#![warn(missing_docs)]
//! Energy substrate for the thrifty-barrier reproduction.
//!
//! The paper's energy methodology (§4.3) has three parts, each mirrored by a
//! module here:
//!
//! * [`wattch`] — a Wattch-style architectural power model. Per-component
//!   peak powers and activity factors give the power drawn while *computing*
//!   and while *spinning* at a barrier (the paper measures spin power at
//!   ~85 % of compute power). A worst-case microbenchmark mix yields the
//!   maximum thermal design power (TDPmax).
//! * [`sleep`] — the low-power sleep-state table. [`SleepTable::paper`]
//!   reproduces Table 3: Sleep1 (Halt) saves 70.2 % of TDPmax with 10 µs
//!   transitions, Sleep2 79.2 %/15 µs, Sleep3 97.8 %/35 µs; the deeper two
//!   cannot snoop and Sleep3 lowers the supply voltage. Sleep powers are
//!   derived by applying the published ratios to our TDPmax, exactly as the
//!   paper does.
//! * [`account`] — per-CPU energy/time ledgers split into the four
//!   categories of Figures 5 and 6: Compute, Spin, Transition, Sleep.
//!
//! # Examples
//!
//! ```
//! use tb_energy::{PowerModel, SleepTable};
//! use tb_sim::Cycles;
//!
//! let power = PowerModel::paper();
//! let table = SleepTable::paper();
//! // A thread predicting a 1 ms stall picks the deepest state that fits:
//! let pick = table.best_fit(Cycles::from_millis(1), power.min_stall_multiple());
//! assert_eq!(table.state(pick.unwrap()).name(), "Sleep3");
//! ```

pub mod account;
pub mod sleep;
pub mod wattch;

pub use account::{CategoryBreakdown, CpuLedger, EnergyCategory, MachineLedger, TransitionRecord};
pub use sleep::{SleepState, SleepStateId, SleepTable};
pub use wattch::{PowerModel, WattchModel};
