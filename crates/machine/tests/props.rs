//! Property-based tests of the full machine simulation: conservation and
//! protocol invariants must hold for arbitrary (small) workloads.

use proptest::prelude::*;
use tb_core::{AlgorithmConfig, SystemConfig};
use tb_energy::EnergyCategory;
use tb_machine::run::{run_trace, run_trace_with};
use tb_machine::RunReport;
use tb_sim::Cycles;
use tb_workloads::{AppSpec, PhaseSpec, Variability};

fn arb_app() -> impl Strategy<Value = AppSpec> {
    (
        1usize..3,      // loop phases
        2u32..8,        // iterations
        500u64..8_000,  // base interval µs
        0.05f64..0.40,  // imbalance
        0u32..64,       // dirty lines
    )
        .prop_map(|(phases, iterations, base_us, target, dirty)| AppSpec {
            name: "MachineProp".into(),
            problem_size: "prop".into(),
            target_imbalance: target,
            setup_phases: vec![],
            loop_phases: (0..phases)
                .map(|i| {
                    PhaseSpec::new(
                        0x500 + i as u64,
                        Cycles::from_micros(base_us + 300 * i as u64),
                        dirty,
                        Variability::Stable { jitter: 0.02 },
                    )
                })
                .collect(),
            iterations,
            skew: 2.0,
        })
}

fn check_conservation(r: &RunReport) -> Result<(), TestCaseError> {
    // Every episode produced exactly one instance record, in order, with
    // strictly increasing release times.
    prop_assert_eq!(r.instances.len() as u64, r.counts.episodes);
    for (i, inst) in r.instances.iter().enumerate() {
        prop_assert_eq!(inst.episode, i);
        prop_assert_eq!(inst.bit, inst.observed_compute + inst.observed_bst);
    }
    for w in r.instances.windows(2) {
        prop_assert!(w[0].release_time < w[1].release_time);
    }
    // The BRTS induction telescopes: the published BITs sum to the final
    // release (up to the flag-flip latency of each episode).
    let bit_sum: Cycles = r.instances.iter().map(|i| i.bit).sum();
    let last_release = r.instances.last().unwrap().release_time;
    let slack = Cycles::from_micros(2 * r.instances.len() as u64);
    prop_assert!(bit_sum <= last_release);
    prop_assert!(last_release.saturating_sub(bit_sum) < slack);
    // No CPU accounts more than the wall clock.
    let wall = r.wall_time.as_u64() as f64;
    for cpu in r.ledger.iter() {
        prop_assert!(cpu.total_time() <= wall * 1.001);
    }
    // Every sleep ends in exactly one wake-up.
    prop_assert_eq!(
        r.counts.internal_wakeups + r.counts.external_wakeups,
        r.counts.total_sleeps()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation laws hold for every configuration on arbitrary
    /// workloads, and the configurations keep their defining properties.
    #[test]
    fn conservation_across_configs(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let base = run_trace(&trace, 8, SystemConfig::Baseline);
        check_conservation(&base)?;
        prop_assert_eq!(base.counts.total_sleeps(), 0);
        prop_assert_eq!(base.time()[EnergyCategory::Sleep], 0.0);

        let thrifty = run_trace(&trace, 8, SystemConfig::Thrifty);
        check_conservation(&thrifty)?;
        prop_assert_eq!(base.counts.episodes, thrifty.counts.episodes);

        let ideal = run_trace(&trace, 8, SystemConfig::Ideal);
        check_conservation(&ideal)?;
        // Ideal never mispredicts: it must not lose meaningful time.
        prop_assert!(
            ideal.slowdown_vs(&base) < 0.02,
            "Ideal slowdown {}",
            ideal.slowdown_vs(&base)
        );
        // Thrifty never uses more energy than baseline by more than a
        // small guard (mispredictions can cost a little).
        prop_assert!(
            thrifty.total_energy() <= base.total_energy() * 1.05,
            "thrifty burned {} vs baseline {}",
            thrifty.total_energy(),
            base.total_energy()
        );
        // And Ideal lower-bounds Thrifty (small tolerance for divergent
        // wake-up timing).
        prop_assert!(ideal.total_energy() <= thrifty.total_energy() * 1.02);
    }

    /// Determinism: identical inputs give bit-identical reports.
    #[test]
    fn runs_are_deterministic(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let a = run_trace(&trace, 8, SystemConfig::Thrifty);
        let b = run_trace(&trace, 8, SystemConfig::Thrifty);
        prop_assert_eq!(a.wall_time, b.wall_time);
        prop_assert!((a.total_energy() - b.total_energy()).abs() < 1e-12);
        prop_assert_eq!(a.counts.internal_wakeups, b.counts.internal_wakeups);
        prop_assert_eq!(a.counts.external_wakeups, b.counts.external_wakeups);
        prop_assert_eq!(a.instances, b.instances);
    }

    /// The measured baseline imbalance tracks the trace's analytic value
    /// for any workload (barrier overheads are second-order).
    #[test]
    fn simulated_imbalance_tracks_analytic(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let base = run_trace(&trace, 8, SystemConfig::Baseline);
        prop_assert!(
            (base.barrier_imbalance() - trace.analytic_imbalance()).abs() < 0.03,
            "simulated {} vs analytic {}",
            base.barrier_imbalance(),
            trace.analytic_imbalance()
        );
    }

    /// Disabling the sleep table's deep states can only reduce flush
    /// counts, and Halt-only never flushes.
    #[test]
    fn halt_only_never_flushes(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let halt = run_trace_with(
            &trace,
            8,
            "Thrifty-Halt",
            AlgorithmConfig::thrifty_halt(),
            None,
        );
        prop_assert_eq!(halt.counts.flushes, 0);
        prop_assert_eq!(halt.counts.flushed_lines, 0);
        check_conservation(&halt)?;
    }
}
