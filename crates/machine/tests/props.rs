//! Property-based tests of the full machine simulation: conservation and
//! protocol invariants must hold for arbitrary (small) workloads.

use proptest::prelude::*;
use tb_core::{AlgorithmConfig, SystemConfig};
use tb_energy::EnergyCategory;
use tb_machine::run::{run_trace, run_trace_with};
use tb_machine::{BarrierEventCounts, RunReport};
use tb_runtime::{RuntimeStats, ThreadStats};
use tb_sim::Cycles;
use tb_workloads::{AppSpec, PhaseSpec, Variability};

fn arb_app() -> impl Strategy<Value = AppSpec> {
    (
        1usize..3,     // loop phases
        2u32..8,       // iterations
        500u64..8_000, // base interval µs
        0.05f64..0.40, // imbalance
        0u32..64,      // dirty lines
    )
        .prop_map(|(phases, iterations, base_us, target, dirty)| AppSpec {
            name: "MachineProp".into(),
            problem_size: "prop".into(),
            target_imbalance: target,
            setup_phases: vec![],
            loop_phases: (0..phases)
                .map(|i| {
                    PhaseSpec::new(
                        0x500 + i as u64,
                        Cycles::from_micros(base_us + 300 * i as u64),
                        dirty,
                        Variability::Stable { jitter: 0.02 },
                    )
                })
                .collect(),
            iterations,
            skew: 2.0,
        })
}

fn check_conservation(r: &RunReport) -> Result<(), TestCaseError> {
    // Every episode produced exactly one instance record, in order, with
    // strictly increasing release times.
    prop_assert_eq!(r.instances.len() as u64, r.counts.episodes);
    for (i, inst) in r.instances.iter().enumerate() {
        prop_assert_eq!(inst.episode, i);
        prop_assert_eq!(inst.bit, inst.observed_compute + inst.observed_bst);
    }
    for w in r.instances.windows(2) {
        prop_assert!(w[0].release_time < w[1].release_time);
    }
    // The BRTS induction telescopes: the published BITs sum to the final
    // release (up to the flag-flip latency of each episode).
    let bit_sum: Cycles = r.instances.iter().map(|i| i.bit).sum();
    let last_release = r.instances.last().unwrap().release_time;
    let slack = Cycles::from_micros(2 * r.instances.len() as u64);
    prop_assert!(bit_sum <= last_release);
    prop_assert!(last_release.saturating_sub(bit_sum) < slack);
    // No CPU accounts more than the wall clock.
    let wall = r.wall_time.as_u64() as f64;
    for cpu in r.ledger.iter() {
        prop_assert!(cpu.total_time() <= wall * 1.001);
    }
    // Every sleep ends in exactly one wake-up.
    prop_assert_eq!(
        r.counts.internal_wakeups + r.counts.external_wakeups,
        r.counts.total_sleeps()
    );
    Ok(())
}

fn arb_counts() -> impl Strategy<Value = BarrierEventCounts> {
    (
        proptest::collection::vec(0u64..1_000, 12),
        proptest::collection::vec(0u64..1_000, 0..4),
    )
        .prop_map(|(f, sleeps_by_state)| BarrierEventCounts {
            episodes: f[0],
            early_arrivals: f[1],
            spins: f[2],
            sleeps_by_state,
            flushes: f[3],
            flushed_lines: f[4],
            internal_wakeups: f[5],
            external_wakeups: f[6],
            early_wakeups: f[7],
            late_wakeups: f[8],
            false_wakeups: f[9],
            cutoff_disables: f[10],
            updates_skipped: f[11],
        })
}

fn arb_thread_stats() -> impl Strategy<Value = ThreadStats> {
    proptest::collection::vec(0u64..1_000_000, 10).prop_map(|v| ThreadStats {
        spin: Cycles::new(v[0]),
        yielded: Cycles::new(v[1]),
        parked: Cycles::new(v[2]),
        escalated: Cycles::new(v[3]),
        sleeps: v[4],
        spins: v[5],
        early_wakeups: v[6],
        spurious_wakeups: v[7],
        escalations: v[8],
        cutoff_disables: v[9],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merging N partial event-count records must equal counting once over
    /// the concatenated run: every scalar is the sum of the partials'
    /// scalars and the per-state sleep histogram is the element-wise sum.
    #[test]
    fn counts_merge_equals_counting_once(
        partials in proptest::collection::vec(arb_counts(), 1..6)
    ) {
        let mut merged = BarrierEventCounts::default();
        for p in &partials {
            merged.merge(p);
        }
        let sum = |f: fn(&BarrierEventCounts) -> u64| partials.iter().map(f).sum::<u64>();
        prop_assert_eq!(merged.episodes, sum(|c| c.episodes));
        prop_assert_eq!(merged.early_arrivals, sum(|c| c.early_arrivals));
        prop_assert_eq!(merged.spins, sum(|c| c.spins));
        prop_assert_eq!(merged.flushes, sum(|c| c.flushes));
        prop_assert_eq!(merged.flushed_lines, sum(|c| c.flushed_lines));
        prop_assert_eq!(merged.internal_wakeups, sum(|c| c.internal_wakeups));
        prop_assert_eq!(merged.external_wakeups, sum(|c| c.external_wakeups));
        prop_assert_eq!(merged.early_wakeups, sum(|c| c.early_wakeups));
        prop_assert_eq!(merged.late_wakeups, sum(|c| c.late_wakeups));
        prop_assert_eq!(merged.false_wakeups, sum(|c| c.false_wakeups));
        prop_assert_eq!(merged.cutoff_disables, sum(|c| c.cutoff_disables));
        prop_assert_eq!(merged.updates_skipped, sum(|c| c.updates_skipped));
        prop_assert_eq!(merged.total_sleeps(), sum(|c| c.total_sleeps()));
        let widest = partials.iter().map(|c| c.sleeps_by_state.len()).max().unwrap_or(0);
        prop_assert_eq!(merged.sleeps_by_state.len(), widest);
        for (i, &n) in merged.sleeps_by_state.iter().enumerate() {
            let expect: u64 = partials
                .iter()
                .map(|c| c.sleeps_by_state.get(i).copied().unwrap_or(0))
                .sum();
            prop_assert_eq!(n, expect, "state {} histogram bin", i);
        }
    }

    /// Merge order never matters, and the empty record is the identity.
    #[test]
    fn counts_merge_commutes(a in arb_counts(), b in arb_counts()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut with_identity = a.clone();
        with_identity.merge(&BarrierEventCounts::default());
        prop_assert_eq!(&with_identity, &a);
    }

    /// The runtime's per-thread stats obey the same law: folding N partials
    /// through `merge` equals summing each field once, which is exactly
    /// what `RuntimeStats::combined` relies on.
    #[test]
    fn thread_stats_merge_equals_counting_once(
        partials in proptest::collection::vec(arb_thread_stats(), 1..8)
    ) {
        let combined = RuntimeStats {
            threads: partials.clone(),
            barriers_completed: 0,
            delayed_unparks: 0,
        }
        .combined();
        let sum = |f: fn(&ThreadStats) -> u64| partials.iter().map(f).sum::<u64>();
        prop_assert_eq!(combined.spin.as_u64(), sum(|t| t.spin.as_u64()));
        prop_assert_eq!(combined.yielded.as_u64(), sum(|t| t.yielded.as_u64()));
        prop_assert_eq!(combined.parked.as_u64(), sum(|t| t.parked.as_u64()));
        prop_assert_eq!(combined.escalated.as_u64(), sum(|t| t.escalated.as_u64()));
        prop_assert_eq!(combined.sleeps, sum(|t| t.sleeps));
        prop_assert_eq!(combined.spins, sum(|t| t.spins));
        prop_assert_eq!(combined.early_wakeups, sum(|t| t.early_wakeups));
        prop_assert_eq!(combined.spurious_wakeups, sum(|t| t.spurious_wakeups));
        prop_assert_eq!(combined.escalations, sum(|t| t.escalations));
        prop_assert_eq!(combined.cutoff_disables, sum(|t| t.cutoff_disables));
        let stall_sum: u64 = partials.iter().map(|t| t.total_stall().as_u64()).sum();
        prop_assert_eq!(combined.total_stall().as_u64(), stall_sum);
        // Commutativity: reversed fold gives the same totals.
        let mut reversed = ThreadStats::default();
        for p in partials.iter().rev() {
            reversed.merge(p);
        }
        prop_assert_eq!(&reversed, &combined);
    }

    /// Conservation laws hold for every configuration on arbitrary
    /// workloads, and the configurations keep their defining properties.
    #[test]
    fn conservation_across_configs(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let base = run_trace(&trace, 8, SystemConfig::Baseline);
        check_conservation(&base)?;
        prop_assert_eq!(base.counts.total_sleeps(), 0);
        prop_assert_eq!(base.time()[EnergyCategory::Sleep], 0.0);

        let thrifty = run_trace(&trace, 8, SystemConfig::Thrifty);
        check_conservation(&thrifty)?;
        prop_assert_eq!(base.counts.episodes, thrifty.counts.episodes);

        let ideal = run_trace(&trace, 8, SystemConfig::Ideal);
        check_conservation(&ideal)?;
        // Ideal never mispredicts: it must not lose meaningful time.
        prop_assert!(
            ideal.slowdown_vs(&base) < 0.02,
            "Ideal slowdown {}",
            ideal.slowdown_vs(&base)
        );
        // Thrifty never uses more energy than baseline by more than a
        // small guard (mispredictions can cost a little).
        prop_assert!(
            thrifty.total_energy() <= base.total_energy() * 1.05,
            "thrifty burned {} vs baseline {}",
            thrifty.total_energy(),
            base.total_energy()
        );
        // And Ideal lower-bounds Thrifty (small tolerance for divergent
        // wake-up timing).
        prop_assert!(ideal.total_energy() <= thrifty.total_energy() * 1.02);
    }

    /// Determinism: identical inputs give bit-identical reports.
    #[test]
    fn runs_are_deterministic(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let a = run_trace(&trace, 8, SystemConfig::Thrifty);
        let b = run_trace(&trace, 8, SystemConfig::Thrifty);
        prop_assert_eq!(a.wall_time, b.wall_time);
        prop_assert!((a.total_energy() - b.total_energy()).abs() < 1e-12);
        prop_assert_eq!(a.counts.internal_wakeups, b.counts.internal_wakeups);
        prop_assert_eq!(a.counts.external_wakeups, b.counts.external_wakeups);
        prop_assert_eq!(a.instances, b.instances);
    }

    /// The measured baseline imbalance tracks the trace's analytic value
    /// for any workload (barrier overheads are second-order).
    #[test]
    fn simulated_imbalance_tracks_analytic(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let base = run_trace(&trace, 8, SystemConfig::Baseline);
        prop_assert!(
            (base.barrier_imbalance() - trace.analytic_imbalance()).abs() < 0.03,
            "simulated {} vs analytic {}",
            base.barrier_imbalance(),
            trace.analytic_imbalance()
        );
    }

    /// Disabling the sleep table's deep states can only reduce flush
    /// counts, and Halt-only never flushes.
    #[test]
    fn halt_only_never_flushes(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let halt = run_trace_with(
            &trace,
            8,
            "Thrifty-Halt",
            AlgorithmConfig::thrifty_halt(),
            None,
        );
        prop_assert_eq!(halt.counts.flushes, 0);
        prop_assert_eq!(halt.counts.flushed_lines, 0);
        check_conservation(&halt)?;
    }
}
