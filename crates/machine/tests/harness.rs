//! The parallel harness must be a pure speed-up: identical results to the
//! serial path, with the shared caches making Baseline exactly-once.

use tb_core::SystemConfig;
use tb_machine::harness::{Cell, Harness};
use tb_machine::run::run_config_matrix;
use tb_workloads::AppSpec;

const NODES: u16 = 8;
const SEED: u64 = 3;

fn apps(n: usize) -> Vec<AppSpec> {
    AppSpec::splash2().into_iter().take(n).collect()
}

fn all_cells(apps: &[AppSpec], seeds: &[u64]) -> Vec<Cell> {
    apps.iter()
        .flat_map(|app| {
            SystemConfig::ALL.into_iter().flat_map(move |config| {
                seeds
                    .iter()
                    .map(move |&seed| Cell::new(app.clone(), NODES, seed, config))
            })
        })
        .collect()
}

#[test]
fn parallel_reports_match_serial_byte_for_byte() {
    let apps = apps(3);
    let cells = all_cells(&apps, &[SEED]);
    let serial = Harness::new(1).run_cells(&cells).unwrap();
    let parallel = Harness::new(8).run_cells(&cells).unwrap();
    assert_eq!(serial.len(), parallel.len());
    // RunReport has float fields, so compare the canonical JSON encoding:
    // deterministic simulation must make parallel output *identical*, not
    // merely close.
    assert_eq!(
        serde::json::to_string(&serial),
        serde::json::to_string(&parallel)
    );
}

#[test]
fn harness_matches_run_config_matrix() {
    let app = AppSpec::by_name("Radiosity").unwrap();
    let via_matrix = run_config_matrix(&app, NODES, SEED);
    let harness = Harness::new(4);
    let cells: Vec<Cell> = SystemConfig::ALL
        .into_iter()
        .map(|c| Cell::new(app.clone(), NODES, SEED, c))
        .collect();
    let via_harness = harness.run_cells(&cells).unwrap();
    assert_eq!(
        serde::json::to_string(&via_matrix),
        serde::json::to_string(&via_harness)
    );
}

#[test]
fn baseline_runs_exactly_once_per_triple_under_contention() {
    let apps = apps(2);
    let seeds = [SEED, SEED + 1];
    let harness = Harness::new(8);
    let reports = harness.run_cells(&all_cells(&apps, &seeds)).unwrap();
    assert_eq!(reports.len(), 2 * 5 * 2);
    // 2 apps × 2 seeds = 4 triples; each generates one trace and runs
    // Baseline once even though 8 workers race for them and three configs
    // (Baseline, Oracle-Halt, Ideal) consume each Baseline.
    assert_eq!(harness.trace_generations(), 4);
    assert_eq!(harness.baseline_runs(), 4);
    // Every cell beyond the first consumer of each triple was served from
    // a cache.
    let hits_after_first = harness.cache_hits();
    assert!(hits_after_first >= 20 - 4, "got {hits_after_first} hits");
    // Re-running the same cells is all hits, no new simulations.
    let again = harness.run_cells(&all_cells(&apps, &seeds)).unwrap();
    assert_eq!(harness.baseline_runs(), 4);
    assert_eq!(harness.trace_generations(), 4);
    assert!(harness.cache_hits() > hits_after_first);
    assert_eq!(
        serde::json::to_string(&reports),
        serde::json::to_string(&again)
    );
}

#[test]
fn results_come_back_in_cell_order() {
    let app = AppSpec::by_name("FFT").unwrap();
    // Deliberately scrambled, duplicated config order.
    let order = [
        SystemConfig::Ideal,
        SystemConfig::Baseline,
        SystemConfig::Thrifty,
        SystemConfig::Baseline,
        SystemConfig::OracleHalt,
    ];
    let cells: Vec<Cell> = order
        .into_iter()
        .map(|c| Cell::new(app.clone(), NODES, SEED, c))
        .collect();
    let harness = Harness::new(4);
    let names: Vec<String> = harness
        .run_cells(&cells)
        .unwrap()
        .into_iter()
        .map(|r| r.config)
        .collect();
    assert_eq!(
        names,
        vec!["Ideal", "Baseline", "Thrifty", "Baseline", "Oracle-Halt"]
    );
    assert_eq!(harness.baseline_runs(), 1, "duplicate cells also share");
}

#[test]
fn matrix_reshape_and_aggregates() {
    let apps = apps(2);
    let seeds = [SEED, SEED + 1, SEED + 2];
    let harness = Harness::new(8);
    let matrix = harness
        .run_matrix(&apps, &SystemConfig::ALL, NODES, &seeds)
        .unwrap();
    assert_eq!(matrix.len(), 2);
    for (m, app) in matrix.iter().zip(&apps) {
        assert_eq!(m.app.name, app.name);
        assert_eq!(m.reports.len(), 5);
        for (row, config) in m.reports.iter().zip(SystemConfig::ALL) {
            assert_eq!(row.len(), 3);
            for (report, &seed) in row.iter().zip(&seeds) {
                assert_eq!(report.config, config.name());
                // Per-seed traces differ, so episode counts may not; but
                // the report must come from the right app.
                assert_eq!(report.app, app.name);
                let _ = seed;
            }
        }
        let aggs = m.aggregates();
        assert_eq!(aggs.len(), 5);
        assert!(aggs.iter().all(|a| a.runs() == 3));
        let base = &aggs[0];
        assert!((base.energy_vs_baseline.mean() - 1.0).abs() < 1e-12);
        assert!(base.slowdown_vs_baseline.std_dev() < 1e-12);
        // Thrifty (index 3) saves energy on every seed.
        assert!(aggs[3].energy_vs_baseline.max().unwrap() < 1.0);
    }
    // 2 apps × 3 seeds triples.
    assert_eq!(harness.baseline_runs(), 6);
}

#[test]
fn config_reports_selects_by_config() {
    let apps = apps(1);
    let harness = Harness::serial();
    let matrix = harness
        .run_matrix(&apps, &SystemConfig::ALL, NODES, &[SEED])
        .unwrap();
    let thrifty = matrix[0].config_reports(SystemConfig::Thrifty);
    assert_eq!(thrifty.len(), 1);
    assert_eq!(thrifty[0].config, "Thrifty");
}
