//! Per-run results: everything the evaluation section consumes.

use crate::harness::CellError;
use serde::{Deserialize, Serialize};
use std::fmt;
use tb_energy::{CategoryBreakdown, EnergyCategory, MachineLedger};
use tb_faults::FaultSummary;
use tb_sim::{Cycles, OnlineStats};
use tb_trace::TraceSummary;

/// Counts of barrier-related events during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarrierEventCounts {
    /// Barrier episodes executed (dynamic instances).
    pub episodes: u64,
    /// Early (non-releasing) arrivals.
    pub early_arrivals: u64,
    /// Early arrivals that spun (no prediction, too-short stall, disabled,
    /// or conventional barrier).
    pub spins: u64,
    /// Early arrivals that entered each sleep state (indexed by state).
    pub sleeps_by_state: Vec<u64>,
    /// Cache flushes performed before non-snoopable sleeps.
    pub flushes: u64,
    /// Dirty shared lines written back by those flushes.
    pub flushed_lines: u64,
    /// Sleep episodes ended by the internal timer.
    pub internal_wakeups: u64,
    /// Sleep episodes ended by the flag invalidation.
    pub external_wakeups: u64,
    /// Wake-ups that landed before the release (residual spin followed).
    pub early_wakeups: u64,
    /// Wake-ups that landed after the release (the CPU came back up late;
    /// overprediction or external-only wake-up).
    pub late_wakeups: u64,
    /// Spurious (injected) wake-ups taken while sleeping (§3.3.1's false
    /// wake-up; the residual spin absorbs them).
    pub false_wakeups: u64,
    /// §3.3.3 disable bits set during the run.
    pub cutoff_disables: u64,
    /// Predictor updates skipped by the §3.4.2 underprediction filter.
    pub updates_skipped: u64,
}

impl BarrierEventCounts {
    /// Total sleep episodes across all states.
    pub fn total_sleeps(&self) -> u64 {
        self.sleeps_by_state.iter().sum()
    }

    /// Adds another run's (or partial tally's) counts into this one.
    ///
    /// Merging is field-wise addition, so merging N partial counts equals
    /// counting once over the concatenated event stream. Sleep-state
    /// vectors of different lengths merge into the longer one.
    pub fn merge(&mut self, other: &BarrierEventCounts) {
        self.episodes += other.episodes;
        self.early_arrivals += other.early_arrivals;
        self.spins += other.spins;
        if self.sleeps_by_state.len() < other.sleeps_by_state.len() {
            self.sleeps_by_state.resize(other.sleeps_by_state.len(), 0);
        }
        for (mine, theirs) in self.sleeps_by_state.iter_mut().zip(&other.sleeps_by_state) {
            *mine += theirs;
        }
        self.flushes += other.flushes;
        self.flushed_lines += other.flushed_lines;
        self.internal_wakeups += other.internal_wakeups;
        self.external_wakeups += other.external_wakeups;
        self.early_wakeups += other.early_wakeups;
        self.late_wakeups += other.late_wakeups;
        self.false_wakeups += other.false_wakeups;
        self.cutoff_disables += other.cutoff_disables;
        self.updates_skipped += other.updates_skipped;
    }
}

/// One released barrier instance (the raw material of Figure 3 and of the
/// oracle tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// The barrier site's PC.
    pub pc: u64,
    /// The site's dynamic instance index.
    pub site_instance: u64,
    /// Global episode index within the trace.
    pub episode: usize,
    /// Absolute release time.
    pub release_time: Cycles,
    /// Measured barrier interval time.
    pub bit: Cycles,
    /// The observed thread's compute time in this interval (trace value).
    pub observed_compute: Cycles,
    /// The observed thread's stall: `bit − observed_compute` (saturating).
    pub observed_bst: Cycles,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Configuration name ("Baseline", "Thrifty", …).
    pub config: String,
    /// Processor/thread count.
    pub threads: usize,
    /// Wall-clock execution time.
    pub wall_time: Cycles,
    /// Per-CPU energy/time ledgers.
    pub ledger: MachineLedger,
    /// Barrier event counts.
    pub counts: BarrierEventCounts,
    /// Relative BIT prediction error `|predicted − actual| / actual` over
    /// all early arrivals that had a prediction.
    pub prediction_error: OnlineStats,
    /// Every released barrier instance.
    pub instances: Vec<InstanceRecord>,
    /// The thread whose compute/BST decomposition `instances` records.
    pub observed_thread: usize,
    /// Digest of the captured event trace (`None` when tracing was off).
    pub trace: Option<TraceSummary>,
}

impl RunReport {
    /// Machine-wide energy per category, joules.
    pub fn energy(&self) -> CategoryBreakdown {
        self.ledger.energy()
    }

    /// Machine-wide CPU-time per category, cycles.
    pub fn time(&self) -> CategoryBreakdown {
        self.ledger.time()
    }

    /// Total energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.ledger.total_energy()
    }

    /// Barrier imbalance: the fraction of accounted CPU time spent at
    /// barriers (spinning, transitioning, or sleeping). For a Baseline run
    /// this is exactly Table 2's metric (all barrier time is spin time).
    pub fn barrier_imbalance(&self) -> f64 {
        let t = self.time();
        let barrier =
            t[EnergyCategory::Spin] + t[EnergyCategory::Transition] + t[EnergyCategory::Sleep];
        let total = t.total();
        if total == 0.0 {
            0.0
        } else {
            barrier / total
        }
    }

    /// Energy of this run normalized to a baseline run's total (the y-axis
    /// of Figure 5).
    pub fn energy_normalized_to(&self, baseline: &RunReport) -> CategoryBreakdown {
        self.energy().normalized_to(baseline.total_energy())
    }

    /// Execution-time breakdown normalized to a baseline run's wall clock
    /// (the y-axis of Figure 6). Per-category times are averaged over CPUs
    /// so the bar height equals `wall_time / baseline.wall_time`.
    pub fn time_normalized_to(&self, baseline: &RunReport) -> CategoryBreakdown {
        let denom = baseline.wall_time.as_u64() as f64 * self.threads as f64;
        self.time().normalized_to(denom)
    }

    /// Relative wall-clock slowdown vs a baseline run (positive = slower).
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        self.wall_time.as_u64() as f64 / baseline.wall_time.as_u64() as f64 - 1.0
    }

    /// Relative energy savings vs a baseline run (positive = saves).
    pub fn energy_savings_vs(&self, baseline: &RunReport) -> f64 {
        1.0 - self.total_energy() / baseline.total_energy()
    }

    /// Per-barrier-site statistics over the run's instances, ordered by
    /// PC: the data behind the paper's per-barrier analyses (Figure 3's
    /// stability claim, §5.2's Ocean discussion).
    pub fn site_summaries(&self) -> Vec<SiteSummary> {
        let mut by_pc: std::collections::BTreeMap<u64, (OnlineStats, OnlineStats)> =
            std::collections::BTreeMap::new();
        for inst in &self.instances {
            let (bit, bst) = by_pc.entry(inst.pc).or_default();
            bit.push(inst.bit.as_u64() as f64);
            bst.push(inst.observed_bst.as_u64() as f64);
        }
        by_pc
            .into_iter()
            .map(|(pc, (bit, bst))| SiteSummary { pc, bit, bst })
            .collect()
    }
}

/// Cell-level coverage accounting for one (app, configuration) aggregate:
/// how many matrix cells completed, how many needed retries, and how many
/// were lost to each failure class. This is what lets a degraded sweep
/// state exactly which cells its statistics cover instead of aborting the
/// whole run (DESIGN.md §11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellCoverage {
    /// Cells that produced a report (possibly after retries).
    pub completed: u64,
    /// Cells that needed at least one retry, whether or not they
    /// eventually completed.
    pub retried: u64,
    /// Cells whose final attempt panicked.
    pub panicked: u64,
    /// Cells whose final attempt exceeded the wall-clock deadline.
    pub timed_out: u64,
    /// Cells whose final attempt livelocked (caught by the simulator's
    /// progress watchdog).
    pub livelocked: u64,
}

impl CellCoverage {
    /// Total cells accounted for (completed + failed).
    pub fn attempted(&self) -> u64 {
        self.completed + self.failed()
    }

    /// Cells that failed to produce a report, across all classes.
    pub fn failed(&self) -> u64 {
        self.panicked + self.timed_out + self.livelocked
    }

    /// Whether every attempted cell completed.
    pub fn is_complete(&self) -> bool {
        self.failed() == 0
    }

    /// Classifies one final cell error into its failure counter.
    pub fn record_error(&mut self, error: &CellError) {
        match error {
            CellError::Panic(_) => self.panicked += 1,
            CellError::Livelock(_) => self.livelocked += 1,
            CellError::Timeout { .. } => self.timed_out += 1,
        }
    }

    /// Adds another coverage tally into this one (field-wise addition).
    pub fn merge(&mut self, other: &CellCoverage) {
        self.completed += other.completed;
        self.retried += other.retried;
        self.panicked += other.panicked;
        self.timed_out += other.timed_out;
        self.livelocked += other.livelocked;
    }
}

impl fmt::Display for CellCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} cells completed", self.completed, self.attempted())?;
        if self.retried > 0 {
            write!(f, ", {} retried", self.retried)?;
        }
        if self.panicked > 0 {
            write!(f, ", {} panicked", self.panicked)?;
        }
        if self.timed_out > 0 {
            write!(f, ", {} timed out", self.timed_out)?;
        }
        if self.livelocked > 0 {
            write!(f, ", {} livelocked", self.livelocked)?;
        }
        Ok(())
    }
}

/// Mean/σ summary of one (application, configuration) cell across
/// replicated seeds — what `sweep --seeds N` reports instead of a single
/// [`RunReport`].
///
/// Every per-seed sample is pushed together with its *same-seed* Baseline
/// run, so the normalized metrics (`energy_vs_baseline`,
/// `slowdown_vs_baseline`) pair each replication with its own control the
/// way the paper's figures do, rather than normalizing to a pooled mean.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateReport {
    /// Application name.
    pub app: String,
    /// Configuration name.
    pub config: String,
    /// Processor/thread count.
    pub threads: usize,
    /// Wall-clock cycles per seed.
    pub wall_time: OnlineStats,
    /// Total machine energy (joules) per seed.
    pub total_energy: OnlineStats,
    /// Total energy normalized to the same-seed Baseline (1.0 = Baseline).
    pub energy_vs_baseline: OnlineStats,
    /// Fractional wall-clock slowdown vs the same-seed Baseline.
    pub slowdown_vs_baseline: OnlineStats,
    /// Barrier imbalance per seed.
    pub imbalance: OnlineStats,
    /// Event counts summed over all seeds.
    pub counts: BarrierEventCounts,
    /// Injected-fault and recovery tallies summed over all seeds (all zero
    /// for fault-free sweeps).
    pub faults: FaultSummary,
    /// Cells that panicked instead of completing; their panic messages are
    /// in `failures` and their metrics are absent from every statistic.
    pub failed_cells: u64,
    /// Panic messages of the failed cells, in cell order.
    pub failures: Vec<String>,
    /// Per-failure-class cell accounting (completed / retried / panicked /
    /// timed out / livelocked). Driven by [`AggregateReport::push`] and
    /// [`AggregateReport::record_error`]; the untyped
    /// [`AggregateReport::record_failure`] path leaves it unchanged.
    pub coverage: CellCoverage,
}

impl AggregateReport {
    /// Creates an empty aggregate for one matrix cell.
    pub fn new(app: impl Into<String>, config: impl Into<String>, threads: usize) -> Self {
        AggregateReport {
            app: app.into(),
            config: config.into(),
            threads,
            wall_time: OnlineStats::new(),
            total_energy: OnlineStats::new(),
            energy_vs_baseline: OnlineStats::new(),
            slowdown_vs_baseline: OnlineStats::new(),
            imbalance: OnlineStats::new(),
            counts: BarrierEventCounts::default(),
            faults: FaultSummary::default(),
            failed_cells: 0,
            failures: Vec::new(),
            coverage: CellCoverage::default(),
        }
    }

    /// Folds in one seed's run, paired with the Baseline run of the *same*
    /// seed (pass the report itself when aggregating Baseline cells).
    pub fn push(&mut self, report: &RunReport, baseline: &RunReport) {
        self.wall_time.push(report.wall_time.as_u64() as f64);
        self.total_energy.push(report.total_energy());
        self.energy_vs_baseline
            .push(report.energy_normalized_to(baseline).total());
        self.slowdown_vs_baseline.push(report.slowdown_vs(baseline));
        self.imbalance.push(report.barrier_imbalance());
        self.counts.merge(&report.counts);
        self.coverage.completed += 1;
    }

    /// Folds in one seed's fault tallies (see [`AggregateReport::faults`]).
    pub fn merge_faults(&mut self, faults: &FaultSummary) {
        self.faults.merge(faults);
    }

    /// Records a cell that panicked instead of completing.
    pub fn record_failure(&mut self, message: impl Into<String>) {
        self.failed_cells += 1;
        self.failures.push(message.into());
    }

    /// Records a cell whose final supervised attempt failed with a typed
    /// error: the rendered message lands in `failures` and the error class
    /// in `coverage`.
    pub fn record_error(&mut self, error: &CellError) {
        self.coverage.record_error(error);
        self.record_failure(error.to_string());
    }

    /// Notes that a completed-or-failed cell burned `retries` retries
    /// before its outcome became final.
    pub fn record_retries(&mut self, retries: u64) {
        if retries > 0 {
            self.coverage.retried += 1;
        }
    }

    /// Number of replicated seeds folded in so far.
    pub fn runs(&self) -> u64 {
        self.wall_time.count()
    }
}

/// Per-site BIT/BST statistics (the observed thread's BST, as in Figure 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSummary {
    /// The barrier site's PC.
    pub pc: u64,
    /// Interval-time statistics across the site's dynamic instances.
    pub bit: OnlineStats,
    /// The observed thread's stall-time statistics at this site.
    pub bst: OnlineStats,
}

impl SiteSummary {
    /// Number of dynamic instances of this site.
    pub fn instances(&self) -> u64 {
        self.bit.count()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = self.energy().fractions();
        write!(
            f,
            "{}/{}: wall {} energy {:.3}J (compute {:.1}% spin {:.1}% trans {:.1}% sleep {:.1}%), imbalance {:.2}%",
            self.app,
            self.config,
            self.wall_time,
            self.total_energy(),
            e[EnergyCategory::Compute] * 100.0,
            e[EnergyCategory::Spin] * 100.0,
            e[EnergyCategory::Transition] * 100.0,
            e[EnergyCategory::Sleep] * 100.0,
            self.barrier_imbalance() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(compute_j: f64, spin_j: f64, wall: u64) -> RunReport {
        let mut ledger = MachineLedger::new(2);
        for cpu in 0..2 {
            ledger.cpu_mut(cpu).record(
                EnergyCategory::Compute,
                Cycles::new(wall * 3 / 4),
                compute_j,
            );
            ledger
                .cpu_mut(cpu)
                .record(EnergyCategory::Spin, Cycles::new(wall / 4), spin_j);
        }
        RunReport {
            app: "X".into(),
            config: "Baseline".into(),
            threads: 2,
            wall_time: Cycles::new(wall),
            ledger,
            counts: BarrierEventCounts::default(),
            prediction_error: OnlineStats::new(),
            instances: Vec::new(),
            observed_thread: 0,
            trace: None,
        }
    }

    #[test]
    fn imbalance_is_barrier_time_fraction() {
        let r = report(10.0, 10.0, 1000);
        assert!((r.barrier_imbalance() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn normalization_against_self_is_unity_time() {
        let r = report(10.0, 10.0, 1000);
        let t = r.time_normalized_to(&r);
        assert!((t.total() - 1.0).abs() < 1e-9);
        assert!((r.slowdown_vs(&r)).abs() < 1e-12);
        assert!((r.energy_savings_vs(&r)).abs() < 1e-12);
    }

    #[test]
    fn savings_and_slowdown_signs() {
        let base = report(10.0, 10.0, 1000);
        let better = report(10.0, 1.0, 1010);
        assert!(better.energy_savings_vs(&base) > 0.0);
        assert!(better.slowdown_vs(&base) > 0.0);
        assert!((better.slowdown_vs(&base) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn site_summaries_group_by_pc() {
        let mut r = report(1.0, 1.0, 100);
        for (i, (pc, bit, bst)) in [(7u64, 100u64, 30u64), (7, 120, 10), (9, 500, 50)]
            .into_iter()
            .enumerate()
        {
            r.instances.push(InstanceRecord {
                pc,
                site_instance: i as u64,
                episode: i,
                release_time: Cycles::new((i as u64 + 1) * 1000),
                bit: Cycles::new(bit),
                observed_compute: Cycles::new(bit - bst),
                observed_bst: Cycles::new(bst),
            });
        }
        let sites = r.site_summaries();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].pc, 7);
        assert_eq!(sites[0].instances(), 2);
        assert!((sites[0].bit.mean() - 110.0).abs() < 1e-9);
        assert!((sites[0].bst.mean() - 20.0).abs() < 1e-9);
        assert_eq!(sites[1].pc, 9);
        assert_eq!(sites[1].instances(), 1);
    }

    #[test]
    fn counts_total_sleeps() {
        let c = BarrierEventCounts {
            sleeps_by_state: vec![3, 0, 4],
            ..BarrierEventCounts::default()
        };
        assert_eq!(c.total_sleeps(), 7);
    }

    #[test]
    fn counts_merge_is_fieldwise_addition() {
        let mut a = BarrierEventCounts {
            episodes: 2,
            early_arrivals: 5,
            spins: 1,
            sleeps_by_state: vec![1, 2],
            flushes: 1,
            flushed_lines: 10,
            internal_wakeups: 2,
            external_wakeups: 1,
            early_wakeups: 1,
            late_wakeups: 0,
            false_wakeups: 0,
            cutoff_disables: 1,
            updates_skipped: 1,
        };
        let b = BarrierEventCounts {
            episodes: 3,
            sleeps_by_state: vec![0, 1, 4],
            ..BarrierEventCounts::default()
        };
        a.merge(&b);
        assert_eq!(a.episodes, 5);
        assert_eq!(a.sleeps_by_state, vec![1, 3, 4], "merges into the longer");
        assert_eq!(a.total_sleeps(), 8);
        assert_eq!(a.early_arrivals, 5);
    }

    #[test]
    fn aggregate_pairs_each_seed_with_its_baseline() {
        let base_a = report(10.0, 10.0, 1000);
        let run_a = report(10.0, 2.0, 1010);
        let base_b = report(10.0, 8.0, 2000);
        let run_b = report(10.0, 2.0, 2040);
        let mut agg = AggregateReport::new("X", "Thrifty", 2);
        assert_eq!(agg.runs(), 0);
        agg.push(&run_a, &base_a);
        agg.push(&run_b, &base_b);
        assert_eq!(agg.runs(), 2);
        let want = (run_a.slowdown_vs(&base_a) + run_b.slowdown_vs(&base_b)) / 2.0;
        assert!((agg.slowdown_vs_baseline.mean() - want).abs() < 1e-12);
        assert!(
            agg.energy_vs_baseline.mean() < 1.0,
            "both seeds save energy"
        );
        assert!((agg.wall_time.mean() - 1525.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_of_baseline_against_itself_is_unity() {
        let base = report(10.0, 10.0, 1000);
        let mut agg = AggregateReport::new("X", "Baseline", 2);
        agg.push(&base, &base);
        assert!((agg.energy_vs_baseline.mean() - 1.0).abs() < 1e-12);
        assert!(agg.slowdown_vs_baseline.mean().abs() < 1e-12);
        assert_eq!(agg.slowdown_vs_baseline.std_dev(), 0.0);
    }

    #[test]
    fn coverage_classifies_and_merges() {
        let mut agg = AggregateReport::new("X", "Thrifty", 2);
        let base = report(10.0, 10.0, 1000);
        agg.push(&base, &base);
        agg.record_error(&CellError::Panic("boom".into()));
        agg.record_error(&CellError::Timeout { limit_ms: 5 });
        agg.record_retries(2);
        agg.record_retries(0);
        assert_eq!(agg.failed_cells, 2);
        assert_eq!(agg.failures[0], "panic: boom");
        assert_eq!(agg.coverage.completed, 1);
        assert_eq!(agg.coverage.failed(), 2);
        assert!(!agg.coverage.is_complete());
        assert_eq!(agg.coverage.retried, 1, "only nonzero retry counts mark");
        let mut total = CellCoverage::default();
        total.merge(&agg.coverage);
        total.merge(&agg.coverage);
        assert_eq!(total.attempted(), 6);
        let s = agg.coverage.to_string();
        assert!(s.contains("1/3 cells completed"), "{s}");
        assert!(s.contains("1 panicked"), "{s}");
        assert!(s.contains("1 timed out"), "{s}");
        assert!(!s.contains("livelocked"), "{s}");
    }

    #[test]
    fn display_has_key_fields() {
        let s = report(1.0, 1.0, 100).to_string();
        assert!(s.contains("Baseline"));
        assert!(s.contains("imbalance"));
    }
}
