//! High-level experiment entry points.
//!
//! These wrap [`crate::sim::Simulator`] with the two-pass protocol the
//! oracle configurations need: Oracle-Halt and Ideal require *perfect* BIT
//! prediction, which is obtained by first running Baseline on the same
//! deterministic trace (barrier timing under Baseline equals the timing a
//! perfectly-predicting sleeper would see, because hybrid wake-up with an
//! exact prediction departs at the release, just like a spinner) and
//! recording every instance's measured BIT.

use crate::report::RunReport;
use crate::sim::{simulate, SimulatorConfig};
use std::sync::Arc;
use tb_core::{AlgorithmConfig, BarrierPc, RecordedBitOracle, SystemConfig};
use tb_trace::{MemorySink, SinkHandle, TraceEvent, TraceSummary};
use tb_workloads::{AppSpec, AppTrace};

/// Default machine size (Table 1: 64 nodes) and seed used by the paper
/// reproduction binaries.
pub const PAPER_SEED: u64 = 0x7B41;

/// Builds the oracle table from a Baseline run's instance records.
pub fn oracle_from_baseline(baseline: &RunReport) -> RecordedBitOracle {
    let mut oracle = RecordedBitOracle::new();
    for inst in &baseline.instances {
        oracle.record(BarrierPc::new(inst.pc), inst.site_instance, inst.bit);
    }
    oracle
}

/// Runs `trace` under a named system configuration, performing the Baseline
/// pre-run when the configuration needs an oracle.
pub fn run_trace(trace: &AppTrace, threads_nodes: u16, sys: SystemConfig) -> RunReport {
    let cfg = SimulatorConfig::paper_with_nodes(sys.name(), threads_nodes);
    let oracle = if sys.needs_oracle() {
        let base_cfg = SimulatorConfig::paper_with_nodes("Baseline", threads_nodes);
        let baseline = simulate(base_cfg, trace, AlgorithmConfig::baseline(), None);
        Some(oracle_from_baseline(&baseline))
    } else {
        None
    };
    simulate(cfg, trace, sys.algorithm_config(), oracle)
}

/// Runs `trace` under an explicit algorithm configuration (ablations),
/// optionally with an oracle table.
pub fn run_trace_with(
    trace: &AppTrace,
    threads_nodes: u16,
    name: &str,
    algo: AlgorithmConfig,
    oracle: Option<RecordedBitOracle>,
) -> RunReport {
    let cfg = SimulatorConfig::paper_with_nodes(name, threads_nodes);
    simulate(cfg, trace, algo, oracle)
}

/// A run plus the trace events captured while it executed.
#[derive(Debug)]
pub struct TracedRun {
    /// The usual run report, with `report.trace` filled in.
    pub report: RunReport,
    /// Every captured event, sorted by `(timestamp, thread)`.
    pub events: Vec<TraceEvent>,
}

/// Like [`run_trace`], but records per-episode trace events through an
/// in-memory sink while the simulation executes.
///
/// `capacity_per_thread` bounds each thread's ring buffer; a busy thread
/// that overflows it drops its *oldest* events (the count of drops lands in
/// `report.trace.dropped`). The Baseline pre-run for oracle configurations
/// is *not* traced — only the run under `sys` is.
pub fn run_trace_recording(
    trace: &AppTrace,
    threads_nodes: u16,
    sys: SystemConfig,
    capacity_per_thread: usize,
) -> TracedRun {
    let mut cfg = SimulatorConfig::paper_with_nodes(sys.name(), threads_nodes);
    let sink = Arc::new(MemorySink::new(threads_nodes as usize, capacity_per_thread));
    cfg.trace = SinkHandle::new(sink.clone());
    let oracle = if sys.needs_oracle() {
        let base_cfg = SimulatorConfig::paper_with_nodes("Baseline", threads_nodes);
        let baseline = simulate(base_cfg, trace, AlgorithmConfig::baseline(), None);
        Some(oracle_from_baseline(&baseline))
    } else {
        None
    };
    let mut report = simulate(cfg, trace, sys.algorithm_config(), oracle);
    let events = sink.drain_sorted();
    report.trace = Some(TraceSummary::from_events(&events, sink.dropped()));
    TracedRun { report, events }
}

/// Generates `app`'s trace for `threads` processors and runs it under
/// `sys`.
///
/// # Panics
///
/// Panics if `threads` is not a power of two in `2..=64` (machine sizes
/// follow the hypercube constraint).
pub fn run_app(app: &AppSpec, threads: u16, seed: u64, sys: SystemConfig) -> RunReport {
    let trace = app.generate(threads as usize, seed);
    run_trace(&trace, threads, sys)
}

/// Runs one application under all five configurations (the column group of
/// Figures 5 and 6), sharing a single trace and a single Baseline run.
///
/// This is the serial convenience wrapper around
/// [`crate::harness::Harness`]; build a harness directly to run many
/// matrices in parallel or to keep the trace/Baseline caches across calls.
pub fn run_config_matrix(app: &AppSpec, threads: u16, seed: u64) -> Vec<RunReport> {
    use crate::harness::{Cell, Harness};
    let harness = Harness::serial();
    let cells: Vec<Cell> = SystemConfig::ALL
        .into_iter()
        .map(|sys| Cell::new(app.clone(), threads, seed, sys))
        .collect();
    harness
        .run_cells(&cells)
        .expect("serial convenience wrapper runs fault-free cells")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_core::SystemConfig;
    use tb_workloads::AppSpec;

    #[test]
    fn run_app_round_trips() {
        let app = AppSpec::by_name("Radiosity").unwrap();
        let r = run_app(&app, 16, 3, SystemConfig::Baseline);
        assert_eq!(r.app, "Radiosity");
        assert_eq!(r.config, "Baseline");
        assert_eq!(r.threads, 16);
        assert!(r.counts.episodes > 0);
    }

    #[test]
    fn oracle_table_covers_every_instance() {
        let app = AppSpec::by_name("Radiosity").unwrap();
        let trace = app.generate(16, 3);
        let baseline = run_trace(&trace, 16, SystemConfig::Baseline);
        let oracle = oracle_from_baseline(&baseline);
        assert_eq!(oracle.len(), baseline.instances.len());
    }

    #[test]
    fn matrix_produces_five_reports_in_figure_order() {
        let app = AppSpec::by_name("Radiosity").unwrap();
        let reports = run_config_matrix(&app, 16, 3);
        let names: Vec<&str> = reports.iter().map(|r| r.config.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Baseline",
                "Thrifty-Halt",
                "Oracle-Halt",
                "Thrifty",
                "Ideal"
            ]
        );
        // All ran the same trace.
        assert!(reports
            .iter()
            .all(|r| r.counts.episodes == reports[0].counts.episodes));
    }

    #[test]
    fn recorded_trace_agrees_with_event_counters() {
        let app = AppSpec::by_name("Ocean").unwrap();
        let trace = app.generate(16, PAPER_SEED);
        let traced = run_trace_recording(&trace, 16, SystemConfig::Thrifty, 1 << 16);
        let summary = traced.report.trace.as_ref().unwrap();
        assert_eq!(summary.dropped, 0, "capacity should be ample");
        assert_eq!(summary.events as usize, traced.events.len());

        // Every physical counter in BarrierEventCounts must be visible as
        // the same number of trace events.
        let c = &traced.report.counts;
        let k = &summary.counts;
        assert_eq!(k.releases, c.episodes);
        assert_eq!(k.arrivals, c.early_arrivals);
        assert_eq!(k.last_arrivals, c.episodes);
        assert_eq!(k.spin_starts, c.spins);
        assert_eq!(k.sleep_starts, c.total_sleeps());
        assert_eq!(k.flushes, c.flushes);
        assert_eq!(k.internal_wakes, c.internal_wakeups);
        assert_eq!(k.external_wakes, c.external_wakeups);
        assert_eq!(k.false_wakes, c.false_wakeups);
        assert_eq!(k.residual_spins, c.early_wakeups);
        assert_eq!(k.cutoff_disables, c.cutoff_disables);
        assert_eq!(k.releases_update_skipped, c.updates_skipped);
        // Every thread departs every episode.
        assert_eq!(k.departs, c.episodes * 16);

        // The §3.4.2 accuracy report derives the same skip count from the
        // semantic stream alone.
        let acc = tb_trace::PredictionAccuracyReport::from_events(&traced.events);
        assert_eq!(acc.skipped_updates, c.updates_skipped);
        assert_eq!(acc.unmatched_predictions, 0);
        assert!(acc.total_predictions() > 0);

        // Something actually slept, so the latency histogram has sleeper
        // samples.
        assert!(summary.wake_latency.samples > 0);
    }

    #[test]
    fn oracle_halt_never_slower_than_noticeable() {
        let app = AppSpec::by_name("Water-Sp").unwrap();
        let trace = app.generate(16, 5);
        let base = run_trace(&trace, 16, SystemConfig::Baseline);
        let oracle = run_trace(&trace, 16, SystemConfig::OracleHalt);
        assert!(
            oracle.slowdown_vs(&base) < 0.01,
            "Oracle-Halt should not degrade performance (got {})",
            oracle.slowdown_vs(&base)
        );
        assert!(oracle.energy_savings_vs(&base) > 0.0);
    }
}
