//! High-level experiment entry points.
//!
//! These wrap [`crate::sim::Simulator`] with the two-pass protocol the
//! oracle configurations need: Oracle-Halt and Ideal require *perfect* BIT
//! prediction, which is obtained by first running Baseline on the same
//! deterministic trace (barrier timing under Baseline equals the timing a
//! perfectly-predicting sleeper would see, because hybrid wake-up with an
//! exact prediction departs at the release, just like a spinner) and
//! recording every instance's measured BIT.

use crate::report::RunReport;
use crate::sim::{simulate, SimulatorConfig};
use tb_core::{AlgorithmConfig, BarrierPc, RecordedBitOracle, SystemConfig};
use tb_workloads::{AppSpec, AppTrace};

/// Default machine size (Table 1: 64 nodes) and seed used by the paper
/// reproduction binaries.
pub const PAPER_SEED: u64 = 0x7B41;

/// Builds the oracle table from a Baseline run's instance records.
pub fn oracle_from_baseline(baseline: &RunReport) -> RecordedBitOracle {
    let mut oracle = RecordedBitOracle::new();
    for inst in &baseline.instances {
        oracle.record(BarrierPc::new(inst.pc), inst.site_instance, inst.bit);
    }
    oracle
}

/// Runs `trace` under a named system configuration, performing the Baseline
/// pre-run when the configuration needs an oracle.
pub fn run_trace(trace: &AppTrace, threads_nodes: u16, sys: SystemConfig) -> RunReport {
    let cfg = SimulatorConfig::paper_with_nodes(sys.name(), threads_nodes);
    let oracle = if sys.needs_oracle() {
        let base_cfg = SimulatorConfig::paper_with_nodes("Baseline", threads_nodes);
        let baseline = simulate(base_cfg, trace, AlgorithmConfig::baseline(), None);
        Some(oracle_from_baseline(&baseline))
    } else {
        None
    };
    simulate(cfg, trace, sys.algorithm_config(), oracle)
}

/// Runs `trace` under an explicit algorithm configuration (ablations),
/// optionally with an oracle table.
pub fn run_trace_with(
    trace: &AppTrace,
    threads_nodes: u16,
    name: &str,
    algo: AlgorithmConfig,
    oracle: Option<RecordedBitOracle>,
) -> RunReport {
    let cfg = SimulatorConfig::paper_with_nodes(name, threads_nodes);
    simulate(cfg, trace, algo, oracle)
}

/// Generates `app`'s trace for `threads` processors and runs it under
/// `sys`.
///
/// # Panics
///
/// Panics if `threads` is not a power of two in `2..=64` (machine sizes
/// follow the hypercube constraint).
pub fn run_app(app: &AppSpec, threads: u16, seed: u64, sys: SystemConfig) -> RunReport {
    let trace = app.generate(threads as usize, seed);
    run_trace(&trace, threads, sys)
}

/// Runs one application under all five configurations (the column group of
/// Figures 5 and 6), sharing a single trace and a single Baseline run.
pub fn run_config_matrix(app: &AppSpec, threads: u16, seed: u64) -> Vec<RunReport> {
    let trace = app.generate(threads as usize, seed);
    let baseline = run_trace(&trace, threads, SystemConfig::Baseline);
    let oracle = oracle_from_baseline(&baseline);
    let mut out = vec![baseline];
    for sys in [
        SystemConfig::ThriftyHalt,
        SystemConfig::OracleHalt,
        SystemConfig::Thrifty,
        SystemConfig::Ideal,
    ] {
        let cfg = SimulatorConfig::paper_with_nodes(sys.name(), threads);
        let oracle_arg = sys.needs_oracle().then(|| oracle.clone());
        out.push(simulate(cfg, &trace, sys.algorithm_config(), oracle_arg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_core::SystemConfig;
    use tb_workloads::AppSpec;

    #[test]
    fn run_app_round_trips() {
        let app = AppSpec::by_name("Radiosity").unwrap();
        let r = run_app(&app, 16, 3, SystemConfig::Baseline);
        assert_eq!(r.app, "Radiosity");
        assert_eq!(r.config, "Baseline");
        assert_eq!(r.threads, 16);
        assert!(r.counts.episodes > 0);
    }

    #[test]
    fn oracle_table_covers_every_instance() {
        let app = AppSpec::by_name("Radiosity").unwrap();
        let trace = app.generate(16, 3);
        let baseline = run_trace(&trace, 16, SystemConfig::Baseline);
        let oracle = oracle_from_baseline(&baseline);
        assert_eq!(oracle.len(), baseline.instances.len());
    }

    #[test]
    fn matrix_produces_five_reports_in_figure_order() {
        let app = AppSpec::by_name("Radiosity").unwrap();
        let reports = run_config_matrix(&app, 16, 3);
        let names: Vec<&str> = reports.iter().map(|r| r.config.as_str()).collect();
        assert_eq!(
            names,
            vec!["Baseline", "Thrifty-Halt", "Oracle-Halt", "Thrifty", "Ideal"]
        );
        // All ran the same trace.
        assert!(reports
            .iter()
            .all(|r| r.counts.episodes == reports[0].counts.episodes));
    }

    #[test]
    fn oracle_halt_never_slower_than_noticeable() {
        let app = AppSpec::by_name("Water-Sp").unwrap();
        let trace = app.generate(16, 5);
        let base = run_trace(&trace, 16, SystemConfig::Baseline);
        let oracle = run_trace(&trace, 16, SystemConfig::OracleHalt);
        assert!(
            oracle.slowdown_vs(&base) < 0.01,
            "Oracle-Halt should not degrade performance (got {})",
            oracle.slowdown_vs(&base)
        );
        assert!(oracle.energy_savings_vs(&base) > 0.0);
    }
}
