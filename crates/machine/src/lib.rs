#![warn(missing_docs)]
//! The full simulated machine: the paper's experimental platform.
//!
//! [`Simulator`] executes a workload trace on the CC-NUMA substrate
//! (`tb-mem`) under one of the paper's barrier configurations (`tb-core`),
//! accounting energy with the Wattch-derived power model (`tb-energy`).
//! Each simulated processor is a state machine:
//!
//! ```text
//! Computing ──ComputeDone──► check in (lock + count over coherence)
//!    ▲                           │
//!    │                 early?────┴────last?
//!    │                   │              │
//!    │        spin ◄── sleep()          └─► flip flag ──► invalidations
//!    │          │     (maybe flush,                        = external
//!    │          │      enter state,                          wake-ups
//!    │          │      arm timer)
//!    │          ▼            │
//!    └──── observe flip ◄────┴── wake (timer or invalidation),
//!            (residual spin)      exit transition, residual check
//! ```
//!
//! * [`report`] — per-run results: wall-clock, the Compute / Spin /
//!   Transition / Sleep energy and time breakdowns of Figures 5-6, barrier
//!   event counts, prediction accuracy, and the per-instance records behind
//!   Figure 3 and the oracle tables.
//! * [`sim`] — the discrete-event executor itself.
//! * [`run`] — high-level entry points: run an application under a named
//!   [`tb_core::SystemConfig`] (transparently performing the Baseline
//!   pre-run that feeds the Oracle-Halt/Ideal predictors), or under an
//!   explicit [`tb_core::AlgorithmConfig`] for the ablations.
//! * [`harness`] — the parallel experiment runner: fans (app × config ×
//!   seed) matrices out across a scoped worker pool with shared trace and
//!   Baseline/oracle caches, deterministic result order, and mean/σ
//!   aggregation across replicated seeds.
//!
//! # Examples
//!
//! ```
//! use tb_core::SystemConfig;
//! use tb_machine::run::run_app;
//! use tb_workloads::AppSpec;
//!
//! let app = AppSpec::by_name("FMM").unwrap();
//! let baseline = run_app(&app, 16, 1, SystemConfig::Baseline);
//! let thrifty = run_app(&app, 16, 1, SystemConfig::Thrifty);
//! assert!(thrifty.total_energy() < baseline.total_energy());
//! ```

pub mod harness;
pub mod journal;
pub mod report;
pub mod run;
pub mod sim;

pub use harness::{
    retry_backoff, AppMatrix, BaselineBundle, Cell, CellError, CellOutcome, Harness,
    SupervisionPolicy,
};
pub use journal::{CellKey, JournalError, StoredOutcome, SweepJournal};
pub use report::{
    AggregateReport, BarrierEventCounts, CellCoverage, InstanceRecord, RunReport, SiteSummary,
};
pub use sim::{
    simulate, simulate_faulted, try_simulate_faulted, LivelockDiagnostics, Simulator,
    SimulatorConfig, TimeSharing, DEFAULT_PROGRESS_BUDGET,
};
