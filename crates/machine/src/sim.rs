//! The discrete-event executor: workload trace × barrier algorithm ×
//! coherent memory × energy model.
//!
//! One barrier data structure serves the whole run (as in real barrier
//! libraries): a lock/count line and a flag line on distinct shared pages.
//! Barrier *sites* differ only by PC, which is what the predictor indexes.
//!
//! Modeling notes (see DESIGN.md §7):
//!
//! * Check-in (`lock(c); count++`) is a serialized critical section whose
//!   hand-off and count-line transfer costs come from the coherence model.
//! * The flag is fully coherent: spinners and sleepers hold it Shared, the
//!   releaser's write fans out invalidations, and each delivery is an
//!   external wake-up candidate — but only for CPUs whose cache controller
//!   was armed with the flag's address (§3.3.1).
//! * Compute phases advance the clock by the trace duration and rewrite
//!   the thread's dirty working set through the memory system, so deep
//!   sleeps pay real flush time and real upgrade misses afterwards.

use crate::report::{BarrierEventCounts, InstanceRecord, RunReport};
use tb_core::{AlgorithmConfig, BarrierAlgorithm, BarrierPc, FaultPlan, SleepChoice, ThreadId};
use tb_energy::{EnergyCategory, MachineLedger, PowerModel, SleepStateId};
use tb_faults::{FaultInjector, FaultSummary};
use tb_mem::{
    Addr, BusConfig, CoherentMemory, InvalidationFaults, LineAddr, MachineConfig, NodeId,
};
use tb_sim::{Cycles, EventId, EventQueue, OnlineStats};
use tb_trace::{FaultKind, SinkHandle, TraceEvent, TraceEventKind};
use tb_workloads::AppTrace;

/// How long one spin-loop iteration takes to notice an invalidated flag
/// and re-issue the load.
const SPIN_GRAIN: Cycles = Cycles::from_nanos(4);
/// Default livelock watchdog budget: how many events the simulator may
/// process *since the last barrier departure* before declaring the run
/// livelocked. Progress-relative (not total), so it is independent of
/// trace length: a healthy run needs only O(threads) events between
/// departures (a few per thread per episode), while a livelocked run
/// cycles wedged guard timers without ever departing. 2^18 leaves three
/// orders of magnitude of headroom at 64 nodes yet trips in milliseconds
/// of host time.
pub const DEFAULT_PROGRESS_BUDGET: u64 = 1 << 18;
/// Lock hand-off cost between consecutive barrier check-ins (ticket
/// transfer over the coherence protocol).
const LOCK_HANDOFF: Cycles = Cycles::from_nanos(40);
/// Shared page indices of the barrier data structure.
const COUNT_PAGE: u64 = 2;
const FLAG_PAGE: u64 = 3;
/// First shared page of the per-thread dirty working-set regions.
const DIRTY_BASE_PAGE: u64 = 64;
/// Pages reserved per thread for its working set (8 pages = 512 lines).
const DIRTY_PAGES_PER_THREAD: u64 = 8;

/// Executor configuration beyond the machine and algorithm configs.
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// The hardware platform (Table 1).
    pub machine: MachineConfig,
    /// The power model (Wattch-derived).
    pub power: PowerModel,
    /// Which thread's compute/BST decomposition the instance records carry
    /// (Figure 3 uses "a randomly picked thread, the same one in all
    /// instances").
    pub observed_thread: usize,
    /// Label stored in the report.
    pub config_name: String,
    /// Optional false-wake-up injection: `(probability, seed)`. With
    /// probability `p`, a sleeping CPU receives a spurious wake-up signal
    /// (the paper's §3.3.1 "unfortunate (but correct) type of exclusive
    /// prefetch by another thread") partway through its residency. The
    /// residual spin-loop guarantees correctness regardless.
    pub false_wakeup: Option<(f64, u64)>,
    /// Optional §3.4.1 time-sharing policy: instead of the thrifty
    /// mechanism, early threads spin briefly and then *yield the CPU to
    /// another process*, resuming only at scheduling-quantum boundaries.
    /// Overrides the algorithm's sleep decisions when set.
    pub time_sharing: Option<TimeSharing>,
    /// Optional snooping-bus substrate: when set, the machine runs on a
    /// bus SMP instead of the directory CC-NUMA (`machine` is then only
    /// used for its node count bound).
    pub bus: Option<BusConfig>,
    /// Optional fault plan. A plan with any class enabled injects lost or
    /// delayed flag invalidations (in the memory substrate), countdown-timer
    /// drift and spurious fires, and oversleep exit stalls — and arms the
    /// guard timer that makes every such run terminate. A disabled plan (or
    /// `None`) leaves every event path byte-identical to a fault-free run.
    pub faults: Option<FaultPlan>,
    /// Trace sink for per-episode event capture (disabled by default).
    /// The simulator emits the physical events (arrivals, sleep/spin
    /// entries, flushes, wake-ups, departures) with the global episode
    /// index; the algorithm it drives emits the semantic events through
    /// the same handle.
    pub trace: SinkHandle,
    /// Livelock watchdog: the maximum number of events processed since the
    /// last barrier departure before [`Simulator::try_run_with_faults`]
    /// gives up with [`LivelockDiagnostics`]. `None` disables the
    /// watchdog. Counting events does not alter the schedule, so the
    /// default budget is active even on fault-free runs.
    pub progress_budget: Option<u64>,
}

/// What the livelock watchdog saw when it tripped: either the
/// events-since-progress budget was exhausted (guard timers cycling with
/// no departures) or the event queue drained with threads still waiting
/// (`budget == 0`, `queue_len == 0` — every recovery path is dead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LivelockDiagnostics {
    /// Events processed since the last barrier departure.
    pub events_since_progress: u64,
    /// The budget those events exhausted (zero when the queue drained
    /// instead).
    pub budget: u64,
    /// The earliest episode a live thread is stuck at.
    pub episode: u64,
    /// Pending events at the moment the watchdog tripped.
    pub queue_len: u64,
    /// Threads that had not finished their trace.
    pub live_threads: u64,
}

impl std::fmt::Display for LivelockDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.queue_len == 0 && self.budget == 0 {
            write!(
                f,
                "event queue drained with {} live thread(s) stuck at episode {}",
                self.live_threads, self.episode
            )
        } else {
            write!(
                f,
                "no departure in {} events (budget {}); {} live thread(s) stuck at \
                 episode {}, {} event(s) pending",
                self.events_since_progress,
                self.budget,
                self.live_threads,
                self.episode,
                self.queue_len
            )
        }
    }
}

/// Parameters of the §3.4.1 time-sharing alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSharing {
    /// How long an early thread spins before yielding its CPU.
    pub spin_before_yield: Cycles,
    /// The OS scheduling quantum: a yielded thread resumes only at the
    /// next quantum boundary after the release.
    pub quantum: Cycles,
}

impl SimulatorConfig {
    /// Table 1 machine, paper power model.
    pub fn paper(config_name: impl Into<String>) -> Self {
        SimulatorConfig {
            machine: MachineConfig::table1(),
            power: PowerModel::paper(),
            observed_thread: 5,
            config_name: config_name.into(),
            false_wakeup: None,
            time_sharing: None,
            bus: None,
            faults: None,
            trace: SinkHandle::disabled(),
            progress_budget: Some(DEFAULT_PROGRESS_BUDGET),
        }
    }

    /// Same, but sized for `nodes` processors.
    pub fn paper_with_nodes(config_name: impl Into<String>, nodes: u16) -> Self {
        SimulatorConfig {
            machine: MachineConfig::table1_with_nodes(nodes),
            ..SimulatorConfig::paper(config_name)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Computing,
    Spinning {
        since: Cycles,
    },
    /// §3.4.1 time-sharing: the CPU is running another process; the
    /// barrier thread resumes at a quantum boundary.
    Yielded {
        since: Cycles,
    },
    EnteringSleep {
        state: SleepStateId,
        wake_pending: bool,
    },
    Sleeping {
        state: SleepStateId,
        since: Cycles,
    },
    ExitingSleep,
    Done,
}

#[derive(Debug)]
struct Proc {
    state: ProcState,
    /// Index of the next/current trace step.
    step: usize,
    /// When the thread departed the previous barrier.
    depart_time: Cycles,
    /// Whether the cache controller watches the flag line for this sleep.
    watcher_armed: bool,
    /// Pending internal-timer event, if armed.
    timer: Option<EventId>,
    /// The BIT predicted at this episode's arrival (for accuracy stats).
    predicted_bit: Option<Cycles>,
    /// Guard-timer re-arm interval for this episode (fault runs only).
    guard_interval: Cycles,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    ComputeDone {
        tid: usize,
    },
    TimerFired {
        tid: usize,
        episode: usize,
    },
    TransitionDone {
        tid: usize,
    },
    Observe {
        tid: usize,
        episode: usize,
    },
    FalseWake {
        tid: usize,
        episode: usize,
    },
    YieldNow {
        tid: usize,
        episode: usize,
    },
    /// Watchdog armed at barrier entry under fault injection: if the episode
    /// is released but this thread is still waiting (its wake-up was lost),
    /// force a recovery; otherwise re-arm.
    GuardTimer {
        tid: usize,
        episode: usize,
    },
}

/// The discrete-event machine simulator.
#[derive(Debug)]
pub struct Simulator {
    cfg: SimulatorConfig,
    trace: AppTrace,
    algo: BarrierAlgorithm,
    mem: CoherentMemory,
    ledger: MachineLedger,
    queue: EventQueue<Event>,
    procs: Vec<Proc>,
    lock_free_at: Cycles,
    count_addr: Addr,
    flag_addr: Addr,
    flag_line: LineAddr,
    arrivals: Vec<u32>,
    released: Vec<bool>,
    /// Semantic release time of each episode: the last thread's check-in.
    episode_release: Vec<Cycles>,
    /// Completion time of each episode's flag-flip write (all
    /// invalidation acknowledgments collected).
    episode_flip_done: Vec<Cycles>,
    episode_bits: Vec<Cycles>,
    counts: BarrierEventCounts,
    prediction_error: OnlineStats,
    instances: Vec<InstanceRecord>,
    false_wake_rng: Option<tb_sim::SimRng>,
    /// Executor-side fault source (`None` unless a fault plan is enabled).
    injector: Option<FaultInjector>,
    /// Injected-fault and recovery tallies (all zero in fault-free runs).
    fault_summary: FaultSummary,
    /// Livelock watchdog: events processed since the last departure.
    events_since_progress: u64,
    // Cached power values.
    p_compute: f64,
    p_spin: f64,
}

impl Simulator {
    /// Creates a simulator for `trace` under `algo`.
    ///
    /// # Panics
    ///
    /// Panics if the machine has fewer nodes than the trace has threads,
    /// if the algorithm was built for a different thread count, or if the
    /// observed thread is out of range.
    pub fn new(cfg: SimulatorConfig, trace: AppTrace, mut algo: BarrierAlgorithm) -> Self {
        let threads = trace.threads;
        // The algorithm shares the executor's sink: semantic and physical
        // events interleave in one capture. With tracing on, the energy
        // ledger also logs per-transition records for cross-referencing.
        algo.set_trace(cfg.trace.clone());
        let mut ledger = MachineLedger::new(threads);
        if cfg.trace.is_enabled() {
            ledger.enable_transition_log();
        }
        assert!(
            cfg.machine.nodes as usize >= threads,
            "machine has {} nodes but the trace needs {threads}",
            cfg.machine.nodes
        );
        assert_eq!(
            algo.threads(),
            threads,
            "algorithm sized for {} threads, trace has {threads}",
            algo.threads()
        );
        assert!(
            cfg.observed_thread < threads,
            "observed thread {} out of range",
            cfg.observed_thread
        );
        let mut mem = match &cfg.bus {
            Some(bus_cfg) => {
                assert!(
                    bus_cfg.nodes as usize >= threads,
                    "bus has {} processors but the trace needs {threads}",
                    bus_cfg.nodes
                );
                CoherentMemory::bus(bus_cfg.clone())
            }
            None => CoherentMemory::directory(cfg.machine.clone()),
        };
        let count_addr = mem.layout().shared_addr(COUNT_PAGE, 0);
        let flag_addr = mem.layout().shared_addr(FLAG_PAGE, 0);
        let injector = cfg.faults.as_ref().and_then(FaultInjector::from_plan);
        if let Some(plan) = injector.as_ref().map(FaultInjector::plan) {
            assert!(
                cfg.time_sharing.is_none(),
                "fault injection and §3.4.1 time-sharing are mutually exclusive \
                 (yielded threads resume only via flag invalidations, which a \
                 fault plan may drop)"
            );
            let mut inv_faults = InvalidationFaults::new(
                plan.seed,
                plan.lose_wakeup,
                plan.delay_wakeup,
                plan.delay_wakeup_mean_ns,
            );
            inv_faults.watch(flag_addr.line());
            mem.set_faults(inv_faults);
        }
        let episodes = trace.steps.len();
        let p_compute = cfg.power.compute_watts();
        let p_spin = cfg.power.spin_watts();
        let n_states = algo.policy().table().len();
        let counts = BarrierEventCounts {
            sleeps_by_state: vec![0; n_states],
            ..BarrierEventCounts::default()
        };
        Simulator {
            ledger,
            queue: EventQueue::new(),
            procs: (0..threads)
                .map(|_| Proc {
                    state: ProcState::Computing,
                    step: 0,
                    depart_time: Cycles::ZERO,
                    watcher_armed: false,
                    timer: None,
                    predicted_bit: None,
                    guard_interval: Cycles::ZERO,
                })
                .collect(),
            lock_free_at: Cycles::ZERO,
            count_addr,
            flag_addr,
            flag_line: flag_addr.line(),
            arrivals: vec![0; episodes],
            released: vec![false; episodes],
            episode_release: vec![Cycles::MAX; episodes],
            episode_flip_done: vec![Cycles::MAX; episodes],
            episode_bits: vec![Cycles::ZERO; episodes],
            counts,
            prediction_error: OnlineStats::new(),
            instances: Vec::with_capacity(episodes),
            false_wake_rng: cfg.false_wakeup.map(|(p, seed)| {
                assert!(
                    (0.0..=1.0).contains(&p),
                    "false-wakeup rate must be in [0,1]"
                );
                tb_sim::SimRng::new(seed).derive("false-wake", 0)
            }),
            injector,
            fault_summary: FaultSummary::default(),
            events_since_progress: 0,
            p_compute,
            p_spin,
            cfg,
            trace,
            algo,
            mem,
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(self) -> RunReport {
        self.run_with_faults().0
    }

    /// Like [`run`](Self::run), but also returns the injected-fault and
    /// recovery tallies. The summary rides next to the report rather than
    /// inside it because the serialized `RunReport` shape is frozen by
    /// golden fixtures; in fault-free runs it is all zeros.
    ///
    /// # Panics
    ///
    /// Panics if the livelock watchdog trips (see
    /// [`try_run_with_faults`](Self::try_run_with_faults) for the
    /// non-panicking form).
    pub fn run_with_faults(self) -> (RunReport, FaultSummary) {
        match self.try_run_with_faults() {
            Ok(out) => out,
            Err(d) => panic!("simulation livelocked: {d}"),
        }
    }

    /// Runs to completion, or returns [`LivelockDiagnostics`] if the
    /// watchdog trips: either no barrier departure happened within the
    /// configured event budget, or the event queue drained with threads
    /// still waiting (a lost wake-up whose every recovery path — including
    /// the guard timer — is dead). Fault plans with `wedge_guard` provoke
    /// exactly this; the budget check itself never alters the schedule.
    pub fn try_run_with_faults(mut self) -> Result<(RunReport, FaultSummary), LivelockDiagnostics> {
        for tid in 0..self.trace.threads {
            let dur = self.trace.steps[0].compute[tid];
            self.queue.schedule(dur, Event::ComputeDone { tid });
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.events_since_progress += 1;
            if let Some(budget) = self.cfg.progress_budget {
                if self.events_since_progress > budget {
                    return Err(self.livelock_diagnostics(budget));
                }
            }
            match ev {
                Event::ComputeDone { tid } => self.on_compute_done(tid, now),
                Event::TimerFired { tid, episode } => self.on_timer(tid, episode, now),
                Event::TransitionDone { tid } => self.on_transition_done(tid, now),
                Event::Observe { tid, episode } => self.on_observe(tid, episode, now),
                Event::FalseWake { tid, episode } => self.on_false_wake(tid, episode, now),
                Event::YieldNow { tid, episode } => self.on_yield_now(tid, episode, now),
                Event::GuardTimer { tid, episode } => self.on_guard_timer(tid, episode, now),
            }
        }
        // The termination oracle for fault runs: a lost wake-up that every
        // recovery path failed to rescue drains the queue with a thread
        // still waiting.
        if !self.procs.iter().all(|p| p.state == ProcState::Done) {
            return Err(self.livelock_diagnostics(0));
        }
        let wall_time = self
            .procs
            .iter()
            .map(|p| p.depart_time)
            .max()
            .unwrap_or(Cycles::ZERO);
        self.counts.episodes = self.instances.len() as u64;
        let summary = self.fault_summary;
        let report = RunReport {
            app: self.trace.app_name.clone(),
            config: self.cfg.config_name.clone(),
            threads: self.trace.threads,
            wall_time,
            ledger: self.ledger,
            counts: self.counts,
            prediction_error: self.prediction_error,
            instances: self.instances,
            observed_thread: self.cfg.observed_thread,
            trace: None,
        };
        Ok((report, summary))
    }

    /// Snapshot of the stuck state for the watchdog's error report.
    fn livelock_diagnostics(&self, budget: u64) -> LivelockDiagnostics {
        let live: Vec<_> = self
            .procs
            .iter()
            .filter(|p| p.state != ProcState::Done)
            .collect();
        LivelockDiagnostics {
            events_since_progress: self.events_since_progress,
            budget,
            episode: live.iter().map(|p| p.step).min().unwrap_or(0) as u64,
            queue_len: self.queue.len() as u64,
            live_threads: live.len() as u64,
        }
    }

    /// The memory system's statistics (after `run`, use the report; this
    /// accessor serves tests that inspect coherence behavior mid-build).
    pub fn mem_stats(&self) -> &tb_mem::MemStats {
        self.mem.stats()
    }

    fn node(&self, tid: usize) -> NodeId {
        NodeId::new(tid as u16)
    }

    fn dirty_addr(&self, tid: usize, line_idx: u32) -> Addr {
        let page = DIRTY_BASE_PAGE + tid as u64 * DIRTY_PAGES_PER_THREAD + (line_idx as u64) / 64;
        self.mem
            .layout()
            .shared_addr(page, ((line_idx as u64) % 64) * 64)
    }

    fn pc_of(&self, step: usize) -> BarrierPc {
        BarrierPc::new(self.trace.steps[step].pc)
    }

    /// Emits one physical trace event (a no-op when tracing is off).
    #[inline]
    fn emit(&self, tid: usize, at: Cycles, kind: TraceEventKind) {
        self.cfg.trace.emit(TraceEvent::new(at, tid, kind));
    }

    /// Arms the watchdog for a thread entering a wait state. Only fault
    /// runs arm guards: a fault-free run's event schedule must stay
    /// byte-identical with the plumbing present.
    fn arm_guard(&mut self, tid: usize, episode: usize, now: Cycles, stall: Option<Cycles>) {
        if self.injector.is_none() {
            return;
        }
        let deadline = tb_faults::guard_deadline(now, stall);
        self.procs[tid].guard_interval = deadline.saturating_sub(now);
        self.queue
            .schedule(deadline, Event::GuardTimer { tid, episode });
    }

    // ---- event handlers ---------------------------------------------------

    fn on_compute_done(&mut self, tid: usize, now: Cycles) {
        let node = self.node(tid);
        let step = self.procs[tid].step;
        let dirty = self.trace.steps[step].dirty_lines;
        // Rewrite the working set; the access latencies extend the compute
        // segment (this is where post-flush upgrade misses hurt). The dirty
        // lines are consecutive (`dirty_addr` strides one line at a time
        // through the thread's pages), so the whole rewrite goes through the
        // substrate's batched run entry point.
        let mut t = now;
        if dirty > 0 {
            t = self
                .mem
                .write_line_run(node, self.dirty_addr(tid, 0), dirty, t);
        }
        // Check in: serialized lock + count update over coherence.
        let grant = t.max(self.lock_free_at);
        let access = self.mem.write(node, self.count_addr, grant);
        let checkin = access.completion;
        self.lock_free_at = checkin + LOCK_HANDOFF;
        // Everything from departure to check-in is Compute (§5.2: lock and
        // memory stalls fall into Compute).
        let depart = self.procs[tid].depart_time;
        self.ledger.cpu_mut(tid).record(
            EnergyCategory::Compute,
            checkin.saturating_sub(depart),
            self.p_compute,
        );
        self.arrivals[step] += 1;
        if self.arrivals[step] == self.trace.threads as u32 {
            self.on_last_arrival(tid, checkin);
        } else {
            self.on_early_arrival(tid, checkin);
        }
    }

    fn on_early_arrival(&mut self, tid: usize, now: Cycles) {
        self.counts.early_arrivals += 1;
        let node = self.node(tid);
        let step = self.procs[tid].step;
        let pc = self.pc_of(step);
        self.emit(
            tid,
            now,
            TraceEventKind::Arrival {
                episode: step as u64,
                pc: pc.as_u64(),
                last: false,
            },
        );
        if let Some(ts) = self.cfg.time_sharing {
            // §3.4.1: spin briefly, then hand the CPU to another process.
            self.mem.read(node, self.flag_addr, now);
            self.procs[tid].state = ProcState::Spinning { since: now };
            self.counts.spins += 1;
            self.emit(
                tid,
                now,
                TraceEventKind::SpinStart {
                    episode: step as u64,
                    pc: pc.as_u64(),
                },
            );
            self.queue.schedule(
                now + ts.spin_before_yield,
                Event::YieldNow { tid, episode: step },
            );
            // Keep the timing bookkeeping consistent for BIT measurement.
            let _ = self.algo.on_early_arrival(ThreadId::new(tid), pc, now);
            return;
        }
        let decision = self.algo.on_early_arrival(ThreadId::new(tid), pc, now);
        self.procs[tid].predicted_bit = decision.predicted_bit;
        // Fault (b): skew the countdown timer before it is armed.
        let wakeup = {
            let skew = match (&mut self.injector, decision.wakeup.internal_at) {
                (Some(inj), Some(at)) => inj.timer_skew(at.saturating_sub(now)),
                _ => None,
            };
            if let Some((skew, fault)) = skew {
                self.fault_summary.record(fault);
                self.emit(
                    tid,
                    now,
                    TraceEventKind::FaultInjected {
                        episode: step as u64,
                        pc: pc.as_u64(),
                        fault,
                    },
                );
                decision.wakeup.with_skew(now, skew)
            } else {
                decision.wakeup
            }
        };
        match decision.choice {
            SleepChoice::Spin => {
                // Conventional path: pull a Shared copy of the flag and
                // spin on it locally.
                self.mem.read(node, self.flag_addr, now);
                self.procs[tid].state = ProcState::Spinning { since: now };
                self.counts.spins += 1;
                self.emit(
                    tid,
                    now,
                    TraceEventKind::SpinStart {
                        episode: step as u64,
                        pc: pc.as_u64(),
                    },
                );
                self.arm_guard(tid, step, now, decision.predicted_stall);
            }
            SleepChoice::Sleep { state, needs_flush } => {
                let mut t = now;
                if needs_flush {
                    self.counts.flushes += 1;
                    let mut flushed = (0u64, Cycles::ZERO);
                    if self.algo.config().flush_overhead {
                        let f = self.mem.flush_dirty_shared(node, t);
                        self.counts.flushed_lines += f.lines as u64;
                        self.ledger.cpu_mut(tid).record(
                            EnergyCategory::Compute,
                            f.duration,
                            self.p_compute,
                        );
                        t += f.duration;
                        flushed = (f.lines as u64, f.duration);
                    }
                    // Ideal configuration (§5.1): "no flushing overhead for
                    // any low-power sleep state" — neither the flush time
                    // nor the post-flush upgrade misses are charged, so the
                    // cache state is left untouched.
                    self.emit(
                        tid,
                        now,
                        TraceEventKind::Flush {
                            episode: step as u64,
                            pc: pc.as_u64(),
                            lines: flushed.0,
                            duration: flushed.1,
                        },
                    );
                }
                // The sleep() call programs the cache controller with the
                // flag address: read the flag in (registering as sharer so
                // the release invalidation reaches this node).
                self.mem.read(node, self.flag_addr, t);
                self.procs[tid].watcher_armed = wakeup.external;
                // Entry transition.
                let st = self.algo.policy().state(state);
                let entry_latency = st.transition_latency();
                let p_sleep = st.power_watts(self.cfg.power.tdp_max());
                self.ledger.cpu_mut(tid).record_transition_tagged(
                    entry_latency,
                    self.p_compute,
                    p_sleep,
                    step as u64,
                );
                self.emit(
                    tid,
                    t,
                    TraceEventKind::SleepStart {
                        episode: step as u64,
                        pc: pc.as_u64(),
                        state: state.index() as u32,
                        needs_flush,
                    },
                );
                let entry_end = t + entry_latency;
                self.procs[tid].state = ProcState::EnteringSleep {
                    state,
                    wake_pending: false,
                };
                self.queue
                    .schedule(entry_end, Event::TransitionDone { tid });
                if let Some(at) = wakeup.internal_at {
                    let id = self
                        .queue
                        .schedule(at.max(now), Event::TimerFired { tid, episode: step });
                    self.procs[tid].timer = Some(id);
                }
                self.counts.sleeps_by_state[state.index()] += 1;
                self.arm_guard(tid, step, now, decision.predicted_stall);
            }
        }
    }

    fn on_last_arrival(&mut self, tid: usize, now: Cycles) {
        let node = self.node(tid);
        let step = self.procs[tid].step;
        let pc = self.pc_of(step);
        self.emit(
            tid,
            now,
            TraceEventKind::Arrival {
                episode: step as u64,
                pc: pc.as_u64(),
                last: true,
            },
        );
        let release = self.algo.on_last_arrival(ThreadId::new(tid), pc, now);
        if release.update == tb_core::UpdateOutcome::SkippedInordinate {
            self.counts.updates_skipped += 1;
        }
        match release.quarantine {
            Some(true) => self.fault_summary.quarantine_entries += 1,
            Some(false) => self.fault_summary.quarantine_exits += 1,
            None => {}
        }
        self.episode_bits[step] = release.measured_bit;
        self.released[step] = true;
        self.episode_release[step] = now;
        // Flip the flag: the coherence protocol invalidates every sharer.
        // Under a fault plan the substrate may drop or delay some of the
        // resulting wake-up signals; attribute those injections now.
        let write = self.mem.write(node, self.flag_addr, now);
        if self.injector.is_some() {
            for rec in self.mem.drain_fault_log() {
                let fault = match rec.kind {
                    tb_mem::InvalidationFaultKind::Lost => FaultKind::LostWakeup,
                    tb_mem::InvalidationFaultKind::Delayed(_) => FaultKind::DelayedWakeup,
                };
                self.fault_summary.record(fault);
                self.emit(
                    rec.node.index(),
                    rec.at,
                    TraceEventKind::FaultInjected {
                        episode: step as u64,
                        pc: pc.as_u64(),
                        fault,
                    },
                );
            }
        }
        self.episode_flip_done[step] = write.completion;
        let obs = self.cfg.observed_thread;
        let observed_compute = self.trace.steps[step].compute[obs];
        self.instances.push(InstanceRecord {
            pc: pc.as_u64(),
            site_instance: release.instance,
            episode: step,
            release_time: write.completion,
            bit: release.measured_bit,
            observed_compute,
            observed_bst: release.measured_bit.saturating_sub(observed_compute),
        });
        // Deliver external wake-up signals.
        for inv in &write.invalidations {
            debug_assert_eq!(inv.line, self.flag_line);
            let target = inv.node.index();
            match self.procs[target].state {
                ProcState::Spinning { .. } => {
                    self.queue.schedule(
                        inv.at + SPIN_GRAIN,
                        Event::Observe {
                            tid: target,
                            episode: step,
                        },
                    );
                }
                ProcState::ExitingSleep => {
                    // Already waking (first-wins); if a residual spin
                    // follows, it schedules its own observation from the
                    // recorded flip time.
                }
                ProcState::Sleeping { state, since } => {
                    if self.procs[target].watcher_armed {
                        self.begin_exit(target, state, since, inv.at);
                        self.counts.external_wakeups += 1;
                        self.emit(
                            target,
                            inv.at,
                            TraceEventKind::ExternalWake {
                                episode: step as u64,
                                pc: pc.as_u64(),
                            },
                        );
                    }
                }
                ProcState::EnteringSleep { state, .. } => {
                    if self.procs[target].watcher_armed {
                        self.procs[target].state = ProcState::EnteringSleep {
                            state,
                            wake_pending: true,
                        };
                        self.counts.external_wakeups += 1;
                        self.emit(
                            target,
                            inv.at,
                            TraceEventKind::ExternalWake {
                                episode: step as u64,
                                pc: pc.as_u64(),
                            },
                        );
                    }
                }
                ProcState::Yielded { since } => {
                    // The barrier is released, but the thread lacks a CPU
                    // until the next scheduling-quantum boundary (§3.4.1:
                    // "the barrier may be released but some threads may
                    // not be able to resume execution").
                    let ts = self.cfg.time_sharing.expect("yielded implies time-sharing");
                    let waited = inv.at.saturating_sub(since).as_u64();
                    let quanta = waited / ts.quantum.as_u64() + 1;
                    let resume = since + ts.quantum * quanta;
                    self.queue.schedule(
                        resume,
                        Event::Observe {
                            tid: target,
                            episode: step,
                        },
                    );
                }
                ProcState::Computing | ProcState::Done => {
                    // A stale sharer; nothing to wake.
                }
            }
        }
        // The releaser departs as soon as its write completes.
        self.depart(tid, write.completion, write.completion);
    }

    fn on_timer(&mut self, tid: usize, episode: usize, now: Cycles) {
        if self.procs[tid].step != episode {
            return; // stale timer from a previous episode
        }
        self.procs[tid].timer = None;
        let wake = TraceEventKind::InternalWake {
            episode: episode as u64,
            pc: self.trace.steps[episode].pc,
        };
        match self.procs[tid].state {
            ProcState::Sleeping { state, since } => {
                self.begin_exit(tid, state, since, now);
                self.counts.internal_wakeups += 1;
                self.emit(tid, now, wake);
            }
            ProcState::EnteringSleep { state, .. } => {
                // The timer expired before the entry transition finished:
                // exit immediately afterwards.
                self.procs[tid].state = ProcState::EnteringSleep {
                    state,
                    wake_pending: true,
                };
                self.counts.internal_wakeups += 1;
                self.emit(tid, now, wake);
            }
            _ => {}
        }
    }

    /// Starts the exit transition at `at`, accounting the completed sleep
    /// residency.
    fn begin_exit(&mut self, tid: usize, state: SleepStateId, since: Cycles, at: Cycles) {
        if let Some(timer) = self.procs[tid].timer.take() {
            self.queue.cancel(timer);
        }
        // Fault (c): this exit transition may oversleep — stall past the
        // state's rated latency.
        let oversleep = self
            .injector
            .as_mut()
            .and_then(FaultInjector::oversleep_extra);
        if oversleep.is_some() {
            self.fault_summary.record(FaultKind::Oversleep);
            let episode = self.procs[tid].step;
            self.emit(
                tid,
                at,
                TraceEventKind::FaultInjected {
                    episode: episode as u64,
                    pc: self.trace.steps[episode].pc,
                    fault: FaultKind::Oversleep,
                },
            );
        }
        let st = self.algo.policy().state(state);
        let p_sleep = st.power_watts(self.cfg.power.tdp_max());
        let exit_latency = match oversleep {
            Some(extra) => st.stalled_exit(extra),
            None => st.transition_latency(),
        };
        self.ledger
            .cpu_mut(tid)
            .record(EnergyCategory::Sleep, at.saturating_sub(since), p_sleep);
        let episode = self.procs[tid].step as u64;
        self.ledger.cpu_mut(tid).record_transition_tagged(
            exit_latency,
            p_sleep,
            self.p_compute,
            episode,
        );
        self.procs[tid].state = ProcState::ExitingSleep;
        self.queue
            .schedule(at + exit_latency, Event::TransitionDone { tid });
    }

    fn on_transition_done(&mut self, tid: usize, now: Cycles) {
        match self.procs[tid].state {
            ProcState::EnteringSleep {
                state,
                wake_pending,
            } => {
                if wake_pending {
                    // Woken (externally or by an immediate timer) during
                    // entry: zero residency, exit right away.
                    self.begin_exit(tid, state, now, now);
                } else {
                    self.procs[tid].state = ProcState::Sleeping { state, since: now };
                    if let Some(rng) = &mut self.false_wake_rng {
                        let (p, _) = self.cfg.false_wakeup.expect("rng implies config");
                        if rng.chance(p) {
                            // A spurious wake lands some tens of µs into
                            // the residency (if the CPU is already awake by
                            // then, the stale-event guards drop it).
                            let delay = Cycles::from_nanos(
                                rng.exponential(30_000.0).round().max(1.0) as u64,
                            );
                            let episode = self.procs[tid].step;
                            self.queue
                                .schedule(now + delay, Event::FalseWake { tid, episode });
                        }
                    }
                }
            }
            ProcState::ExitingSleep => {
                // CPU is back up. Residual check of the flag (§3.3.1): the
                // release is observable only from the semantic release
                // (the last thread's check-in) onward.
                let step = self.procs[tid].step;
                if self.released[step] && now >= self.episode_release[step] {
                    let node = self.node(tid);
                    let access = self.mem.read(node, self.flag_addr, now);
                    // The wake-up timestamp annotated for §3.3.3 is the
                    // moment the CPU came back up.
                    if now > self.episode_release[step] {
                        self.counts.late_wakeups += 1;
                    }
                    self.depart(tid, now, access.completion);
                } else {
                    // Early wake-up: residual spin until the release.
                    self.counts.early_wakeups += 1;
                    self.emit(
                        tid,
                        now,
                        TraceEventKind::ResidualSpin {
                            episode: step as u64,
                            pc: self.trace.steps[step].pc,
                        },
                    );
                    self.procs[tid].state = ProcState::Spinning { since: now };
                    if self.released[step] {
                        // The release is already in flight (it was issued
                        // while this CPU was mid-transition), so no future
                        // invalidation will target this thread: observe
                        // once the flip's propagation completes.
                        let at = now.max(self.episode_flip_done[step]) + SPIN_GRAIN;
                        self.queue
                            .schedule(at, Event::Observe { tid, episode: step });
                    } else {
                        // The release is still ahead, and under a fault
                        // plan its wake-up signal may be dropped: the
                        // residual spin needs its own watchdog.
                        self.arm_guard(tid, step, now, None);
                    }
                }
            }
            _ => unreachable!("TransitionDone in a non-transition state"),
        }
    }

    /// The watchdog fired (fault runs only). If the barrier released but
    /// this thread is still waiting — its wake-up signal was lost, or the
    /// delivery is grossly late — force the recovery path; otherwise the
    /// barrier is simply long, so re-arm and keep waiting.
    fn on_guard_timer(&mut self, tid: usize, episode: usize, now: Cycles) {
        if self.procs[tid].step != episode {
            return; // stale guard from a departed episode
        }
        let pc = self.trace.steps[episode].pc;
        // Fault (e): the firing guard may wedge — it neither rescues nor
        // re-arms, killing the last recovery path for this thread. The
        // harness-level watchdog, not the barrier, must catch what follows.
        if self
            .injector
            .as_mut()
            .is_some_and(FaultInjector::wedge_guard)
        {
            self.fault_summary.record(FaultKind::WedgedGuard);
            self.emit(
                tid,
                now,
                TraceEventKind::FaultInjected {
                    episode: episode as u64,
                    pc,
                    fault: FaultKind::WedgedGuard,
                },
            );
            return;
        }
        let released = self.released[episode];
        let recovery = TraceEventKind::GuardRecovery {
            episode: episode as u64,
            pc,
            slept: !matches!(self.procs[tid].state, ProcState::Spinning { .. }),
        };
        match self.procs[tid].state {
            ProcState::Spinning { .. } => {
                if released {
                    // The spinner never observed the flipped flag: its
                    // invalidation was dropped. Re-read the flag now.
                    self.fault_summary.guard_recoveries += 1;
                    self.emit(tid, now, recovery);
                    self.queue
                        .schedule(now + SPIN_GRAIN, Event::Observe { tid, episode });
                } else {
                    self.rearm_guard(tid, episode, now);
                }
            }
            ProcState::Sleeping { state, since } => {
                if released {
                    self.fault_summary.guard_recoveries += 1;
                    self.emit(tid, now, recovery);
                    self.begin_exit(tid, state, since, now);
                } else {
                    self.rearm_guard(tid, episode, now);
                }
            }
            ProcState::EnteringSleep { state, .. } => {
                if released {
                    self.fault_summary.guard_recoveries += 1;
                    self.emit(tid, now, recovery);
                    self.procs[tid].state = ProcState::EnteringSleep {
                        state,
                        wake_pending: true,
                    };
                } else {
                    self.rearm_guard(tid, episode, now);
                }
            }
            ProcState::ExitingSleep => {
                // Already waking; the transition's completion departs or
                // re-arms (residual spin). Keep the watchdog alive in case
                // that path stalls again.
                self.rearm_guard(tid, episode, now);
            }
            ProcState::Computing | ProcState::Yielded { .. } | ProcState::Done => {}
        }
    }

    /// Re-arms the watchdog one interval further out.
    fn rearm_guard(&mut self, tid: usize, episode: usize, now: Cycles) {
        let at = now + self.procs[tid].guard_interval;
        self.queue.schedule(at, Event::GuardTimer { tid, episode });
    }

    /// The §3.4.1 spin budget expired: hand the CPU to another process.
    fn on_yield_now(&mut self, tid: usize, episode: usize, now: Cycles) {
        if self.procs[tid].step != episode {
            return;
        }
        if let ProcState::Spinning { since } = self.procs[tid].state {
            self.ledger.cpu_mut(tid).record(
                EnergyCategory::Spin,
                now.saturating_sub(since),
                self.p_spin,
            );
            self.procs[tid].state = ProcState::Yielded { since: now };
        }
    }

    /// A spurious wake-up signal (§3.3.1's false wake-up). If the CPU is
    /// still asleep with its watcher armed, it wakes; the residual spin
    /// after the exit keeps the barrier correct — "suboptimal but correct".
    fn on_false_wake(&mut self, tid: usize, episode: usize, now: Cycles) {
        if self.procs[tid].step != episode {
            return;
        }
        if let ProcState::Sleeping { state, since } = self.procs[tid].state {
            if self.procs[tid].watcher_armed {
                self.counts.false_wakeups += 1;
                self.emit(
                    tid,
                    now,
                    TraceEventKind::FalseWake {
                        episode: episode as u64,
                        pc: self.trace.steps[episode].pc,
                    },
                );
                self.begin_exit(tid, state, since, now);
            }
        }
    }

    fn on_observe(&mut self, tid: usize, episode: usize, now: Cycles) {
        // A spinner (initial or residual) sees the invalidated flag, misses,
        // and fetches the flipped value. The event may be stale: the thread
        // can have departed through the exit-transition path (or even be
        // busy with a later episode) by the time it pops.
        if self.procs[tid].step != episode {
            return;
        }
        match self.procs[tid].state {
            ProcState::Spinning { since } => {
                let node = self.node(tid);
                let access = self.mem.read(node, self.flag_addr, now);
                self.ledger.cpu_mut(tid).record(
                    EnergyCategory::Spin,
                    access.completion.saturating_sub(since),
                    self.p_spin,
                );
                self.depart(tid, access.completion, access.completion);
            }
            ProcState::Yielded { since } => {
                // The quantum boundary arrived: the CPU comes back to this
                // thread. The yielded window costs this application no
                // energy (another process used the core usefully); it is
                // accounted as zero-power Sleep time.
                let node = self.node(tid);
                self.ledger.cpu_mut(tid).record(
                    EnergyCategory::Sleep,
                    now.saturating_sub(since),
                    0.0,
                );
                let access = self.mem.read(node, self.flag_addr, now);
                self.depart(tid, access.completion, access.completion);
            }
            _ => {
                // Still exiting; the TransitionDone path will depart.
            }
        }
    }

    /// Thread `tid` is awake, the barrier released: run the §3.2.1/§3.3.3
    /// bookkeeping and move on to the next phase.
    fn depart(&mut self, tid: usize, wake_ts: Cycles, depart_time: Cycles) {
        // Every departure is forward progress for the livelock watchdog.
        self.events_since_progress = 0;
        let step = self.procs[tid].step;
        let pc = self.pc_of(step);
        let finish = self.algo.finish_barrier(ThreadId::new(tid), pc, wake_ts);
        if finish.disabled {
            self.counts.cutoff_disables += 1;
        }
        self.emit(
            tid,
            depart_time,
            TraceEventKind::Depart {
                episode: step as u64,
                pc: pc.as_u64(),
                wake_latency: wake_ts.saturating_sub(self.episode_release[step]),
            },
        );
        if let Some(predicted) = self.procs[tid].predicted_bit.take() {
            let actual = self.episode_bits[step].as_u64() as f64;
            if actual > 0.0 {
                let err = (predicted.as_u64() as f64 - actual).abs() / actual;
                self.prediction_error.push(err);
            }
        }
        self.procs[tid].watcher_armed = false;
        self.procs[tid].depart_time = depart_time;
        self.procs[tid].step += 1;
        if self.procs[tid].step < self.trace.steps.len() {
            self.procs[tid].state = ProcState::Computing;
            let dur = self.trace.steps[self.procs[tid].step].compute[tid];
            self.queue
                .schedule(depart_time + dur, Event::ComputeDone { tid });
        } else {
            self.procs[tid].state = ProcState::Done;
        }
    }
}

/// Builds a [`BarrierAlgorithm`] and runs `trace` under it in one call.
pub fn simulate(
    cfg: SimulatorConfig,
    trace: &AppTrace,
    algo_cfg: AlgorithmConfig,
    oracle: Option<tb_core::RecordedBitOracle>,
) -> RunReport {
    simulate_faulted(cfg, trace, algo_cfg, oracle).0
}

/// Like [`simulate`], but also returns the run's [`FaultSummary`] — the
/// injected-fault/recovery side-channel for fault-matrix sweeps. With no
/// (or a disabled) fault plan the summary is all zeros and the report is
/// byte-identical to [`simulate`]'s.
pub fn simulate_faulted(
    cfg: SimulatorConfig,
    trace: &AppTrace,
    algo_cfg: AlgorithmConfig,
    oracle: Option<tb_core::RecordedBitOracle>,
) -> (RunReport, FaultSummary) {
    match try_simulate_faulted(cfg, trace, algo_cfg, oracle) {
        Ok(out) => out,
        Err(d) => panic!("simulation livelocked: {d}"),
    }
}

/// Like [`simulate_faulted`], but a tripped livelock watchdog returns
/// [`LivelockDiagnostics`] instead of panicking — the form the harness's
/// supervision layer consumes to report a cell as livelocked.
pub fn try_simulate_faulted(
    cfg: SimulatorConfig,
    trace: &AppTrace,
    algo_cfg: AlgorithmConfig,
    oracle: Option<tb_core::RecordedBitOracle>,
) -> Result<(RunReport, FaultSummary), LivelockDiagnostics> {
    let mut algo = BarrierAlgorithm::new(algo_cfg, trace.threads);
    if let Some(oracle) = oracle {
        algo.install_oracle(oracle);
    }
    Simulator::new(cfg, trace.clone(), algo).try_run_with_faults()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_core::AlgorithmConfig;
    use tb_workloads::{AppSpec, PhaseSpec, Variability};

    fn tiny_app(iterations: u32, base_us: u64, imbalance: f64) -> AppSpec {
        AppSpec {
            name: "Tiny".into(),
            problem_size: "test".into(),
            target_imbalance: imbalance,
            setup_phases: vec![],
            loop_phases: vec![PhaseSpec::new(
                0x10,
                Cycles::from_micros(base_us),
                16,
                Variability::Stable { jitter: 0.0 },
            )],
            iterations,
            skew: 2.0,
        }
    }

    fn cfg(name: &str) -> SimulatorConfig {
        SimulatorConfig {
            machine: MachineConfig::table1_with_nodes(16),
            power: PowerModel::paper(),
            observed_thread: 3,
            config_name: name.into(),
            false_wakeup: None,
            time_sharing: None,
            bus: None,
            faults: None,
            trace: SinkHandle::disabled(),
            progress_budget: Some(DEFAULT_PROGRESS_BUDGET),
        }
    }

    #[test]
    fn baseline_run_completes_and_accounts_time() {
        let trace = tiny_app(10, 1000, 0.20).generate(16, 1);
        let r = simulate(cfg("Baseline"), &trace, AlgorithmConfig::baseline(), None);
        assert_eq!(r.counts.episodes, 10);
        assert!(r.wall_time >= trace.ideal_duration());
        // Spin time exists and sleeps do not.
        assert!(r.time()[EnergyCategory::Spin] > 0.0);
        assert_eq!(r.time()[EnergyCategory::Sleep], 0.0);
        assert_eq!(r.time()[EnergyCategory::Transition], 0.0);
        assert_eq!(r.counts.total_sleeps(), 0);
    }

    #[test]
    fn baseline_imbalance_matches_trace_calibration() {
        let trace = tiny_app(20, 2000, 0.20).generate(16, 2);
        let r = simulate(cfg("Baseline"), &trace, AlgorithmConfig::baseline(), None);
        let measured = r.barrier_imbalance();
        assert!(
            (measured - trace.analytic_imbalance()).abs() < 0.02,
            "simulated imbalance {measured} vs analytic {}",
            trace.analytic_imbalance()
        );
    }

    #[test]
    fn thrifty_sleeps_after_warmup_and_saves_energy() {
        let trace = tiny_app(12, 3000, 0.30).generate(16, 3);
        let base = simulate(cfg("Baseline"), &trace, AlgorithmConfig::baseline(), None);
        let thrifty = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        assert!(thrifty.counts.total_sleeps() > 0, "threads slept");
        assert!(
            thrifty.total_energy() < base.total_energy(),
            "thrifty {} should beat baseline {}",
            thrifty.total_energy(),
            base.total_energy()
        );
        // Performance stays close (hybrid wake-up).
        assert!(
            thrifty.slowdown_vs(&base) < 0.05,
            "slowdown {}",
            thrifty.slowdown_vs(&base)
        );
    }

    #[test]
    fn warmup_instance_never_sleeps() {
        let trace = tiny_app(1, 3000, 0.30).generate(16, 4);
        let r = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        assert_eq!(r.counts.total_sleeps(), 0, "single instance = warm-up only");
        assert_eq!(r.counts.spins, 15);
    }

    #[test]
    fn hybrid_exercises_both_wakeup_paths_with_bounded_cost() {
        // Even a "stable" workload's interval is a max-statistic over the
        // threads' draws, so last-value prediction errs symmetrically by a
        // few tens of µs: underpredictions wake internally (then spin a
        // little), overpredictions are bounded by the external signal.
        let trace = tiny_app(15, 3000, 0.30).generate(16, 5);
        let base = simulate(cfg("Baseline"), &trace, AlgorithmConfig::baseline(), None);
        let r = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        assert!(r.counts.internal_wakeups > 0, "timer path fires");
        assert!(r.counts.external_wakeups > 0, "invalidation path fires");
        assert_eq!(
            r.counts.internal_wakeups + r.counts.external_wakeups,
            r.counts.total_sleeps(),
            "every sleep ends in exactly one wake-up"
        );
        assert!(
            r.prediction_error.mean() < 0.10,
            "last-value is accurate here (mean relative error {})",
            r.prediction_error.mean()
        );
        assert!(
            r.slowdown_vs(&base) < 0.03,
            "external bound keeps the penalty small (got {})",
            r.slowdown_vs(&base)
        );
    }

    #[test]
    fn deterministic_runs() {
        let trace = tiny_app(8, 2000, 0.25).generate(16, 6);
        let a = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        let b = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.total_energy(), b.total_energy());
        assert_eq!(a.counts.internal_wakeups, b.counts.internal_wakeups);
    }

    #[test]
    fn every_cpu_accounts_nearly_all_wall_time() {
        let trace = tiny_app(10, 2000, 0.25).generate(16, 7);
        let r = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        let wall = r.wall_time.as_u64() as f64;
        for (tid, cpu) in r.ledger.iter().enumerate() {
            let accounted = cpu.total_time();
            assert!(
                accounted <= wall * 1.001,
                "cpu {tid} accounted {accounted} > wall {wall}"
            );
            assert!(
                accounted >= wall * 0.97,
                "cpu {tid} accounted only {accounted} of {wall}"
            );
        }
    }

    #[test]
    fn instances_record_every_episode_in_order() {
        let trace = tiny_app(9, 1500, 0.2).generate(16, 8);
        let r = simulate(cfg("Baseline"), &trace, AlgorithmConfig::baseline(), None);
        assert_eq!(r.instances.len(), 9);
        for (i, inst) in r.instances.iter().enumerate() {
            assert_eq!(inst.episode, i);
            assert_eq!(inst.site_instance, i as u64);
            assert_eq!(inst.pc, 0x10);
            assert_eq!(inst.bit, inst.observed_compute + inst.observed_bst);
        }
        // Release times strictly increase.
        for w in r.instances.windows(2) {
            assert!(w[0].release_time < w[1].release_time);
        }
    }

    #[test]
    fn oracle_outperforms_last_value_on_unstable_workload() {
        // A swinging workload: last-value mispredicts, the oracle does not.
        let mut app = tiny_app(30, 2000, 0.25);
        app.loop_phases[0].variability = Variability::Swing {
            low_scale: 0.1,
            low_prob: 0.5,
            jitter: 0.0,
        };
        let trace = app.generate(16, 9);
        let base = simulate(cfg("Baseline"), &trace, AlgorithmConfig::baseline(), None);
        let mut oracle = tb_core::RecordedBitOracle::new();
        for inst in &base.instances {
            oracle.record(BarrierPc::new(inst.pc), inst.site_instance, inst.bit);
        }
        let lv = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        let ideal = simulate(cfg("Ideal"), &trace, AlgorithmConfig::ideal(), Some(oracle));
        assert!(ideal.total_energy() <= lv.total_energy() * 1.001);
        assert!(
            ideal.slowdown_vs(&base) < 0.01,
            "oracle never mispredicts: slowdown {}",
            ideal.slowdown_vs(&base)
        );
    }

    #[test]
    fn deep_sleep_triggers_flushes() {
        let trace = tiny_app(12, 5000, 0.35).generate(16, 10);
        let r = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        assert!(
            r.counts.flushes > 0,
            "long stalls pick non-snoopable states"
        );
        assert!(r.counts.flushed_lines > 0);
    }

    #[test]
    fn halt_only_never_flushes() {
        let trace = tiny_app(12, 5000, 0.35).generate(16, 11);
        let r = simulate(
            cfg("Thrifty-Halt"),
            &trace,
            AlgorithmConfig::thrifty_halt(),
            None,
        );
        assert!(r.counts.total_sleeps() > 0);
        assert_eq!(r.counts.flushes, 0, "Halt snoops; no flush needed");
    }

    #[test]
    fn bus_substrate_runs_the_same_protocol() {
        // The machine executes unchanged on the snooping-bus SMP: same
        // barrier protocol, broadcast invalidations as wake-ups.
        let trace = tiny_app(10, 3000, 0.30).generate(16, 50);
        let mut bus_cfg = cfg("Baseline");
        bus_cfg.bus = Some(tb_mem::BusConfig::smp(16));
        let base_bus = simulate(bus_cfg.clone(), &trace, AlgorithmConfig::baseline(), None);
        assert_eq!(base_bus.counts.episodes, 10);
        let mut thrifty_bus = cfg("Thrifty");
        thrifty_bus.bus = Some(tb_mem::BusConfig::smp(16));
        let t = simulate(thrifty_bus, &trace, AlgorithmConfig::thrifty(), None);
        assert_eq!(t.counts.episodes, 10);
        assert!(t.counts.total_sleeps() > 0);
        assert!(
            t.total_energy() < base_bus.total_energy(),
            "thrifty saves on the bus too"
        );
        assert!(t.slowdown_vs(&base_bus) < 0.05);
        // Both substrates execute the identical episode structure.
        let dir = simulate(cfg("Baseline"), &trace, AlgorithmConfig::baseline(), None);
        assert_eq!(base_bus.counts.episodes, dir.counts.episodes);
    }

    #[test]
    fn time_sharing_saves_energy_but_hurts_performance() {
        // §3.4.1: "unless scheduling is carefully planned, time-sharing may
        // hurt performance significantly … the barrier may be released but
        // some threads may not be able to resume execution because they
        // lack a CPU."
        let trace = tiny_app(10, 3000, 0.30).generate(16, 40);
        let base = simulate(cfg("Baseline"), &trace, AlgorithmConfig::baseline(), None);
        let mut ts_cfg = cfg("TimeSharing");
        ts_cfg.time_sharing = Some(TimeSharing {
            spin_before_yield: Cycles::from_micros(50),
            quantum: Cycles::from_millis(10),
        });
        let ts = simulate(ts_cfg, &trace, AlgorithmConfig::baseline(), None);
        assert_eq!(ts.counts.episodes, 10, "time-sharing is still correct");
        assert!(
            ts.total_energy() < base.total_energy(),
            "yielded cores cost this app nothing"
        );
        assert!(
            ts.slowdown_vs(&base) > 0.10,
            "coarse quanta must hurt: slowdown {}",
            ts.slowdown_vs(&base)
        );
        // Thrifty achieves savings *without* that penalty — the paper's
        // §3.4.1 contrast.
        let thrifty = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        assert!(thrifty.slowdown_vs(&base) < 0.02);
    }

    #[test]
    fn time_sharing_with_fine_quanta_behaves() {
        let trace = tiny_app(8, 2000, 0.25).generate(16, 41);
        let mut ts_cfg = cfg("TimeSharing");
        ts_cfg.time_sharing = Some(TimeSharing {
            spin_before_yield: Cycles::from_micros(20),
            quantum: Cycles::from_micros(100),
        });
        let base = simulate(cfg("Baseline"), &trace, AlgorithmConfig::baseline(), None);
        let ts = simulate(ts_cfg, &trace, AlgorithmConfig::baseline(), None);
        assert_eq!(ts.counts.episodes, 8);
        assert!(
            ts.slowdown_vs(&base) < 0.05,
            "fine quanta bound the resume lag: {}",
            ts.slowdown_vs(&base)
        );
    }

    #[test]
    fn false_wakeups_are_absorbed_by_residual_spin() {
        // §3.3.1: a false wake-up leaves the thread "spinning on the flag
        // for the duration of the barrier" — suboptimal but correct. Force
        // a spurious wake in every sleep episode and check correctness.
        let trace = tiny_app(12, 3000, 0.30).generate(16, 30);
        let mut c = cfg("Thrifty");
        c.false_wakeup = Some((1.0, 99));
        let r = simulate(c, &trace, AlgorithmConfig::thrifty(), None);
        assert_eq!(r.counts.episodes, 12, "all barriers complete");
        assert!(r.counts.false_wakeups > 0, "spurious wakes injected");
        let clean = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        assert!(
            r.ledger.energy()[EnergyCategory::Spin] >= clean.ledger.energy()[EnergyCategory::Spin],
            "false wakes cost residual spin energy"
        );
        // Execution remains essentially as fast (spinning threads still
        // observe the release promptly).
        assert!(r.slowdown_vs(&clean) < 0.01);
    }

    #[test]
    fn false_wakeup_rate_zero_is_identical() {
        let trace = tiny_app(8, 2000, 0.25).generate(16, 31);
        let mut c = cfg("Thrifty");
        c.false_wakeup = Some((0.0, 1));
        let a = simulate(c, &trace, AlgorithmConfig::thrifty(), None);
        let b = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.counts.false_wakeups, 0);
    }

    #[test]
    fn all_wakeup_modes_run_to_completion() {
        // Regression guard: a thread whose entry transition straddles the
        // release must still wake under every mode (external-only once
        // deadlocked here when the wake-pending branch was shadowed).
        use tb_core::WakeupMode;
        let trace = tiny_app(14, 2500, 0.30).generate(16, 21);
        for mode in [
            WakeupMode::ExternalOnly,
            WakeupMode::InternalOnly,
            WakeupMode::Hybrid,
        ] {
            let algo_cfg = AlgorithmConfig::thrifty().with_wakeup(mode);
            let r = simulate(cfg("mode"), &trace, algo_cfg, None);
            assert_eq!(r.counts.episodes, 14, "{mode} must complete");
            assert!(r.counts.total_sleeps() > 0, "{mode} slept");
            match mode {
                WakeupMode::ExternalOnly => {
                    assert_eq!(r.counts.internal_wakeups, 0);
                    assert!(r.counts.external_wakeups > 0);
                }
                WakeupMode::InternalOnly => {
                    assert_eq!(r.counts.external_wakeups, 0);
                    assert!(r.counts.internal_wakeups > 0);
                }
                WakeupMode::Hybrid => {
                    assert!(r.counts.internal_wakeups + r.counts.external_wakeups > 0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "machine has")]
    fn too_many_threads_rejected() {
        let trace = tiny_app(2, 100, 0.2).generate(32, 0);
        let algo = BarrierAlgorithm::new(AlgorithmConfig::baseline(), 32);
        let _ = Simulator::new(cfg("x"), trace, algo);
    }

    // ---- fault injection + hardening --------------------------------------

    fn fault_cfg(name: &str, scenario: &str, seed: u64) -> SimulatorConfig {
        SimulatorConfig {
            faults: Some(tb_core::FaultPlan::by_name(scenario, seed).expect("known scenario")),
            ..cfg(name)
        }
    }

    #[test]
    fn disabled_fault_plan_is_byte_identical() {
        // Satellite: fault plumbing must be provably zero-cost when off.
        let trace = tiny_app(12, 3000, 0.30).generate(16, 60);
        let clean = simulate(cfg("Thrifty"), &trace, AlgorithmConfig::thrifty(), None);
        let mut c = cfg("Thrifty");
        c.faults = Some(tb_core::FaultPlan::none());
        let (gated, summary) = simulate_faulted(c, &trace, AlgorithmConfig::thrifty(), None);
        assert_eq!(
            serde::json::to_string(&clean),
            serde::json::to_string(&gated)
        );
        assert_eq!(summary, FaultSummary::default());
    }

    #[test]
    fn every_fault_scenario_terminates() {
        // The acceptance property: under any seeded plan, every episode
        // releases every thread (the watchdog's Ok is the oracle). The
        // `hang` scenario is the deliberate exception — it wedges every
        // guard so the watchdog *must* trip instead of completing.
        let trace = tiny_app(20, 3000, 0.30).generate(16, 61);
        for scenario in tb_core::FaultPlan::scenario_names() {
            for seed in [1u64, 42, 1234] {
                let c = fault_cfg("Thrifty", scenario, seed);
                let algo = AlgorithmConfig::thrifty()
                    .with_quarantine(Some(tb_core::QuarantineConfig::default()));
                if *scenario == "hang" {
                    continue; // covered by hang_scenario_trips_the_watchdog
                }
                let (r, _) = simulate_faulted(c, &trace, algo, None);
                assert_eq!(r.counts.episodes, 20, "{scenario} seed {seed} completes");
            }
        }
    }

    #[test]
    fn hang_scenario_trips_the_watchdog() {
        // External-only wake-ups, lost invalidations, and wedged guards:
        // the first lost signal leaves its thread with no recovery path.
        // The run must end in a typed livelock, never an infinite loop.
        let trace = tiny_app(20, 3000, 0.30).generate(16, 62);
        let algo = AlgorithmConfig::thrifty().with_wakeup(tb_core::WakeupMode::ExternalOnly);
        let c = fault_cfg("Thrifty", "hang", 7);
        let d = try_simulate_faulted(c, &trace, algo, None)
            .expect_err("wedged guards must livelock this run");
        assert!(d.live_threads > 0, "someone is stuck: {d}");
        assert!(
            (d.episode as usize) < trace.steps.len(),
            "stuck episode {} in range",
            d.episode
        );
        // Round-trips for the journal.
        let back: LivelockDiagnostics = serde::json::from_str(&serde::json::to_string(&d)).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn watchdog_budget_bounds_events_without_progress() {
        // A healthy run under an absurdly small budget must trip (sanity
        // check that the counter is actually consulted) …
        let trace = tiny_app(8, 2000, 0.25).generate(16, 65);
        let mut c = cfg("Thrifty");
        c.progress_budget = Some(4);
        let algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 16);
        let d = Simulator::new(c, trace.clone(), algo)
            .try_run_with_faults()
            .expect_err("budget of 4 events cannot reach a departure");
        assert!(d.budget == 4 && d.events_since_progress > 4);
        // … while the default budget never interferes with clean runs
        // (every other test in this module exercises that) and disabling
        // the watchdog restores the unchecked behavior.
        let mut c = cfg("Thrifty");
        c.progress_budget = None;
        let algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 16);
        let (r, _) = Simulator::new(c, trace, algo)
            .try_run_with_faults()
            .expect("clean run completes without a watchdog");
        assert_eq!(r.counts.episodes, 8);
    }

    #[test]
    fn lost_wakeups_are_rescued_by_the_guard_timer() {
        let trace = tiny_app(20, 3000, 0.30).generate(16, 62);
        // External-only wake-ups + lost invalidations: without the guard,
        // sleepers would hang forever.
        let algo = AlgorithmConfig::thrifty().with_wakeup(tb_core::WakeupMode::ExternalOnly);
        let (r, summary) =
            simulate_faulted(fault_cfg("Thrifty", "lost-wakeup", 7), &trace, algo, None);
        assert_eq!(r.counts.episodes, 20);
        assert!(summary.lost_wakeups > 0, "faults actually injected");
        assert!(
            summary.guard_recoveries >= summary.lost_wakeups,
            "every lost signal to a waiter needs a rescue \
             ({} lost, {} recovered)",
            summary.lost_wakeups,
            summary.guard_recoveries
        );
        assert_eq!(
            summary.injected(),
            summary.lost_wakeups,
            "single-class plan"
        );
    }

    #[test]
    fn timer_faults_surface_in_the_summary_and_trace() {
        let trace = tiny_app(20, 3000, 0.30).generate(16, 63);
        let sink = std::sync::Arc::new(tb_trace::MemorySink::new(16, 65536));
        let mut c = fault_cfg("Thrifty", "storm", 11);
        c.trace = SinkHandle::new(sink.clone());
        let algo =
            AlgorithmConfig::thrifty().with_quarantine(Some(tb_core::QuarantineConfig::default()));
        let (r, summary) = simulate_faulted(c, &trace, algo, None);
        assert_eq!(r.counts.episodes, 20);
        assert!(summary.injected() > 0, "storm injects across classes");
        assert!(
            summary.timer_drifts + summary.spurious_timers > 0,
            "timer classes fire"
        );
        assert!(summary.oversleeps > 0, "oversleep fires");
        let counts = tb_trace::TraceKindCounts::from_events(&sink.drain_sorted());
        assert_eq!(counts.faults_injected, summary.injected());
        assert_eq!(counts.guard_recoveries, summary.guard_recoveries);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let trace = tiny_app(15, 3000, 0.30).generate(16, 64);
        let algo = AlgorithmConfig::thrifty();
        let (a, sa) =
            simulate_faulted(fault_cfg("Thrifty", "storm", 5), &trace, algo.clone(), None);
        let (b, sb) = simulate_faulted(fault_cfg("Thrifty", "storm", 5), &trace, algo, None);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(sa, sb);
        let (c, sc) = simulate_faulted(
            fault_cfg("Thrifty", "storm", 6),
            &trace,
            AlgorithmConfig::thrifty(),
            None,
        );
        assert!(a.wall_time != c.wall_time || sa != sc, "seed matters");
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn faults_with_time_sharing_rejected() {
        let trace = tiny_app(2, 100, 0.2).generate(16, 0);
        let mut c = fault_cfg("x", "storm", 1);
        c.time_sharing = Some(TimeSharing {
            spin_before_yield: Cycles::from_micros(50),
            quantum: Cycles::from_millis(10),
        });
        let algo = BarrierAlgorithm::new(AlgorithmConfig::baseline(), 16);
        let _ = Simulator::new(c, trace, algo);
    }
}
