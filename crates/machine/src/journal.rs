//! Crash-consistent sweep journal: append-only JSONL checkpointing for
//! supervised sweeps.
//!
//! A sweep that dies (OOM kill, power loss, ^C) should not have to redo
//! the cells it already finished. The journal is the minimal durable
//! record that makes `sweep --resume` possible (DESIGN.md §11):
//!
//! * **Line 1** is a [`JournalHeader`]: a magic string, the code version
//!   (crate version + journal format revision — a rebuild with different
//!   simulation code invalidates old journals rather than silently mixing
//!   results), and an opaque `params` string describing the sweep's full
//!   cell matrix. Resume refuses a journal whose header does not match.
//! * **Every later line** is a [`CellRecord`]: the cell's content key
//!   ([`CellKey`]: app, config, nodes, seed, fault plan) and its final
//!   [`StoredOutcome`]. One record is appended — `write` + `fsync` — per
//!   *completed* cell, from the harness's `on_complete` hook, so after a
//!   crash the file contains exactly the finished cells plus at most one
//!   torn trailing line.
//! * On resume, a torn (or otherwise unparseable) **trailing** line is
//!   truncated away and re-executed; an unparseable line in the *middle*
//!   of the file is real corruption and fails loudly.
//!
//! Records are keyed by content, not position, so the journal is valid at
//! any `--jobs` level: workers complete cells in nondeterministic order,
//! and resume replays by key while the sweep renders output in cell order
//! — byte-identical to an uninterrupted run.

use crate::harness::{Cell, CellError, CellOutcome};
use crate::report::RunReport;
use serde::{json, Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tb_core::FaultPlan;
use tb_faults::FaultSummary;

/// First header field; identifies the file type.
pub const JOURNAL_MAGIC: &str = "thrifty-barrier-sweep-journal";

/// The version stamp written into every journal header: the crate version
/// plus the journal format revision. Changing either invalidates existing
/// journals on resume.
pub fn code_version() -> String {
    format!("{}+journal-v1", env!("CARGO_PKG_VERSION"))
}

/// The journal's first line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Always [`JOURNAL_MAGIC`].
    pub magic: String,
    /// The writing binary's [`code_version`].
    pub version: String,
    /// Opaque description of the sweep's cell matrix (apps, nodes, seeds,
    /// fault scenario); resume requires an exact match.
    pub params: String,
}

/// The content key of one cell — everything that determines its result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellKey {
    /// Application name.
    pub app: String,
    /// Configuration name.
    pub config: String,
    /// Machine size.
    pub nodes: u16,
    /// Workload seed.
    pub seed: u64,
    /// The injected fault plan, if any.
    pub faults: Option<FaultPlan>,
}

impl CellKey {
    /// The key of a harness cell.
    pub fn of(cell: &Cell) -> CellKey {
        CellKey {
            app: cell.app.name.clone(),
            config: cell.config.name().to_string(),
            nodes: cell.nodes,
            seed: cell.seed,
            faults: cell.faults.clone(),
        }
    }

    /// Canonical string form, used as the replay-map key. JSON via the
    /// derived serializer is canonical here because field order is fixed
    /// and float rendering is shortest-round-trip.
    pub fn canonical(&self) -> String {
        json::to_string(self)
    }
}

/// A [`CellOutcome`] flattened for serialization (`Result` does not
/// serialize; exactly one of `report` / `error` is set).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredOutcome {
    /// The run report of a completed cell.
    pub report: Option<RunReport>,
    /// The final error of a failed cell.
    pub error: Option<CellError>,
    /// Fault-injection tallies.
    pub faults: FaultSummary,
    /// Errors of retried attempts, oldest first.
    pub retries: Vec<CellError>,
}

impl StoredOutcome {
    /// Flattens a harness outcome for storage.
    pub fn from_outcome(outcome: &CellOutcome) -> StoredOutcome {
        let (report, error) = match &outcome.report {
            Ok(report) => (Some(report.clone()), None),
            Err(err) => (None, Some(err.clone())),
        };
        StoredOutcome {
            report,
            error,
            faults: outcome.faults,
            retries: outcome.retries.clone(),
        }
    }

    /// Rebuilds the harness outcome; `None` if the record stored neither a
    /// report nor an error (not produced by this writer).
    pub fn into_outcome(self) -> Option<CellOutcome> {
        let report = match (self.report, self.error) {
            (Some(report), _) => Ok(report),
            (None, Some(err)) => Err(err),
            (None, None) => return None,
        };
        Some(CellOutcome {
            report,
            faults: self.faults,
            retries: self.retries,
        })
    }
}

/// One completed-cell line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRecord {
    /// The cell's content key.
    pub key: CellKey,
    /// Its final outcome.
    pub outcome: StoredOutcome,
}

/// Why a journal could not be created, resumed, or appended to.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The journal's header does not match this sweep (different params)
    /// or this binary (different code version).
    Mismatch {
        /// Which header field disagreed ("magic", "version", "params").
        field: &'static str,
        /// The value stored in the journal.
        journal: String,
        /// The value this run expects.
        current: String,
    },
    /// A non-trailing line failed to parse — the file is damaged beyond
    /// the torn-tail case that truncation repairs.
    Corrupt {
        /// 1-based line number of the damaged record.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Mismatch {
                field,
                journal,
                current,
            } => write!(
                f,
                "journal {field} mismatch: journal has {journal:?}, this sweep expects {current:?}"
            ),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// An open, append-position sweep journal.
#[derive(Debug)]
pub struct SweepJournal {
    file: File,
    path: PathBuf,
}

impl SweepJournal {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// and durably writes the header.
    pub fn create(path: impl AsRef<Path>, params: &str) -> Result<SweepJournal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        let header = JournalHeader {
            magic: JOURNAL_MAGIC.to_string(),
            version: code_version(),
            params: params.to_string(),
        };
        let mut line = json::to_string(&header);
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        Ok(SweepJournal { file, path })
    }

    /// Opens an existing journal for resumption: validates the header
    /// against `params` and the current code version, loads every
    /// completed cell keyed by [`CellKey::canonical`], truncates a torn
    /// trailing line, and leaves the file positioned for appends.
    ///
    /// A record appearing twice (a cell re-run after an earlier resume)
    /// resolves to the latest occurrence.
    pub fn resume(
        path: impl AsRef<Path>,
        params: &str,
    ) -> Result<(SweepJournal, HashMap<String, StoredOutcome>), JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut completed: HashMap<String, StoredOutcome> = HashMap::new();
        let mut header: Option<JournalHeader> = None;
        let mut valid_len = bytes.len();
        let mut lineno = 0usize;
        let mut pos = 0usize;
        while pos < bytes.len() {
            let start = pos;
            let Some(rel) = bytes[pos..].iter().position(|&b| b == b'\n') else {
                // No terminator: the writer died mid-line. Truncate.
                valid_len = start;
                break;
            };
            let end = pos + rel;
            pos = end + 1;
            lineno += 1;
            let is_last = pos >= bytes.len();
            let parsed = std::str::from_utf8(&bytes[start..end])
                .map_err(|e| e.to_string())
                .and_then(|s| {
                    if lineno == 1 {
                        json::from_str::<JournalHeader>(s)
                            .map(Line::Header)
                            .map_err(|e| format!("{e:?}"))
                    } else {
                        json::from_str::<CellRecord>(s)
                            .map(Line::Record)
                            .map_err(|e| format!("{e:?}"))
                    }
                });
            match parsed {
                Ok(Line::Header(h)) => header = Some(h),
                Ok(Line::Record(rec)) => {
                    completed.insert(rec.key.canonical(), rec.outcome);
                }
                Err(message) if is_last && lineno > 1 => {
                    // A complete-looking but unparseable trailing record is
                    // treated like a torn one: drop and re-run that cell.
                    let _ = message;
                    valid_len = start;
                    break;
                }
                Err(message) => {
                    return Err(JournalError::Corrupt {
                        line: lineno,
                        message,
                    })
                }
            }
        }

        let Some(header) = header else {
            return Err(JournalError::Corrupt {
                line: 1,
                message: "missing journal header".to_string(),
            });
        };
        if header.magic != JOURNAL_MAGIC {
            return Err(JournalError::Mismatch {
                field: "magic",
                journal: header.magic,
                current: JOURNAL_MAGIC.to_string(),
            });
        }
        if header.version != code_version() {
            return Err(JournalError::Mismatch {
                field: "version",
                journal: header.version,
                current: code_version(),
            });
        }
        if header.params != params {
            return Err(JournalError::Mismatch {
                field: "params",
                journal: header.params,
                current: params.to_string(),
            });
        }

        if valid_len < bytes.len() {
            file.set_len(valid_len as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((SweepJournal { file, path }, completed))
    }

    /// Durably appends one completed cell: the record line is written and
    /// fsync'd before this returns, so a crash after completion never
    /// loses the cell.
    pub fn append(&mut self, key: &CellKey, outcome: &CellOutcome) -> Result<(), JournalError> {
        let record = CellRecord {
            key: key.clone(),
            outcome: StoredOutcome::from_outcome(outcome),
        };
        let mut line = json::to_string(&record);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// A parsed journal line, alive only for the duration of one `resume`
// scan — the size skew between the two variants never reaches a
// collection.
#[allow(clippy::large_enum_variant)]
enum Line {
    Header(JournalHeader),
    Record(CellRecord),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Cell, Harness};
    use tb_core::SystemConfig;
    use tb_workloads::AppSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tb-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}.jsonl", std::process::id()))
    }

    fn outcome() -> CellOutcome {
        let harness = Harness::serial();
        let cell = Cell::new(
            AppSpec::by_name("FMM").unwrap(),
            8,
            1,
            SystemConfig::Baseline,
        );
        harness.run_cells_isolated(&[cell]).remove(0)
    }

    fn key() -> CellKey {
        CellKey {
            app: "FMM".into(),
            config: "Baseline".into(),
            nodes: 8,
            seed: 1,
            faults: None,
        }
    }

    #[test]
    fn round_trips_completed_and_failed_cells() {
        let path = tmp("round-trip");
        let mut journal = SweepJournal::create(&path, "params-x").unwrap();
        let ok = outcome();
        journal.append(&key(), &ok).unwrap();
        let failed = CellOutcome {
            report: Err(CellError::Timeout { limit_ms: 9 }),
            faults: FaultSummary::default(),
            retries: vec![CellError::Panic("first try".into())],
        };
        let key2 = CellKey { seed: 2, ..key() };
        journal.append(&key2, &failed).unwrap();
        drop(journal);

        let (_journal, map) = SweepJournal::resume(&path, "params-x").unwrap();
        assert_eq!(map.len(), 2);
        let back = map.get(&key().canonical()).unwrap().clone();
        let back = back.into_outcome().unwrap();
        assert_eq!(
            back.report.as_ref().unwrap().wall_time,
            ok.report.as_ref().unwrap().wall_time
        );
        let back2 = map
            .get(&key2.canonical())
            .unwrap()
            .clone()
            .into_outcome()
            .unwrap();
        assert_eq!(
            back2.report.unwrap_err(),
            CellError::Timeout { limit_ms: 9 }
        );
        assert_eq!(back2.retries, vec![CellError::Panic("first try".into())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_trailing_line_is_truncated_not_fatal() {
        let path = tmp("torn-tail");
        let mut journal = SweepJournal::create(&path, "p").unwrap();
        journal.append(&key(), &outcome()).unwrap();
        drop(journal);
        // Simulate a crash mid-append: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"key\":{\"app\":\"FM").unwrap();
        drop(f);

        let before = std::fs::metadata(&path).unwrap().len();
        let (mut journal, map) = SweepJournal::resume(&path, "p").unwrap();
        assert_eq!(map.len(), 1, "the complete record survives");
        assert!(
            std::fs::metadata(&path).unwrap().len() < before,
            "the torn tail was truncated"
        );
        // The repaired journal accepts appends on the clean boundary.
        journal
            .append(&CellKey { seed: 3, ..key() }, &outcome())
            .unwrap();
        drop(journal);
        let (_j, map) = SweepJournal::resume(&path, "p").unwrap();
        assert_eq!(map.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let path = tmp("mid-corrupt");
        let mut journal = SweepJournal::create(&path, "p").unwrap();
        journal.append(&key(), &outcome()).unwrap();
        drop(journal);
        // Damage the record line, then add another valid-looking line so
        // the damage is not trailing.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1].replace("\"key\"", "\"kex\"");
        lines.push(lines[1].clone());
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = SweepJournal::resume(&path, "p").unwrap_err();
        assert!(
            matches!(err, JournalError::Corrupt { line: 2, .. }),
            "got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatches_are_rejected_with_both_values() {
        let path = tmp("mismatch");
        drop(SweepJournal::create(&path, "nodes=8").unwrap());
        let err = SweepJournal::resume(&path, "nodes=64").unwrap_err();
        let JournalError::Mismatch {
            field,
            journal,
            current,
        } = &err
        else {
            panic!("expected mismatch, got {err}");
        };
        assert_eq!(*field, "params");
        assert_eq!(journal, "nodes=8");
        assert_eq!(current, "nodes=64");
        assert!(err.to_string().contains("params mismatch"));

        // A different code version (e.g. an older binary's journal) is
        // also refused.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace(&code_version(), "0.0.0+journal-v0")).unwrap();
        let err = SweepJournal::resume(&path, "nodes=8").unwrap_err();
        assert!(
            matches!(
                err,
                JournalError::Mismatch {
                    field: "version",
                    ..
                }
            ),
            "got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_of_missing_file_is_an_io_error() {
        let err = SweepJournal::resume(tmp("does-not-exist"), "p").unwrap_err();
        assert!(matches!(err, JournalError::Io(_)), "got {err}");
    }

    #[test]
    fn canonical_keys_distinguish_fault_plans() {
        let clean = key();
        let faulted = CellKey {
            faults: tb_core::FaultPlan::by_name("storm", 9),
            ..key()
        };
        assert_ne!(clean.canonical(), faulted.canonical());
        // Canonical form is stable across serialize/deserialize cycles
        // (shortest-round-trip floats re-render identically).
        let back: CellKey = json::from_str(&faulted.canonical()).unwrap();
        assert_eq!(back.canonical(), faulted.canonical());
    }
}
