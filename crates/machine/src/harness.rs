//! Parallel experiment harness with shared trace/oracle caching and
//! supervised execution.
//!
//! The paper's evaluation is a matrix: applications × configurations
//! (× seeds, once replication enters the picture). Every cell is an
//! independent deterministic simulation, which makes the matrix
//! embarrassingly parallel — *except* that cells share expensive inputs:
//!
//! * the generated [`AppTrace`] is identical for every configuration of one
//!   (app, nodes, seed) triple, and
//! * the Oracle-Halt and Ideal configurations both need the Baseline run of
//!   that same triple to build their [`RecordedBitOracle`] (and the
//!   Baseline cell itself *is* that run).
//!
//! [`Harness`] therefore fans cells out across a scoped worker pool while
//! interning both inputs in content-keyed caches: each (app, nodes, seed)
//! generates its trace once and simulates Baseline exactly once, no matter
//! how many configurations, workers, or calls consume it. Results come
//! back in the caller's cell order (workers fill indexed slots, so
//! completion order never shows), which keeps parallel output byte-for-byte
//! identical to a serial run.
//!
//! # Supervision
//!
//! Long fault sweeps must survive individual cells misbehaving, so cells
//! run under a [`SupervisionPolicy`] (see DESIGN.md §11):
//!
//! * a **panicking** cell is caught (`catch_unwind`) and reported as
//!   [`CellError::Panic`] with its message preserved;
//! * a **livelocked** simulation is stopped by the simulator's own
//!   progress watchdog and reported as [`CellError::Livelock`] with
//!   queue/episode diagnostics;
//! * a cell that exceeds the policy's **wall-clock deadline** has its
//!   worker slot abandoned (the thread is left to finish harmlessly — all
//!   shared state is content-keyed and exactly-once) and is reported as
//!   [`CellError::Timeout`];
//! * **transient** failures (panic, timeout) are re-run up to
//!   `policy.retries` times with deterministic, seed-derived exponential
//!   backoff ([`retry_backoff`]); the full failure history lands in
//!   [`CellOutcome::retries`] and each re-run emits a
//!   [`TraceEventKind::CellRetry`] event through the policy's trace sink.
//!   Livelocks are deterministic (same seed → same wedge schedule), so
//!   they are never retried.

use crate::report::{AggregateReport, RunReport};
use crate::run::oracle_from_baseline;
use crate::sim::{simulate, try_simulate_faulted, LivelockDiagnostics, SimulatorConfig};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};
use tb_core::{FaultPlan, QuarantineConfig, RecordedBitOracle, SystemConfig};
use tb_faults::FaultSummary;
use tb_sim::{Cycles, SimRng};
use tb_trace::{SinkHandle, TraceEvent, TraceEventKind};
use tb_workloads::{AppSpec, AppTrace};

/// One cell of the experiment matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The application to simulate.
    pub app: AppSpec,
    /// Machine size (power of two in `2..=64`).
    pub nodes: u16,
    /// Workload seed.
    pub seed: u64,
    /// The barrier system configuration.
    pub config: SystemConfig,
    /// Fault plan injected into this cell's simulation (`None`, or a
    /// disabled plan, runs the clean simulator path).
    pub faults: Option<FaultPlan>,
}

impl Cell {
    /// Creates a fault-free cell.
    pub fn new(app: AppSpec, nodes: u16, seed: u64, config: SystemConfig) -> Self {
        Cell {
            app,
            nodes,
            seed,
            config,
            faults: None,
        }
    }

    /// Attaches a fault plan to the cell.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// Why a supervised cell failed to produce a report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CellError {
    /// The simulation panicked; the payload is the panic message.
    Panic(String),
    /// The simulator's progress watchdog declared the run livelocked.
    Livelock(LivelockDiagnostics),
    /// The cell exceeded the supervisor's wall-clock deadline and its
    /// worker slot was abandoned.
    Timeout {
        /// The deadline that was exceeded, in milliseconds.
        limit_ms: u64,
    },
}

impl CellError {
    /// Whether a retry could plausibly succeed. Panics and timeouts are
    /// treated as transient (OOM, scheduling jitter, host interference);
    /// livelocks are deterministic — the same seed wedges the same guard
    /// timers — so retrying one only wastes the budget.
    pub fn is_transient(&self) -> bool {
        matches!(self, CellError::Panic(_) | CellError::Timeout { .. })
    }

    /// Short machine-readable class name ("panic" / "livelock" /
    /// "timeout").
    pub fn kind(&self) -> &'static str {
        match self {
            CellError::Panic(_) => "panic",
            CellError::Livelock(_) => "livelock",
            CellError::Timeout { .. } => "timeout",
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panic(msg) => write!(f, "panic: {msg}"),
            CellError::Livelock(d) => write!(f, "livelock: {d}"),
            CellError::Timeout { limit_ms } => write!(f, "timeout after {limit_ms} ms"),
        }
    }
}

/// The result of one supervised cell: the report (or the typed error that
/// ended the final attempt) together with its injected-fault/recovery
/// tallies and the errors of every abandoned earlier attempt.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The run report, or the error of the last attempt.
    pub report: Result<RunReport, CellError>,
    /// Fault-injection and recovery tallies for the cell (all zero for
    /// fault-free or failed cells).
    pub faults: FaultSummary,
    /// The error of each failed attempt that was retried, oldest first.
    /// Empty when the first attempt succeeded or the policy allowed no
    /// retries.
    pub retries: Vec<CellError>,
}

impl CellOutcome {
    /// Whether the cell failed to produce a report after all attempts.
    pub fn is_failed(&self) -> bool {
        self.report.is_err()
    }

    /// How many times the cell was attempted (1 = no retries).
    pub fn attempts(&self) -> u32 {
        self.retries.len() as u32 + 1
    }
}

/// How [`Harness::run_cells_supervised`] handles misbehaving cells.
#[derive(Debug, Clone, Default)]
pub struct SupervisionPolicy {
    /// How many times a transiently failed cell (panic, timeout) is re-run
    /// before its error becomes final. `0` (the default) fails fast.
    pub retries: u32,
    /// Per-attempt wall-clock deadline. `None` (the default) waits
    /// indefinitely; `Some` routes execution through the deadline
    /// supervisor, which abandons the worker slot of an attempt that
    /// overruns and records [`CellError::Timeout`].
    pub timeout: Option<Duration>,
    /// Where [`TraceEventKind::CellRetry`] events are emitted. Disabled by
    /// default.
    pub trace: SinkHandle,
}

impl SupervisionPolicy {
    /// Sets the transient-failure retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the per-attempt wall-clock deadline.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches a trace sink for retry events.
    pub fn with_trace(mut self, trace: SinkHandle) -> Self {
        self.trace = trace;
        self
    }
}

/// The deterministic backoff slept before retry number `attempt`
/// (1-based): 50 ms doubling per attempt, capped at 2 s, scaled by a
/// jitter factor in `[0.5, 1.0)` drawn from the cell seed's dedicated
/// `"retry-backoff"` RNG stream — reproducible across runs, decorrelated
/// across cells.
pub fn retry_backoff(seed: u64, attempt: u32) -> Duration {
    const BASE_MS: u64 = 50;
    const CAP_MS: u64 = 2_000;
    let shift = attempt.saturating_sub(1).min(6);
    let nominal = (BASE_MS << shift).min(CAP_MS);
    let mut rng = SimRng::new(seed).derive("retry-backoff", attempt as u64);
    let jitter = 0.5 + 0.5 * rng.uniform();
    Duration::from_millis((nominal as f64 * jitter).round() as u64)
}

/// Renders a `catch_unwind` payload as the human-readable panic message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

/// The Baseline run of one (app, nodes, seed) triple together with the
/// oracle table derived from it — the shared input of the Baseline,
/// Oracle-Halt, and Ideal cells.
#[derive(Debug)]
pub struct BaselineBundle {
    /// The Baseline run report.
    pub report: RunReport,
    /// Perfect BIT prediction recorded from that run.
    pub oracle: RecordedBitOracle,
}

/// Cache key: (app name, nodes, seed). App specs are identified by name —
/// [`AppSpec::splash2`] names are unique, and callers mixing custom specs
/// under one name would already be ambiguous everywhere else.
type Key = (String, u16, u64);

/// A content-keyed exactly-once cache. Each key holds a [`OnceLock`] cell;
/// the first looker-up computes, concurrent ones block on the lock and
/// then share the value, later ones hit.
struct Cache<T> {
    cells: Mutex<HashMap<Key, Arc<OnceLock<Arc<T>>>>>,
    lookups: AtomicU64,
    computes: AtomicU64,
}

impl<T> Default for Cache<T> {
    fn default() -> Self {
        Cache {
            cells: Mutex::new(HashMap::new()),
            lookups: AtomicU64::new(0),
            computes: AtomicU64::new(0),
        }
    }
}

impl<T> Cache<T> {
    fn get_or_compute(&self, key: Key, compute: impl FnOnce() -> T) -> Arc<T> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let cell = {
            // A worker that panicked while holding the lock poisons it, but
            // the map itself is never left mid-update (entry insertion is
            // atomic from the map's point of view), so recover the guard
            // instead of cascading the panic into every later lookup.
            let mut map = self.cells.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(map.entry(key).or_default())
        };
        // The map lock is released before computing, so a slow fill never
        // blocks lookups of other keys; `get_or_init` serializes fills of
        // the *same* key, which is exactly the exactly-once guarantee.
        Arc::clone(cell.get_or_init(|| {
            self.computes.fetch_add(1, Ordering::Relaxed);
            Arc::new(compute())
        }))
    }

    fn computes(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }

    fn hits(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed) - self.computes()
    }
}

/// The cache-backed cell runner shared by every worker. Lives behind an
/// `Arc` so the deadline supervisor can hand it to detached (`'static`)
/// attempt threads whose slots may be abandoned.
struct HarnessShared {
    traces: Cache<AppTrace>,
    baselines: Cache<BaselineBundle>,
}

impl HarnessShared {
    fn trace(&self, app: &AppSpec, nodes: u16, seed: u64) -> Arc<AppTrace> {
        self.traces
            .get_or_compute((app.name.clone(), nodes, seed), || {
                app.generate(nodes as usize, seed)
            })
    }

    fn baseline(&self, app: &AppSpec, nodes: u16, seed: u64) -> Arc<BaselineBundle> {
        let trace = self.trace(app, nodes, seed);
        self.baselines
            .get_or_compute((app.name.clone(), nodes, seed), || {
                let cfg = SimulatorConfig::paper_with_nodes(SystemConfig::Baseline.name(), nodes);
                let report = simulate(cfg, &trace, SystemConfig::Baseline.algorithm_config(), None);
                let oracle = oracle_from_baseline(&report);
                BaselineBundle { report, oracle }
            })
    }

    fn try_run_cell_faulted(
        &self,
        cell: &Cell,
    ) -> Result<(RunReport, FaultSummary), LivelockDiagnostics> {
        let plan = cell.faults.clone().filter(FaultPlan::enabled);
        if plan.is_none() && cell.config == SystemConfig::Baseline {
            let report = self
                .baseline(&cell.app, cell.nodes, cell.seed)
                .report
                .clone();
            return Ok((report, FaultSummary::default()));
        }
        let trace = self.trace(&cell.app, cell.nodes, cell.seed);
        let oracle = cell.config.needs_oracle().then(|| {
            self.baseline(&cell.app, cell.nodes, cell.seed)
                .oracle
                .clone()
        });
        let mut cfg = SimulatorConfig::paper_with_nodes(cell.config.name(), cell.nodes);
        let mut algo = cell.config.algorithm_config();
        if plan.is_some() {
            // Under injected faults the predictor needs its misprediction
            // backstop; quarantine is part of the hardened configuration.
            algo = algo.with_quarantine(Some(QuarantineConfig::default()));
        }
        cfg.faults = plan;
        try_simulate_faulted(cfg, &trace, algo, oracle)
    }

    fn run_cell_faulted(&self, cell: &Cell) -> (RunReport, FaultSummary) {
        match self.try_run_cell_faulted(cell) {
            Ok(pair) => pair,
            Err(diag) => panic!("simulation livelocked: {diag}"),
        }
    }

    /// Runs one attempt of a cell with panic isolation, classifying every
    /// failure mode into a [`CellError`].
    fn run_cell_attempt(&self, cell: &Cell) -> Result<(RunReport, FaultSummary), CellError> {
        match catch_unwind(AssertUnwindSafe(|| self.try_run_cell_faulted(cell))) {
            Ok(Ok(pair)) => Ok(pair),
            Ok(Err(diag)) => Err(CellError::Livelock(diag)),
            Err(payload) => Err(CellError::Panic(panic_message(payload))),
        }
    }
}

fn emit_retry(policy: &SupervisionPolicy, index: usize, attempt: u32, timed_out: bool) {
    policy.trace.emit(TraceEvent::new(
        Cycles::ZERO,
        index,
        TraceEventKind::CellRetry {
            episode: index as u64,
            pc: 0,
            attempt,
            timed_out,
        },
    ));
}

/// Parallel experiment runner with shared trace and Baseline/oracle caches.
///
/// The caches live for the lifetime of the harness, so sequential calls
/// (`run` then `cutoff`, or repeated sweeps) keep amortizing the same
/// Baseline recordings — build one harness per process, not per call.
///
/// # Examples
///
/// ```
/// use tb_core::SystemConfig;
/// use tb_machine::harness::{Cell, Harness};
/// use tb_workloads::AppSpec;
///
/// let app = AppSpec::by_name("FMM").unwrap();
/// let harness = Harness::new(2);
/// let cells: Vec<Cell> = SystemConfig::ALL
///     .into_iter()
///     .map(|c| Cell::new(app.clone(), 16, 1, c))
///     .collect();
/// let reports = harness.run_cells(&cells).unwrap();
/// assert_eq!(reports.len(), 5);
/// // All five configurations shared one trace and one Baseline run.
/// assert_eq!(harness.trace_generations(), 1);
/// assert_eq!(harness.baseline_runs(), 1);
/// assert!(reports[3].total_energy() < reports[0].total_energy());
/// ```
pub struct Harness {
    jobs: usize,
    shared: Arc<HarnessShared>,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("jobs", &self.jobs)
            .field("trace_generations", &self.trace_generations())
            .field("baseline_runs", &self.baseline_runs())
            .field("cache_hits", &self.cache_hits())
            .finish()
    }
}

impl Harness {
    /// Creates a harness running up to `jobs` cells concurrently; `0`
    /// means one worker per available hardware thread.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        Harness {
            jobs,
            shared: Arc::new(HarnessShared {
                traces: Cache::default(),
                baselines: Cache::default(),
            }),
        }
    }

    /// A single-worker harness: runs cells inline in caller order, still
    /// with the shared caches.
    pub fn serial() -> Self {
        Harness::new(1)
    }

    /// The worker-pool size.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The interned trace of (app, nodes, seed), generating it on first
    /// use.
    pub fn trace(&self, app: &AppSpec, nodes: u16, seed: u64) -> Arc<AppTrace> {
        self.shared.trace(app, nodes, seed)
    }

    /// The interned Baseline run (and derived oracle) of (app, nodes,
    /// seed), simulating it on first use. This is the *only* place the
    /// harness runs Baseline, so each triple runs it exactly once.
    pub fn baseline(&self, app: &AppSpec, nodes: u16, seed: u64) -> Arc<BaselineBundle> {
        self.shared.baseline(app, nodes, seed)
    }

    /// Runs one cell, reusing the cached trace and (for Baseline and the
    /// oracle configurations) the cached Baseline run.
    ///
    /// # Panics
    ///
    /// Panics if the simulation livelocks; use
    /// [`Harness::try_run_cell_faulted`] for the typed error.
    pub fn run_cell(&self, cell: &Cell) -> RunReport {
        self.shared.run_cell_faulted(cell).0
    }

    /// Runs one cell and also returns its fault tallies.
    ///
    /// A cell whose plan is absent or disabled takes exactly the clean
    /// path (including the shared-Baseline cache shortcut) and reports an
    /// all-zero [`FaultSummary`]. A faulted cell never reads from or
    /// writes to the Baseline cache — cached bundles are fault-free by
    /// definition — though it still shares the trace cache and, for oracle
    /// configurations, consumes the clean Baseline's oracle (the oracle
    /// models *prediction* knowledge, not fault knowledge).
    ///
    /// # Panics
    ///
    /// Panics if the simulation livelocks; use
    /// [`Harness::try_run_cell_faulted`] for the typed error.
    pub fn run_cell_faulted(&self, cell: &Cell) -> (RunReport, FaultSummary) {
        self.shared.run_cell_faulted(cell)
    }

    /// Like [`Harness::run_cell_faulted`], but a livelocked simulation
    /// returns its [`LivelockDiagnostics`] instead of panicking.
    pub fn try_run_cell_faulted(
        &self,
        cell: &Cell,
    ) -> Result<(RunReport, FaultSummary), LivelockDiagnostics> {
        self.shared.try_run_cell_faulted(cell)
    }

    /// Runs every cell and returns the reports **in `cells` order**, or
    /// the error of the first (in cell order) cell that failed.
    ///
    /// Workers pull the next unclaimed index from a shared counter (cheap
    /// work stealing: a long cell never blocks the queue behind it) and
    /// write into that index's slot, so the result layout — and therefore
    /// any output rendered from it — is identical at every `jobs` level.
    pub fn run_cells(&self, cells: &[Cell]) -> Result<Vec<RunReport>, CellError> {
        self.run_cells_isolated(cells)
            .into_iter()
            .map(|outcome| outcome.report)
            .collect()
    }

    /// Runs every cell with per-cell panic isolation and returns the
    /// outcomes **in `cells` order**, regardless of completion order.
    ///
    /// Equivalent to [`Harness::run_cells_supervised`] with the default
    /// policy: no retries, no deadline.
    pub fn run_cells_isolated(&self, cells: &[Cell]) -> Vec<CellOutcome> {
        self.run_cells_supervised(cells, &SupervisionPolicy::default())
    }

    /// Runs every cell under `policy` and returns the outcomes **in
    /// `cells` order**, regardless of completion order.
    pub fn run_cells_supervised(
        &self,
        cells: &[Cell],
        policy: &SupervisionPolicy,
    ) -> Vec<CellOutcome> {
        self.run_cells_supervised_with(cells, policy, |_, _| {})
    }

    /// Like [`Harness::run_cells_supervised`], but invokes `on_complete`
    /// with each cell's index and final outcome *as soon as that cell
    /// finishes* (from whichever worker finished it — the callback must be
    /// `Sync`). This is the checkpointing hook: a sweep journal can
    /// persist every completed cell without waiting for the whole batch.
    /// Completion order is nondeterministic; the returned vector is always
    /// in `cells` order.
    pub fn run_cells_supervised_with<F>(
        &self,
        cells: &[Cell],
        policy: &SupervisionPolicy,
        on_complete: F,
    ) -> Vec<CellOutcome>
    where
        F: Fn(usize, &CellOutcome) + Sync,
    {
        if policy.timeout.is_some() {
            return self.run_cells_deadline(cells, policy, &on_complete);
        }
        let workers = self.jobs.min(cells.len());
        if workers <= 1 {
            return cells
                .iter()
                .enumerate()
                .map(|(i, cell)| {
                    let outcome = self.run_cell_supervised(i, cell, policy);
                    on_complete(i, &outcome);
                    outcome
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<CellOutcome>> = cells.iter().map(|_| OnceLock::new()).collect();
        let on_complete = &on_complete;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let outcome = self.run_cell_supervised(i, cell, policy);
                    on_complete(i, &outcome);
                    slots[i].set(outcome).expect("each index is claimed once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker filled every slot"))
            .collect()
    }

    /// One cell's retry loop for the deadline-free paths: attempts run
    /// inline on the calling worker, sleeping the backoff between retries.
    fn run_cell_supervised(
        &self,
        index: usize,
        cell: &Cell,
        policy: &SupervisionPolicy,
    ) -> CellOutcome {
        let mut retries = Vec::new();
        loop {
            match self.shared.run_cell_attempt(cell) {
                Ok((report, faults)) => {
                    return CellOutcome {
                        report: Ok(report),
                        faults,
                        retries,
                    }
                }
                Err(err) => {
                    if err.is_transient() && (retries.len() as u32) < policy.retries {
                        let timed_out = matches!(err, CellError::Timeout { .. });
                        retries.push(err);
                        let attempt = retries.len() as u32;
                        emit_retry(policy, index, attempt, timed_out);
                        std::thread::sleep(retry_backoff(cell.seed, attempt));
                    } else {
                        return CellOutcome {
                            report: Err(err),
                            faults: FaultSummary::default(),
                            retries,
                        };
                    }
                }
            }
        }
    }

    /// The deadline supervisor: attempts run on detached threads that
    /// report back over a channel, so an attempt that overruns its
    /// deadline can have its worker *slot* reclaimed immediately — the
    /// thread itself is left to finish naturally (every shared structure
    /// is content-keyed and exactly-once, so a late writer is harmless)
    /// and its eventual result is discarded by the attempt-number filter.
    fn run_cells_deadline<F>(
        &self,
        cells: &[Cell],
        policy: &SupervisionPolicy,
        on_complete: &F,
    ) -> Vec<CellOutcome>
    where
        F: Fn(usize, &CellOutcome) + Sync,
    {
        let limit = policy.timeout.expect("deadline path requires a timeout");
        let limit_ms = limit.as_millis() as u64;
        let n = cells.len();
        let workers = self.jobs.min(n).max(1);
        type AttemptResult = Result<(RunReport, FaultSummary), CellError>;
        // `tx` stays alive in this frame, so Disconnected can never fire.
        let (tx, rx) = mpsc::channel::<(usize, u32, AttemptResult)>();

        // Every incomplete cell is in exactly one of `pending` (waiting
        // for a slot, possibly serving a backoff) or `inflight` (running,
        // with a deadline). Entries are (index, attempt, instant).
        let start = Instant::now();
        let mut pending: Vec<(usize, u32, Instant)> = (0..n).map(|i| (i, 0, start)).collect();
        let mut inflight: Vec<(usize, u32, Instant)> = Vec::new();
        let mut attempt_of = vec![0u32; n];
        let mut retries: Vec<Vec<CellError>> = vec![Vec::new(); n];
        let mut results: Vec<Option<CellOutcome>> = (0..n).map(|_| None).collect();
        let mut completed = 0usize;

        while completed < n {
            // Fill free worker slots with the lowest-indexed ready cells.
            let now = Instant::now();
            while inflight.len() < workers {
                let mut best: Option<usize> = None;
                for (p, &(i, _, ready)) in pending.iter().enumerate() {
                    if ready <= now && best.is_none_or(|b| pending[b].0 > i) {
                        best = Some(p);
                    }
                }
                let Some(p) = best else { break };
                let (index, attempt, _) = pending.remove(p);
                attempt_of[index] = attempt;
                inflight.push((index, attempt, now + limit));
                let shared = Arc::clone(&self.shared);
                let cell = cells[index].clone();
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("tb-cell-{index}"))
                    .spawn(move || {
                        let result = shared.run_cell_attempt(&cell);
                        let _ = tx.send((index, attempt, result));
                    })
                    .expect("spawn supervised cell worker");
            }

            // Sleep until the next thing that can happen: an inflight
            // deadline, or (if a slot is free) a backoff expiring.
            let mut wake = inflight.iter().map(|&(_, _, deadline)| deadline).min();
            if inflight.len() < workers {
                if let Some(ready) = pending.iter().map(|&(_, _, r)| r).min() {
                    wake = Some(wake.map_or(ready, |w| w.min(ready)));
                }
            }
            let wake = wake.expect("supervisor has work while cells are incomplete");

            match rx.recv_timeout(wake.saturating_duration_since(Instant::now())) {
                Ok((index, attempt, result)) => {
                    // An abandoned attempt finishing after its deadline is
                    // no longer inflight — drop its result.
                    let Some(pos) = inflight
                        .iter()
                        .position(|&(i, a, _)| i == index && a == attempt)
                    else {
                        continue;
                    };
                    inflight.remove(pos);
                    match result {
                        Ok((report, faults)) => {
                            let outcome = CellOutcome {
                                report: Ok(report),
                                faults,
                                retries: std::mem::take(&mut retries[index]),
                            };
                            on_complete(index, &outcome);
                            results[index] = Some(outcome);
                            completed += 1;
                        }
                        Err(err) => supervise_failure(
                            index,
                            err,
                            policy,
                            cells,
                            &mut attempt_of,
                            &mut retries,
                            &mut pending,
                            &mut results,
                            &mut completed,
                            on_complete,
                        ),
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    let mut k = 0;
                    while k < inflight.len() {
                        if inflight[k].2 <= now {
                            let (index, _, _) = inflight.remove(k);
                            supervise_failure(
                                index,
                                CellError::Timeout { limit_ms },
                                policy,
                                cells,
                                &mut attempt_of,
                                &mut retries,
                                &mut pending,
                                &mut results,
                                &mut completed,
                                on_complete,
                            );
                        } else {
                            k += 1;
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("supervisor keeps a live sender")
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every cell completed"))
            .collect()
    }

    /// Runs the full `apps × configs × seeds` matrix and reshapes the
    /// reports per application (see [`AppMatrix`]). Cells are flattened
    /// app-major, then config, then seed, and the whole flat list is
    /// scheduled at once so parallelism spans applications.
    pub fn run_matrix(
        &self,
        apps: &[AppSpec],
        configs: &[SystemConfig],
        nodes: u16,
        seeds: &[u64],
    ) -> Result<Vec<AppMatrix>, CellError> {
        let cells: Vec<Cell> = apps
            .iter()
            .flat_map(|app| {
                configs.iter().flat_map(move |&config| {
                    seeds
                        .iter()
                        .map(move |&seed| Cell::new(app.clone(), nodes, seed, config))
                })
            })
            .collect();
        let mut reports = self.run_cells(&cells)?.into_iter();
        Ok(apps
            .iter()
            .map(|app| AppMatrix {
                app: app.clone(),
                configs: configs.to_vec(),
                seeds: seeds.to_vec(),
                reports: configs
                    .iter()
                    .map(|_| (&mut reports).take(seeds.len()).collect())
                    .collect(),
            })
            .collect())
    }

    /// Traces generated so far (one per distinct (app, nodes, seed)).
    pub fn trace_generations(&self) -> u64 {
        self.shared.traces.computes()
    }

    /// Baseline simulations performed so far (one per distinct triple —
    /// the exactly-once guarantee the caches exist for).
    pub fn baseline_runs(&self) -> u64 {
        self.shared.baselines.computes()
    }

    /// Lookups served from a cache instead of recomputed, across both
    /// caches.
    pub fn cache_hits(&self) -> u64 {
        self.shared.traces.hits() + self.shared.baselines.hits()
    }
}

/// The deadline supervisor's shared failure path: schedule a retry (with
/// backoff) if the policy allows, otherwise finalize the cell's outcome.
#[allow(clippy::too_many_arguments)]
fn supervise_failure<F: Fn(usize, &CellOutcome)>(
    index: usize,
    err: CellError,
    policy: &SupervisionPolicy,
    cells: &[Cell],
    attempt_of: &mut [u32],
    retries: &mut [Vec<CellError>],
    pending: &mut Vec<(usize, u32, Instant)>,
    results: &mut [Option<CellOutcome>],
    completed: &mut usize,
    on_complete: &F,
) {
    if err.is_transient() && (retries[index].len() as u32) < policy.retries {
        let timed_out = matches!(err, CellError::Timeout { .. });
        retries[index].push(err);
        let attempt = retries[index].len() as u32;
        emit_retry(policy, index, attempt, timed_out);
        let backoff = retry_backoff(cells[index].seed, attempt);
        pending.push((index, attempt_of[index] + 1, Instant::now() + backoff));
    } else {
        let outcome = CellOutcome {
            report: Err(err),
            faults: FaultSummary::default(),
            retries: std::mem::take(&mut retries[index]),
        };
        on_complete(index, &outcome);
        results[index] = Some(outcome);
        *completed += 1;
    }
}

/// One application's slice of a [`Harness::run_matrix`] result.
#[derive(Debug, Clone)]
pub struct AppMatrix {
    /// The application.
    pub app: AppSpec,
    /// Configuration order of the `reports` rows.
    pub configs: Vec<SystemConfig>,
    /// Seed order of the `reports` columns.
    pub seeds: Vec<u64>,
    /// `reports[config][seed]`, in the order of `configs` and `seeds`.
    pub reports: Vec<Vec<RunReport>>,
}

impl AppMatrix {
    /// The reports of one configuration across all seeds.
    ///
    /// # Panics
    ///
    /// Panics if `config` was not part of the matrix.
    pub fn config_reports(&self, config: SystemConfig) -> &[RunReport] {
        let i = self
            .configs
            .iter()
            .position(|&c| c == config)
            .unwrap_or_else(|| panic!("{} not in the matrix", config.name()));
        &self.reports[i]
    }

    /// Mean/σ aggregation of every configuration across seeds, in the
    /// matrix's configuration order. Each seed's sample is normalized to
    /// the *same seed's* Baseline run.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not include Baseline (nothing to
    /// normalize against).
    pub fn aggregates(&self) -> Vec<AggregateReport> {
        let baselines = self.config_reports(SystemConfig::Baseline);
        self.configs
            .iter()
            .zip(&self.reports)
            .map(|(&config, row)| {
                let mut agg =
                    AggregateReport::new(self.app.name.clone(), config.name(), row[0].threads);
                for (report, baseline) in row.iter().zip(baselines) {
                    agg.push(report, baseline);
                }
                agg
            })
            .collect()
    }

    /// The per-seed reports flattened config-major — the exact layout the
    /// serial `run_config_matrix` loop produces for one seed.
    pub fn into_flat_reports(self) -> Vec<RunReport> {
        self.reports.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tb_trace::MemorySink;

    fn app() -> AppSpec {
        AppSpec::by_name("FMM").unwrap()
    }

    #[test]
    fn faulted_cells_bypass_the_baseline_cache() {
        let harness = Harness::serial();
        let plan = FaultPlan::by_name("storm", 9).unwrap();
        let cell = Cell::new(app(), 8, 1, SystemConfig::Baseline).with_faults(plan);
        let (faulted, summary) = harness.run_cell_faulted(&cell);
        assert!(summary.injected() > 0, "storm plan injects faults");
        assert_eq!(
            harness.baseline_runs(),
            0,
            "a faulted Baseline cell must not populate the fault-free cache"
        );
        // The clean cell afterwards runs (and caches) the real Baseline,
        // and differs from the faulted run.
        let clean = harness.run_cell(&Cell::new(app(), 8, 1, SystemConfig::Baseline));
        assert_eq!(harness.baseline_runs(), 1);
        assert!(faulted.wall_time >= clean.wall_time);
    }

    #[test]
    fn disabled_plan_takes_the_clean_cached_path() {
        let harness = Harness::serial();
        let clean = harness.run_cell(&Cell::new(app(), 8, 1, SystemConfig::Baseline));
        let cell = Cell::new(app(), 8, 1, SystemConfig::Baseline).with_faults(FaultPlan::none());
        let (report, summary) = harness.run_cell_faulted(&cell);
        assert_eq!(summary, FaultSummary::default());
        assert_eq!(report.wall_time, clean.wall_time);
        assert_eq!(
            harness.baseline_runs(),
            1,
            "the disabled-plan cell is served from the cache"
        );
    }

    #[test]
    fn panicking_cell_is_isolated_and_reported() {
        let harness = Harness::new(2);
        // nodes = 3 is rejected deep inside the machine model (the
        // hypercube needs a power of two) — an organic panic.
        let cells = vec![
            Cell::new(app(), 8, 1, SystemConfig::Thrifty),
            Cell::new(app(), 3, 1, SystemConfig::Thrifty),
            Cell::new(app(), 8, 2, SystemConfig::Thrifty),
        ];
        let outcomes = harness.run_cells_isolated(&cells);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].report.is_ok());
        assert!(outcomes[2].report.is_ok());
        assert!(outcomes[1].is_failed());
        let err = outcomes[1].report.as_ref().unwrap_err();
        let CellError::Panic(msg) = err else {
            panic!("expected a panic error, got {err}");
        };
        assert!(msg.contains("power of two"), "panic message kept: {msg}");
        assert_eq!(err.kind(), "panic");
        assert!(err.is_transient());
        // The typed error round-trips through the journal encoding.
        let back: CellError = serde::json::from_str(&serde::json::to_string(err)).unwrap();
        assert_eq!(&back, err);
        // The caches survive the panic: later cells still run normally.
        let after = harness.run_cell(&Cell::new(app(), 8, 1, SystemConfig::Baseline));
        assert_eq!(after.config, "Baseline");
    }

    #[test]
    fn isolated_and_plain_runs_agree() {
        let harness = Harness::new(2);
        let cells: Vec<Cell> = SystemConfig::ALL
            .into_iter()
            .map(|c| Cell::new(app(), 8, 1, c))
            .collect();
        let outcomes = harness.run_cells_isolated(&cells);
        let plain = harness.run_cells(&cells).unwrap();
        for (outcome, report) in outcomes.iter().zip(&plain) {
            let ours = outcome.report.as_ref().unwrap();
            assert_eq!(ours.wall_time, report.wall_time);
            assert_eq!(outcome.faults, FaultSummary::default());
            assert_eq!(outcome.attempts(), 1);
        }
    }

    #[test]
    fn retry_history_records_each_attempt() {
        let harness = Harness::serial();
        let sink = Arc::new(MemorySink::new(1, 16));
        let policy = SupervisionPolicy::default()
            .with_retries(2)
            .with_trace(SinkHandle::new(sink.clone()));
        // Deterministic panic: every retry fails the same way, exhausting
        // the budget.
        let cells = vec![Cell::new(app(), 3, 1, SystemConfig::Thrifty)];
        let outcomes = harness.run_cells_supervised(&cells, &policy);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].is_failed());
        assert_eq!(outcomes[0].attempts(), 3, "1 attempt + 2 retries");
        assert_eq!(outcomes[0].retries.len(), 2);
        for err in &outcomes[0].retries {
            assert!(matches!(err, CellError::Panic(_)));
        }
        let events = sink.drain_sorted();
        let attempts: Vec<u32> = events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::CellRetry {
                    attempt, timed_out, ..
                } => {
                    assert!(!timed_out, "panics are not timeouts");
                    Some(attempt)
                }
                _ => None,
            })
            .collect();
        assert_eq!(attempts, vec![1, 2]);
    }

    #[test]
    fn deadline_supervisor_times_out_stuck_cells() {
        let harness = Harness::new(2);
        // Ocean at 64 nodes takes far longer than 1 ms: the deadline
        // fires, the slot is reclaimed, and the abandoned thread finishes
        // (or dies with the process) on its own.
        let cells = vec![Cell::new(
            AppSpec::by_name("Ocean").unwrap(),
            64,
            1,
            SystemConfig::Baseline,
        )];
        let policy = SupervisionPolicy::default().with_timeout(Some(Duration::from_millis(1)));
        let outcomes = harness.run_cells_supervised(&cells, &policy);
        assert_eq!(outcomes.len(), 1);
        let err = outcomes[0].report.as_ref().unwrap_err();
        assert_eq!(err, &CellError::Timeout { limit_ms: 1 });
        assert!(err.is_transient());
        assert_eq!(format!("{err}"), "timeout after 1 ms");
    }

    #[test]
    fn deadline_supervisor_completes_fast_cells_and_retries_slow_ones() {
        let harness = Harness::new(2);
        let cells = vec![Cell::new(
            AppSpec::by_name("Ocean").unwrap(),
            64,
            2,
            SystemConfig::Baseline,
        )];
        let policy = SupervisionPolicy::default()
            .with_retries(1)
            .with_timeout(Some(Duration::from_millis(1)));
        let outcomes = harness.run_cells_supervised(&cells, &policy);
        assert_eq!(outcomes[0].attempts(), 2, "one timeout retry was burned");
        assert_eq!(
            outcomes[0].retries,
            vec![CellError::Timeout { limit_ms: 1 }]
        );
        assert!(outcomes[0].is_failed(), "the retry times out as well");

        // A roomy deadline lets a normal matrix complete with no retries,
        // identical to the plain path.
        let roomy = SupervisionPolicy::default().with_timeout(Some(Duration::from_secs(600)));
        let cells: Vec<Cell> = SystemConfig::ALL
            .into_iter()
            .map(|c| Cell::new(app(), 8, 1, c))
            .collect();
        let supervised = harness.run_cells_supervised(&cells, &roomy);
        let plain = harness.run_cells(&cells).unwrap();
        for (outcome, report) in supervised.iter().zip(&plain) {
            assert_eq!(outcome.attempts(), 1);
            assert_eq!(outcome.report.as_ref().unwrap().wall_time, report.wall_time);
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for attempt in 1..=10u32 {
            let a = retry_backoff(42, attempt);
            let b = retry_backoff(42, attempt);
            assert_eq!(a, b, "same seed and attempt, same backoff");
            assert!(a >= Duration::from_millis(25), "attempt {attempt}: {a:?}");
            assert!(
                a <= Duration::from_millis(2_000),
                "attempt {attempt}: {a:?}"
            );
        }
        // Different seeds decorrelate the jitter.
        assert_ne!(retry_backoff(1, 1), retry_backoff(2, 1));
        // The nominal delay grows until the cap.
        assert!(retry_backoff(7, 6) > retry_backoff(7, 1));
    }
}
