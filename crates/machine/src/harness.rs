//! Parallel experiment harness with shared trace/oracle caching.
//!
//! The paper's evaluation is a matrix: applications × configurations
//! (× seeds, once replication enters the picture). Every cell is an
//! independent deterministic simulation, which makes the matrix
//! embarrassingly parallel — *except* that cells share expensive inputs:
//!
//! * the generated [`AppTrace`] is identical for every configuration of one
//!   (app, nodes, seed) triple, and
//! * the Oracle-Halt and Ideal configurations both need the Baseline run of
//!   that same triple to build their [`RecordedBitOracle`] (and the
//!   Baseline cell itself *is* that run).
//!
//! [`Harness`] therefore fans cells out across a scoped worker pool while
//! interning both inputs in content-keyed caches: each (app, nodes, seed)
//! generates its trace once and simulates Baseline exactly once, no matter
//! how many configurations, workers, or calls consume it. Results come
//! back in the caller's cell order (workers fill indexed slots, so
//! completion order never shows), which keeps parallel output byte-for-byte
//! identical to a serial run.

use crate::report::{AggregateReport, RunReport};
use crate::run::oracle_from_baseline;
use crate::sim::{simulate, simulate_faulted, SimulatorConfig};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use tb_core::{FaultPlan, QuarantineConfig, RecordedBitOracle, SystemConfig};
use tb_faults::FaultSummary;
use tb_workloads::{AppSpec, AppTrace};

/// One cell of the experiment matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The application to simulate.
    pub app: AppSpec,
    /// Machine size (power of two in `2..=64`).
    pub nodes: u16,
    /// Workload seed.
    pub seed: u64,
    /// The barrier system configuration.
    pub config: SystemConfig,
    /// Fault plan injected into this cell's simulation (`None`, or a
    /// disabled plan, runs the clean simulator path).
    pub faults: Option<FaultPlan>,
}

impl Cell {
    /// Creates a fault-free cell.
    pub fn new(app: AppSpec, nodes: u16, seed: u64, config: SystemConfig) -> Self {
        Cell {
            app,
            nodes,
            seed,
            config,
            faults: None,
        }
    }

    /// Attaches a fault plan to the cell.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// The result of one panic-isolated cell: the report (or the panic message
/// if the cell died) together with its injected-fault/recovery tallies.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The run report, or the panic message of a cell that panicked.
    pub report: Result<RunReport, String>,
    /// Fault-injection and recovery tallies for the cell (all zero for
    /// fault-free or failed cells).
    pub faults: FaultSummary,
}

impl CellOutcome {
    /// Whether the cell panicked instead of producing a report.
    pub fn is_failed(&self) -> bool {
        self.report.is_err()
    }
}

/// Renders a `catch_unwind` payload as the human-readable panic message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

/// The Baseline run of one (app, nodes, seed) triple together with the
/// oracle table derived from it — the shared input of the Baseline,
/// Oracle-Halt, and Ideal cells.
#[derive(Debug)]
pub struct BaselineBundle {
    /// The Baseline run report.
    pub report: RunReport,
    /// Perfect BIT prediction recorded from that run.
    pub oracle: RecordedBitOracle,
}

/// Cache key: (app name, nodes, seed). App specs are identified by name —
/// [`AppSpec::splash2`] names are unique, and callers mixing custom specs
/// under one name would already be ambiguous everywhere else.
type Key = (String, u16, u64);

/// A content-keyed exactly-once cache. Each key holds a [`OnceLock`] cell;
/// the first looker-up computes, concurrent ones block on the lock and
/// then share the value, later ones hit.
struct Cache<T> {
    cells: Mutex<HashMap<Key, Arc<OnceLock<Arc<T>>>>>,
    lookups: AtomicU64,
    computes: AtomicU64,
}

impl<T> Default for Cache<T> {
    fn default() -> Self {
        Cache {
            cells: Mutex::new(HashMap::new()),
            lookups: AtomicU64::new(0),
            computes: AtomicU64::new(0),
        }
    }
}

impl<T> Cache<T> {
    fn get_or_compute(&self, key: Key, compute: impl FnOnce() -> T) -> Arc<T> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let cell = {
            // A worker that panicked while holding the lock poisons it, but
            // the map itself is never left mid-update (entry insertion is
            // atomic from the map's point of view), so recover the guard
            // instead of cascading the panic into every later lookup.
            let mut map = self.cells.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(map.entry(key).or_default())
        };
        // The map lock is released before computing, so a slow fill never
        // blocks lookups of other keys; `get_or_init` serializes fills of
        // the *same* key, which is exactly the exactly-once guarantee.
        Arc::clone(cell.get_or_init(|| {
            self.computes.fetch_add(1, Ordering::Relaxed);
            Arc::new(compute())
        }))
    }

    fn computes(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }

    fn hits(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed) - self.computes()
    }
}

/// Parallel experiment runner with shared trace and Baseline/oracle caches.
///
/// The caches live for the lifetime of the harness, so sequential calls
/// (`run` then `cutoff`, or repeated sweeps) keep amortizing the same
/// Baseline recordings — build one harness per process, not per call.
///
/// # Examples
///
/// ```
/// use tb_core::SystemConfig;
/// use tb_machine::harness::{Cell, Harness};
/// use tb_workloads::AppSpec;
///
/// let app = AppSpec::by_name("FMM").unwrap();
/// let harness = Harness::new(2);
/// let cells: Vec<Cell> = SystemConfig::ALL
///     .into_iter()
///     .map(|c| Cell::new(app.clone(), 16, 1, c))
///     .collect();
/// let reports = harness.run_cells(&cells);
/// assert_eq!(reports.len(), 5);
/// // All five configurations shared one trace and one Baseline run.
/// assert_eq!(harness.trace_generations(), 1);
/// assert_eq!(harness.baseline_runs(), 1);
/// assert!(reports[3].total_energy() < reports[0].total_energy());
/// ```
pub struct Harness {
    jobs: usize,
    traces: Cache<AppTrace>,
    baselines: Cache<BaselineBundle>,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("jobs", &self.jobs)
            .field("trace_generations", &self.trace_generations())
            .field("baseline_runs", &self.baseline_runs())
            .field("cache_hits", &self.cache_hits())
            .finish()
    }
}

impl Harness {
    /// Creates a harness running up to `jobs` cells concurrently; `0`
    /// means one worker per available hardware thread.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        Harness {
            jobs,
            traces: Cache::default(),
            baselines: Cache::default(),
        }
    }

    /// A single-worker harness: runs cells inline in caller order, still
    /// with the shared caches.
    pub fn serial() -> Self {
        Harness::new(1)
    }

    /// The worker-pool size.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The interned trace of (app, nodes, seed), generating it on first
    /// use.
    pub fn trace(&self, app: &AppSpec, nodes: u16, seed: u64) -> Arc<AppTrace> {
        self.traces
            .get_or_compute((app.name.clone(), nodes, seed), || {
                app.generate(nodes as usize, seed)
            })
    }

    /// The interned Baseline run (and derived oracle) of (app, nodes,
    /// seed), simulating it on first use. This is the *only* place the
    /// harness runs Baseline, so each triple runs it exactly once.
    pub fn baseline(&self, app: &AppSpec, nodes: u16, seed: u64) -> Arc<BaselineBundle> {
        let trace = self.trace(app, nodes, seed);
        self.baselines
            .get_or_compute((app.name.clone(), nodes, seed), || {
                let cfg = SimulatorConfig::paper_with_nodes(SystemConfig::Baseline.name(), nodes);
                let report = simulate(cfg, &trace, SystemConfig::Baseline.algorithm_config(), None);
                let oracle = oracle_from_baseline(&report);
                BaselineBundle { report, oracle }
            })
    }

    /// Runs one cell, reusing the cached trace and (for Baseline and the
    /// oracle configurations) the cached Baseline run.
    pub fn run_cell(&self, cell: &Cell) -> RunReport {
        self.run_cell_faulted(cell).0
    }

    /// Runs one cell and also returns its fault tallies.
    ///
    /// A cell whose plan is absent or disabled takes exactly the clean
    /// path (including the shared-Baseline cache shortcut) and reports an
    /// all-zero [`FaultSummary`]. A faulted cell never reads from or
    /// writes to the Baseline cache — cached bundles are fault-free by
    /// definition — though it still shares the trace cache and, for oracle
    /// configurations, consumes the clean Baseline's oracle (the oracle
    /// models *prediction* knowledge, not fault knowledge).
    pub fn run_cell_faulted(&self, cell: &Cell) -> (RunReport, FaultSummary) {
        let plan = cell.faults.clone().filter(FaultPlan::enabled);
        if plan.is_none() && cell.config == SystemConfig::Baseline {
            let report = self
                .baseline(&cell.app, cell.nodes, cell.seed)
                .report
                .clone();
            return (report, FaultSummary::default());
        }
        let trace = self.trace(&cell.app, cell.nodes, cell.seed);
        let oracle = cell.config.needs_oracle().then(|| {
            self.baseline(&cell.app, cell.nodes, cell.seed)
                .oracle
                .clone()
        });
        let mut cfg = SimulatorConfig::paper_with_nodes(cell.config.name(), cell.nodes);
        let mut algo = cell.config.algorithm_config();
        if plan.is_some() {
            // Under injected faults the predictor needs its misprediction
            // backstop; quarantine is part of the hardened configuration.
            algo = algo.with_quarantine(Some(QuarantineConfig::default()));
        }
        cfg.faults = plan;
        simulate_faulted(cfg, &trace, algo, oracle)
    }

    /// Runs one cell inside `catch_unwind`, converting a panic into a
    /// failed [`CellOutcome`] instead of unwinding into the pool.
    fn run_cell_isolated(&self, cell: &Cell) -> CellOutcome {
        match catch_unwind(AssertUnwindSafe(|| self.run_cell_faulted(cell))) {
            Ok((report, faults)) => CellOutcome {
                report: Ok(report),
                faults,
            },
            Err(payload) => CellOutcome {
                report: Err(panic_message(payload)),
                faults: FaultSummary::default(),
            },
        }
    }

    /// Runs every cell and returns the reports **in `cells` order**,
    /// regardless of completion order.
    ///
    /// Workers pull the next unclaimed index from a shared counter (cheap
    /// work stealing: a long cell never blocks the queue behind it) and
    /// write into that index's slot, so the result layout — and therefore
    /// any output rendered from it — is identical at every `jobs` level.
    pub fn run_cells(&self, cells: &[Cell]) -> Vec<RunReport> {
        self.run_cells_isolated(cells)
            .into_iter()
            .map(|outcome| match outcome.report {
                Ok(report) => report,
                Err(msg) => panic!("{msg}"),
            })
            .collect()
    }

    /// Runs every cell with per-cell panic isolation and returns the
    /// outcomes **in `cells` order**, regardless of completion order.
    ///
    /// Workers pull the next unclaimed index from a shared counter (cheap
    /// work stealing: a long cell never blocks the queue behind it) and
    /// write into that index's slot, so the result layout — and therefore
    /// any output rendered from it — is identical at every `jobs` level.
    /// Each cell runs inside `catch_unwind`: a panicking cell becomes a
    /// failed [`CellOutcome`] carrying the panic message while every other
    /// cell — and the shared caches — keeps working.
    pub fn run_cells_isolated(&self, cells: &[Cell]) -> Vec<CellOutcome> {
        let workers = self.jobs.min(cells.len());
        if workers <= 1 {
            return cells.iter().map(|c| self.run_cell_isolated(c)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<CellOutcome>> = cells.iter().map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    slots[i]
                        .set(self.run_cell_isolated(cell))
                        .expect("each index is claimed once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker filled every slot"))
            .collect()
    }

    /// Runs the full `apps × configs × seeds` matrix and reshapes the
    /// reports per application (see [`AppMatrix`]). Cells are flattened
    /// app-major, then config, then seed, and the whole flat list is
    /// scheduled at once so parallelism spans applications.
    pub fn run_matrix(
        &self,
        apps: &[AppSpec],
        configs: &[SystemConfig],
        nodes: u16,
        seeds: &[u64],
    ) -> Vec<AppMatrix> {
        let cells: Vec<Cell> = apps
            .iter()
            .flat_map(|app| {
                configs.iter().flat_map(move |&config| {
                    seeds
                        .iter()
                        .map(move |&seed| Cell::new(app.clone(), nodes, seed, config))
                })
            })
            .collect();
        let mut reports = self.run_cells(&cells).into_iter();
        apps.iter()
            .map(|app| AppMatrix {
                app: app.clone(),
                configs: configs.to_vec(),
                seeds: seeds.to_vec(),
                reports: configs
                    .iter()
                    .map(|_| (&mut reports).take(seeds.len()).collect())
                    .collect(),
            })
            .collect()
    }

    /// Traces generated so far (one per distinct (app, nodes, seed)).
    pub fn trace_generations(&self) -> u64 {
        self.traces.computes()
    }

    /// Baseline simulations performed so far (one per distinct triple —
    /// the exactly-once guarantee the caches exist for).
    pub fn baseline_runs(&self) -> u64 {
        self.baselines.computes()
    }

    /// Lookups served from a cache instead of recomputed, across both
    /// caches.
    pub fn cache_hits(&self) -> u64 {
        self.traces.hits() + self.baselines.hits()
    }
}

/// One application's slice of a [`Harness::run_matrix`] result.
#[derive(Debug, Clone)]
pub struct AppMatrix {
    /// The application.
    pub app: AppSpec,
    /// Configuration order of the `reports` rows.
    pub configs: Vec<SystemConfig>,
    /// Seed order of the `reports` columns.
    pub seeds: Vec<u64>,
    /// `reports[config][seed]`, in the order of `configs` and `seeds`.
    pub reports: Vec<Vec<RunReport>>,
}

impl AppMatrix {
    /// The reports of one configuration across all seeds.
    ///
    /// # Panics
    ///
    /// Panics if `config` was not part of the matrix.
    pub fn config_reports(&self, config: SystemConfig) -> &[RunReport] {
        let i = self
            .configs
            .iter()
            .position(|&c| c == config)
            .unwrap_or_else(|| panic!("{} not in the matrix", config.name()));
        &self.reports[i]
    }

    /// Mean/σ aggregation of every configuration across seeds, in the
    /// matrix's configuration order. Each seed's sample is normalized to
    /// the *same seed's* Baseline run.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not include Baseline (nothing to
    /// normalize against).
    pub fn aggregates(&self) -> Vec<AggregateReport> {
        let baselines = self.config_reports(SystemConfig::Baseline);
        self.configs
            .iter()
            .zip(&self.reports)
            .map(|(&config, row)| {
                let mut agg =
                    AggregateReport::new(self.app.name.clone(), config.name(), row[0].threads);
                for (report, baseline) in row.iter().zip(baselines) {
                    agg.push(report, baseline);
                }
                agg
            })
            .collect()
    }

    /// The per-seed reports flattened config-major — the exact layout the
    /// serial `run_config_matrix` loop produces for one seed.
    pub fn into_flat_reports(self) -> Vec<RunReport> {
        self.reports.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> AppSpec {
        AppSpec::by_name("FMM").unwrap()
    }

    #[test]
    fn faulted_cells_bypass_the_baseline_cache() {
        let harness = Harness::serial();
        let plan = FaultPlan::by_name("storm", 9).unwrap();
        let cell = Cell::new(app(), 8, 1, SystemConfig::Baseline).with_faults(plan);
        let (faulted, summary) = harness.run_cell_faulted(&cell);
        assert!(summary.injected() > 0, "storm plan injects faults");
        assert_eq!(
            harness.baseline_runs(),
            0,
            "a faulted Baseline cell must not populate the fault-free cache"
        );
        // The clean cell afterwards runs (and caches) the real Baseline,
        // and differs from the faulted run.
        let clean = harness.run_cell(&Cell::new(app(), 8, 1, SystemConfig::Baseline));
        assert_eq!(harness.baseline_runs(), 1);
        assert!(faulted.wall_time >= clean.wall_time);
    }

    #[test]
    fn disabled_plan_takes_the_clean_cached_path() {
        let harness = Harness::serial();
        let clean = harness.run_cell(&Cell::new(app(), 8, 1, SystemConfig::Baseline));
        let cell = Cell::new(app(), 8, 1, SystemConfig::Baseline).with_faults(FaultPlan::none());
        let (report, summary) = harness.run_cell_faulted(&cell);
        assert_eq!(summary, FaultSummary::default());
        assert_eq!(report.wall_time, clean.wall_time);
        assert_eq!(
            harness.baseline_runs(),
            1,
            "the disabled-plan cell is served from the cache"
        );
    }

    #[test]
    fn panicking_cell_is_isolated_and_reported() {
        let harness = Harness::new(2);
        // nodes = 3 is rejected deep inside the machine model (the
        // hypercube needs a power of two) — an organic panic.
        let cells = vec![
            Cell::new(app(), 8, 1, SystemConfig::Thrifty),
            Cell::new(app(), 3, 1, SystemConfig::Thrifty),
            Cell::new(app(), 8, 2, SystemConfig::Thrifty),
        ];
        let outcomes = harness.run_cells_isolated(&cells);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].report.is_ok());
        assert!(outcomes[2].report.is_ok());
        assert!(outcomes[1].is_failed());
        let msg = outcomes[1].report.as_ref().unwrap_err();
        assert!(msg.contains("power of two"), "panic message kept: {msg}");
        // The caches survive the panic: later cells still run normally.
        let after = harness.run_cell(&Cell::new(app(), 8, 1, SystemConfig::Baseline));
        assert_eq!(after.config, "Baseline");
    }

    #[test]
    fn isolated_and_plain_runs_agree() {
        let harness = Harness::new(2);
        let cells: Vec<Cell> = SystemConfig::ALL
            .into_iter()
            .map(|c| Cell::new(app(), 8, 1, c))
            .collect();
        let outcomes = harness.run_cells_isolated(&cells);
        let plain = harness.run_cells(&cells);
        for (outcome, report) in outcomes.iter().zip(&plain) {
            let ours = outcome.report.as_ref().unwrap();
            assert_eq!(ours.wall_time, report.wall_time);
            assert_eq!(outcome.faults, FaultSummary::default());
        }
    }
}
