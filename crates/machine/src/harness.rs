//! Parallel experiment harness with shared trace/oracle caching.
//!
//! The paper's evaluation is a matrix: applications × configurations
//! (× seeds, once replication enters the picture). Every cell is an
//! independent deterministic simulation, which makes the matrix
//! embarrassingly parallel — *except* that cells share expensive inputs:
//!
//! * the generated [`AppTrace`] is identical for every configuration of one
//!   (app, nodes, seed) triple, and
//! * the Oracle-Halt and Ideal configurations both need the Baseline run of
//!   that same triple to build their [`RecordedBitOracle`] (and the
//!   Baseline cell itself *is* that run).
//!
//! [`Harness`] therefore fans cells out across a scoped worker pool while
//! interning both inputs in content-keyed caches: each (app, nodes, seed)
//! generates its trace once and simulates Baseline exactly once, no matter
//! how many configurations, workers, or calls consume it. Results come
//! back in the caller's cell order (workers fill indexed slots, so
//! completion order never shows), which keeps parallel output byte-for-byte
//! identical to a serial run.

use crate::report::{AggregateReport, RunReport};
use crate::run::oracle_from_baseline;
use crate::sim::{simulate, SimulatorConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tb_core::{RecordedBitOracle, SystemConfig};
use tb_workloads::{AppSpec, AppTrace};

/// One cell of the experiment matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The application to simulate.
    pub app: AppSpec,
    /// Machine size (power of two in `2..=64`).
    pub nodes: u16,
    /// Workload seed.
    pub seed: u64,
    /// The barrier system configuration.
    pub config: SystemConfig,
}

impl Cell {
    /// Creates a cell.
    pub fn new(app: AppSpec, nodes: u16, seed: u64, config: SystemConfig) -> Self {
        Cell {
            app,
            nodes,
            seed,
            config,
        }
    }
}

/// The Baseline run of one (app, nodes, seed) triple together with the
/// oracle table derived from it — the shared input of the Baseline,
/// Oracle-Halt, and Ideal cells.
#[derive(Debug)]
pub struct BaselineBundle {
    /// The Baseline run report.
    pub report: RunReport,
    /// Perfect BIT prediction recorded from that run.
    pub oracle: RecordedBitOracle,
}

/// Cache key: (app name, nodes, seed). App specs are identified by name —
/// [`AppSpec::splash2`] names are unique, and callers mixing custom specs
/// under one name would already be ambiguous everywhere else.
type Key = (String, u16, u64);

/// A content-keyed exactly-once cache. Each key holds a [`OnceLock`] cell;
/// the first looker-up computes, concurrent ones block on the lock and
/// then share the value, later ones hit.
struct Cache<T> {
    cells: Mutex<HashMap<Key, Arc<OnceLock<Arc<T>>>>>,
    lookups: AtomicU64,
    computes: AtomicU64,
}

impl<T> Default for Cache<T> {
    fn default() -> Self {
        Cache {
            cells: Mutex::new(HashMap::new()),
            lookups: AtomicU64::new(0),
            computes: AtomicU64::new(0),
        }
    }
}

impl<T> Cache<T> {
    fn get_or_compute(&self, key: Key, compute: impl FnOnce() -> T) -> Arc<T> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let cell = {
            let mut map = self.cells.lock().expect("cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        // The map lock is released before computing, so a slow fill never
        // blocks lookups of other keys; `get_or_init` serializes fills of
        // the *same* key, which is exactly the exactly-once guarantee.
        Arc::clone(cell.get_or_init(|| {
            self.computes.fetch_add(1, Ordering::Relaxed);
            Arc::new(compute())
        }))
    }

    fn computes(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }

    fn hits(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed) - self.computes()
    }
}

/// Parallel experiment runner with shared trace and Baseline/oracle caches.
///
/// The caches live for the lifetime of the harness, so sequential calls
/// (`run` then `cutoff`, or repeated sweeps) keep amortizing the same
/// Baseline recordings — build one harness per process, not per call.
///
/// # Examples
///
/// ```
/// use tb_core::SystemConfig;
/// use tb_machine::harness::{Cell, Harness};
/// use tb_workloads::AppSpec;
///
/// let app = AppSpec::by_name("FMM").unwrap();
/// let harness = Harness::new(2);
/// let cells: Vec<Cell> = SystemConfig::ALL
///     .into_iter()
///     .map(|c| Cell::new(app.clone(), 16, 1, c))
///     .collect();
/// let reports = harness.run_cells(&cells);
/// assert_eq!(reports.len(), 5);
/// // All five configurations shared one trace and one Baseline run.
/// assert_eq!(harness.trace_generations(), 1);
/// assert_eq!(harness.baseline_runs(), 1);
/// assert!(reports[3].total_energy() < reports[0].total_energy());
/// ```
pub struct Harness {
    jobs: usize,
    traces: Cache<AppTrace>,
    baselines: Cache<BaselineBundle>,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("jobs", &self.jobs)
            .field("trace_generations", &self.trace_generations())
            .field("baseline_runs", &self.baseline_runs())
            .field("cache_hits", &self.cache_hits())
            .finish()
    }
}

impl Harness {
    /// Creates a harness running up to `jobs` cells concurrently; `0`
    /// means one worker per available hardware thread.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        Harness {
            jobs,
            traces: Cache::default(),
            baselines: Cache::default(),
        }
    }

    /// A single-worker harness: runs cells inline in caller order, still
    /// with the shared caches.
    pub fn serial() -> Self {
        Harness::new(1)
    }

    /// The worker-pool size.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The interned trace of (app, nodes, seed), generating it on first
    /// use.
    pub fn trace(&self, app: &AppSpec, nodes: u16, seed: u64) -> Arc<AppTrace> {
        self.traces
            .get_or_compute((app.name.clone(), nodes, seed), || {
                app.generate(nodes as usize, seed)
            })
    }

    /// The interned Baseline run (and derived oracle) of (app, nodes,
    /// seed), simulating it on first use. This is the *only* place the
    /// harness runs Baseline, so each triple runs it exactly once.
    pub fn baseline(&self, app: &AppSpec, nodes: u16, seed: u64) -> Arc<BaselineBundle> {
        let trace = self.trace(app, nodes, seed);
        self.baselines
            .get_or_compute((app.name.clone(), nodes, seed), || {
                let cfg = SimulatorConfig::paper_with_nodes(SystemConfig::Baseline.name(), nodes);
                let report = simulate(cfg, &trace, SystemConfig::Baseline.algorithm_config(), None);
                let oracle = oracle_from_baseline(&report);
                BaselineBundle { report, oracle }
            })
    }

    /// Runs one cell, reusing the cached trace and (for Baseline and the
    /// oracle configurations) the cached Baseline run.
    pub fn run_cell(&self, cell: &Cell) -> RunReport {
        if cell.config == SystemConfig::Baseline {
            return self
                .baseline(&cell.app, cell.nodes, cell.seed)
                .report
                .clone();
        }
        let trace = self.trace(&cell.app, cell.nodes, cell.seed);
        let oracle = cell.config.needs_oracle().then(|| {
            self.baseline(&cell.app, cell.nodes, cell.seed)
                .oracle
                .clone()
        });
        let cfg = SimulatorConfig::paper_with_nodes(cell.config.name(), cell.nodes);
        simulate(cfg, &trace, cell.config.algorithm_config(), oracle)
    }

    /// Runs every cell and returns the reports **in `cells` order**,
    /// regardless of completion order.
    ///
    /// Workers pull the next unclaimed index from a shared counter (cheap
    /// work stealing: a long cell never blocks the queue behind it) and
    /// write into that index's slot, so the result layout — and therefore
    /// any output rendered from it — is identical at every `jobs` level.
    pub fn run_cells(&self, cells: &[Cell]) -> Vec<RunReport> {
        let workers = self.jobs.min(cells.len());
        if workers <= 1 {
            return cells.iter().map(|c| self.run_cell(c)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<RunReport>> = cells.iter().map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    slots[i]
                        .set(self.run_cell(cell))
                        .expect("each index is claimed once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker filled every slot"))
            .collect()
    }

    /// Runs the full `apps × configs × seeds` matrix and reshapes the
    /// reports per application (see [`AppMatrix`]). Cells are flattened
    /// app-major, then config, then seed, and the whole flat list is
    /// scheduled at once so parallelism spans applications.
    pub fn run_matrix(
        &self,
        apps: &[AppSpec],
        configs: &[SystemConfig],
        nodes: u16,
        seeds: &[u64],
    ) -> Vec<AppMatrix> {
        let cells: Vec<Cell> = apps
            .iter()
            .flat_map(|app| {
                configs.iter().flat_map(move |&config| {
                    seeds
                        .iter()
                        .map(move |&seed| Cell::new(app.clone(), nodes, seed, config))
                })
            })
            .collect();
        let mut reports = self.run_cells(&cells).into_iter();
        apps.iter()
            .map(|app| AppMatrix {
                app: app.clone(),
                configs: configs.to_vec(),
                seeds: seeds.to_vec(),
                reports: configs
                    .iter()
                    .map(|_| (&mut reports).take(seeds.len()).collect())
                    .collect(),
            })
            .collect()
    }

    /// Traces generated so far (one per distinct (app, nodes, seed)).
    pub fn trace_generations(&self) -> u64 {
        self.traces.computes()
    }

    /// Baseline simulations performed so far (one per distinct triple —
    /// the exactly-once guarantee the caches exist for).
    pub fn baseline_runs(&self) -> u64 {
        self.baselines.computes()
    }

    /// Lookups served from a cache instead of recomputed, across both
    /// caches.
    pub fn cache_hits(&self) -> u64 {
        self.traces.hits() + self.baselines.hits()
    }
}

/// One application's slice of a [`Harness::run_matrix`] result.
#[derive(Debug, Clone)]
pub struct AppMatrix {
    /// The application.
    pub app: AppSpec,
    /// Configuration order of the `reports` rows.
    pub configs: Vec<SystemConfig>,
    /// Seed order of the `reports` columns.
    pub seeds: Vec<u64>,
    /// `reports[config][seed]`, in the order of `configs` and `seeds`.
    pub reports: Vec<Vec<RunReport>>,
}

impl AppMatrix {
    /// The reports of one configuration across all seeds.
    ///
    /// # Panics
    ///
    /// Panics if `config` was not part of the matrix.
    pub fn config_reports(&self, config: SystemConfig) -> &[RunReport] {
        let i = self
            .configs
            .iter()
            .position(|&c| c == config)
            .unwrap_or_else(|| panic!("{} not in the matrix", config.name()));
        &self.reports[i]
    }

    /// Mean/σ aggregation of every configuration across seeds, in the
    /// matrix's configuration order. Each seed's sample is normalized to
    /// the *same seed's* Baseline run.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not include Baseline (nothing to
    /// normalize against).
    pub fn aggregates(&self) -> Vec<AggregateReport> {
        let baselines = self.config_reports(SystemConfig::Baseline);
        self.configs
            .iter()
            .zip(&self.reports)
            .map(|(&config, row)| {
                let mut agg =
                    AggregateReport::new(self.app.name.clone(), config.name(), row[0].threads);
                for (report, baseline) in row.iter().zip(baselines) {
                    agg.push(report, baseline);
                }
                agg
            })
            .collect()
    }

    /// The per-seed reports flattened config-major — the exact layout the
    /// serial `run_config_matrix` loop produces for one seed.
    pub fn into_flat_reports(self) -> Vec<RunReport> {
        self.reports.into_iter().flatten().collect()
    }
}
