//! Stress tests of the real-threads primitives: correctness must hold
//! under random staggering, multiple barrier sites, and mixed
//! barrier/lock usage. Timing-dependent *performance* properties are
//! asserted loosely or not at all — these tests run under CI contention.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tb_core::BarrierPc;
use tb_runtime::{LockSite, SpinBarrier, ThriftyLock, ThriftyRuntimeBarrier};

#[test]
fn thrifty_barrier_survives_random_stagger() {
    // Sized to stay reasonable even on a single-core machine.
    let threads = 4;
    let episodes = 12;
    let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
    let counters: Arc<Vec<AtomicUsize>> =
        Arc::new((0..episodes).map(|_| AtomicUsize::new(0)).collect());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let b = Arc::clone(&barrier);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                // Deterministic pseudo-random stagger per (thread, episode).
                let mut x = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for e in 0..episodes {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    std::thread::sleep(Duration::from_micros(x % 800));
                    counters[e].fetch_add(1, Ordering::SeqCst);
                    b.wait(t, BarrierPc::new(0x7777));
                    assert_eq!(
                        counters[e].load(Ordering::SeqCst),
                        threads,
                        "thread {t} crossed episode {e} early"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(barrier.stats().barriers_completed, episodes as u64);
}

#[test]
fn alternating_sites_keep_independent_predictions() {
    // Two sites with very different intervals, visited alternately; the
    // barrier must stay correct and complete the expected episode count.
    let threads = 3;
    let rounds = 10;
    let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
    let (fast, slow) = (BarrierPc::new(1), BarrierPc::new(2));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    std::thread::sleep(Duration::from_micros(50 * (t as u64 + 1)));
                    b.wait(t, fast);
                    if t == 0 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    b.wait(t, slow);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(barrier.stats().barriers_completed, 2 * rounds as u64);
}

#[test]
fn single_thread_barrier_is_trivially_correct() {
    let barrier = ThriftyRuntimeBarrier::new(1);
    for _ in 0..100 {
        let out = barrier.wait(0, BarrierPc::new(9));
        assert!(out.was_last);
    }
    assert_eq!(barrier.stats().barriers_completed, 100);
}

#[test]
fn barrier_and_lock_compose() {
    // A fork-join loop whose phases mutate shared state under the thrifty
    // lock, separated by the thrifty barrier.
    let threads = 4;
    let episodes = 15;
    let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
    let total = Arc::new(ThriftyLock::new(0u64));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let b = Arc::clone(&barrier);
            let l = Arc::clone(&total);
            std::thread::spawn(move || {
                for e in 0..episodes {
                    {
                        let mut g = l.lock(LockSite::new(0x1));
                        *g += (t + e) as u64;
                    }
                    b.wait(t, BarrierPc::new(0xAB));
                    // After the barrier, every thread of this episode has
                    // contributed.
                    let expected_min: u64 = (0..threads)
                        .map(|x| x as u64) // episode 0 lower bound
                        .sum();
                    assert!(*l.lock(LockSite::new(0x1)) >= expected_min);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let expected: u64 = (0..threads)
        .flat_map(|t| (0..episodes).map(move |e| (t + e) as u64))
        .sum();
    let total = Arc::into_inner(total).expect("all clones joined");
    assert_eq!(total.into_inner(), expected);
}

#[test]
fn spin_and_thrifty_barriers_interoperate() {
    // Different synchronization layers in one program: OS threads using a
    // plain spin barrier for one phase group and a thrifty barrier for
    // another.
    let threads = 4;
    let spin = Arc::new(SpinBarrier::new(threads));
    let thrifty = Arc::new(ThriftyRuntimeBarrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let s = Arc::clone(&spin);
            let b = Arc::clone(&thrifty);
            std::thread::spawn(move || {
                for _ in 0..10 {
                    s.wait();
                    b.wait(t, BarrierPc::new(0xCD));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(thrifty.stats().barriers_completed, 10);
}

#[test]
fn lock_stress_with_rotating_contention() {
    let lock = Arc::new(ThriftyLock::new(Vec::<usize>::new()));
    let threads = 6;
    let pushes = 300;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let l = Arc::clone(&lock);
            std::thread::spawn(move || {
                for i in 0..pushes {
                    let site = LockSite::new((i % 4) as u64);
                    l.lock(site).push(t * pushes + i);
                    if i % 50 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let lock = Arc::into_inner(lock).expect("all clones joined");
    let mut data = lock.into_inner();
    assert_eq!(data.len(), threads * pushes);
    data.sort_unstable();
    data.dedup();
    assert_eq!(
        data.len(),
        threads * pushes,
        "no lost or duplicated updates"
    );
}
