//! Property tests for the hardened real-threads barrier under injected
//! faults: spurious OS wake-ups and delayed release broadcasts (unpark
//! analogs) must never break release-exactly-once semantics, and the
//! time-in-state accounting must stay internally consistent and bounded by
//! wall clock.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tb_core::{AlgorithmConfig, BarrierPc, FaultPlan};
use tb_runtime::{RuntimeSleepLevels, ThriftyRuntimeBarrier, WaitOutcome};
use tb_sim::Cycles;

const PC: BarrierPc = BarrierPc::new(0xFA17);

fn faulted_barrier(threads: usize, seed: u64) -> ThriftyRuntimeBarrier {
    let plan = FaultPlan {
        seed,
        spurious_fire: 0.3,
        delay_unpark: 0.4,
        delay_unpark_mean_ns: 20_000.0,
        ..FaultPlan::none()
    };
    let cfg = AlgorithmConfig {
        sleep_table: RuntimeSleepLevels::table(),
        ..AlgorithmConfig::thrifty()
    };
    ThriftyRuntimeBarrier::with_faults(threads, cfg, &plan)
}

/// Runs `episodes` barrier episodes on `threads` OS threads, asserting
/// inside each thread that every episode's counter reaches exactly
/// `threads` before its `wait` returns — the release-exactly-once check.
fn run_episodes(
    barrier: &Arc<ThriftyRuntimeBarrier>,
    threads: usize,
    episodes: usize,
) -> Vec<Vec<WaitOutcome>> {
    let counters: Arc<Vec<AtomicUsize>> =
        Arc::new((0..episodes).map(|_| AtomicUsize::new(0)).collect());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let b = Arc::clone(barrier);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                let mut outs = Vec::with_capacity(episodes);
                for e in 0..episodes {
                    if t == 0 {
                        // A straggler, so the others learn to park and the
                        // fault paths (park waits, broadcasts) are exercised.
                        std::thread::sleep(Duration::from_micros(400));
                    }
                    counters[e].fetch_add(1, Ordering::SeqCst);
                    let out = b.wait(t, PC);
                    assert_eq!(
                        counters[e].load(Ordering::SeqCst),
                        threads,
                        "episode {e} released before every thread arrived"
                    );
                    outs.push(out);
                }
                outs
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn faulted_episodes_release_every_thread_exactly_once(
        seed in any::<u64>(),
        threads in 2usize..5,
        episodes in 4usize..10,
    ) {
        let barrier = Arc::new(faulted_barrier(threads, seed));
        let t0 = Instant::now();
        let outcomes = run_episodes(&barrier, threads, episodes);
        let wall = Cycles::from_nanos(t0.elapsed().as_nanos() as u64);
        let stats = barrier.stats();

        prop_assert_eq!(stats.barriers_completed, episodes as u64);
        let releasers: usize = outcomes
            .iter()
            .flatten()
            .filter(|o| o.was_last)
            .count();
        prop_assert_eq!(releasers, episodes, "exactly one releaser per episode");

        for (t, outs) in outcomes.iter().enumerate() {
            prop_assert_eq!(outs.len(), episodes, "thread {} returned once per episode", t);
            let ts = &stats.threads[t];
            let was_last = outs.iter().filter(|o| o.was_last).count() as u64;
            // Every early arrival is accounted exactly once as a spin or a
            // sleep episode, even with faults injected.
            prop_assert_eq!(ts.spins + ts.sleeps, episodes as u64 - was_last);
            // The per-state decomposition is the stall total...
            prop_assert_eq!(
                ts.total_stall(),
                ts.spin + ts.yielded + ts.parked + ts.escalated
            );
            // ...never exceeds what the wait calls themselves measured...
            let measured = outs
                .iter()
                .fold(Cycles::ZERO, |acc, o| acc + o.stall);
            prop_assert!(
                ts.total_stall() <= measured,
                "thread {} accounted {} but measured only {}",
                t, ts.total_stall(), measured
            );
            // ...and never exceeds wall time.
            prop_assert!(ts.total_stall() <= wall);
        }
    }
}

#[test]
fn delayed_broadcasts_are_survived() {
    // High-probability, long unpark delays: parked threads must still come
    // back (via their internal timer or the escalated guard) every episode.
    let threads = 3;
    let episodes = 8;
    let plan = FaultPlan {
        seed: 7,
        delay_unpark: 1.0,
        delay_unpark_mean_ns: 300_000.0,
        ..FaultPlan::none()
    };
    let cfg = AlgorithmConfig {
        sleep_table: RuntimeSleepLevels::table(),
        ..AlgorithmConfig::thrifty()
    };
    let barrier = Arc::new(ThriftyRuntimeBarrier::with_faults(threads, cfg, &plan));
    let outcomes = run_episodes(&barrier, threads, episodes);
    assert_eq!(outcomes.len(), threads);
    let stats = barrier.stats();
    assert_eq!(stats.barriers_completed, episodes as u64);
    assert!(
        stats.delayed_unparks > 0,
        "every release should draw a delayed unpark"
    );
}

#[test]
fn overdue_release_escalates_the_residual_spin() {
    // One thread arrives ~30 ms before the releaser: its warm-up residual
    // spin hits the bound and escalates to the guarded park instead of
    // burning the core for the whole gap.
    let barrier = Arc::new(ThriftyRuntimeBarrier::new(2));
    let b = Arc::clone(&barrier);
    let h = std::thread::spawn(move || b.wait(1, PC));
    std::thread::sleep(Duration::from_millis(30));
    barrier.wait(0, PC);
    h.join().unwrap();
    let stats = barrier.stats();
    let t1 = &stats.threads[1];
    assert!(
        t1.escalations >= 1,
        "the long residual spin should escalate: {t1:?}"
    );
    assert!(t1.escalated > Cycles::ZERO);
}
