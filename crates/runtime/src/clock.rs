//! Monotonic nanosecond clock shared by all threads of a runtime barrier.
//!
//! The simulated machine measures time in [`Cycles`] at 1 GHz (1 cycle =
//! 1 ns); on real hardware we feed the same algorithm nanoseconds from a
//! monotonic [`std::time::Instant`], so predictor state and policies carry
//! over unchanged. The paper's assumption holds trivially here — every
//! thread reads the same nominal clock.

use std::time::Instant;
use tb_sim::Cycles;

/// A monotonic clock anchored at its creation instant.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeClock {
    origin: Instant,
}

impl RuntimeClock {
    /// Creates a clock starting at zero *now*.
    pub fn new() -> Self {
        RuntimeClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the clock's origin, as simulator cycles.
    pub fn now(&self) -> Cycles {
        Cycles::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

impl Default for RuntimeClock {
    fn default() -> Self {
        RuntimeClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = RuntimeClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_advances_across_sleep() {
        let c = RuntimeClock::new();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b.saturating_sub(a) >= Cycles::from_millis(1));
    }

    #[test]
    fn copies_share_the_origin() {
        let c = RuntimeClock::new();
        let d = c;
        let a = c.now();
        let b = d.now();
        assert!(b.saturating_sub(a) < Cycles::from_millis(5));
    }
}
