//! The conventional sense-reversal spin barrier (Figure 2 of the paper),
//! on real threads — the Baseline of the runtime comparison.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A sense-reversal spin barrier for a fixed set of threads.
///
/// Unlike `std::sync::Barrier`, waiting threads *spin* (with
/// `std::hint::spin_loop`), exactly like the paper's conventional barrier:
/// all stall time burns CPU.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tb_runtime::SpinBarrier;
///
/// let b = Arc::new(SpinBarrier::new(2));
/// let b2 = Arc::clone(&b);
/// let h = std::thread::spawn(move || b2.wait());
/// b.wait();
/// h.join().unwrap();
/// ```
#[derive(Debug)]
pub struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// Creates a barrier for `total` threads.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a barrier needs at least one thread");
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participating threads.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Blocks (spinning) until all `total` threads have called `wait`.
    /// Returns `true` on the releasing ("last") thread.
    pub fn wait(&self) -> bool {
        let local_sense = !self.sense.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            self.count.store(0, Ordering::Release);
            self.sense.store(local_sense, Ordering::Release);
            true
        } else {
            while self.sense.load(Ordering::Acquire) != local_sense {
                std::hint::spin_loop();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_thread_releases_itself() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait(), "reusable across episodes");
    }

    #[test]
    fn exactly_one_releaser_per_episode() {
        let threads = 8;
        let episodes = 50;
        let b = Arc::new(SpinBarrier::new(threads));
        let releases = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let b = Arc::clone(&b);
                let releases = Arc::clone(&releases);
                std::thread::spawn(move || {
                    for _ in 0..episodes {
                        if b.wait() {
                            releases.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(releases.load(Ordering::Relaxed), episodes);
    }

    #[test]
    fn no_thread_races_ahead() {
        // Every thread increments a per-phase cell; after the barrier, all
        // cells of the current phase must be complete.
        let threads = 4;
        let episodes = 30;
        let b = Arc::new(SpinBarrier::new(threads));
        let phase_counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..episodes).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let b = Arc::clone(&b);
                let counts = Arc::clone(&phase_counts);
                std::thread::spawn(move || {
                    for e in 0..episodes {
                        counts[e].fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        assert_eq!(
                            counts[e].load(Ordering::SeqCst),
                            threads,
                            "a thread crossed the barrier early"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = SpinBarrier::new(0);
    }
}
