//! A thrifty lock — the paper's §7 future work ("extending this concept …
//! to other synchronization constructs, such as locks") realized on real
//! threads.
//!
//! The same idea as the thrifty barrier transfers directly: a contended
//! waiter predicts how long it will wait (history-based, indexed by the
//! *acquisition site*, the analog of the barrier PC), and either spins
//! (short predicted wait) or parks its core (long predicted wait). The
//! release is the external wake-up; a spin cap bounds misprediction the
//! way the barrier's hybrid wake-up does.

use crate::clock::RuntimeClock;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use tb_sim::Cycles;

/// Identifies a static lock-acquisition site (the analog of the barrier
/// PC): waits observed at one site predict future waits at that site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LockSite(u64);

impl LockSite {
    /// Creates a site identifier.
    pub const fn new(id: u64) -> Self {
        LockSite(id)
    }
}

impl fmt::Display for LockSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock-site:{:#x}", self.0)
    }
}

/// Waits predicted longer than this park the core instead of spinning
/// (the analog of the sleep table's profitability bound: twice a park's
/// round-trip cost).
const PARK_THRESHOLD: Cycles = Cycles::from_micros(120);
/// A spinner that has waited this much longer than predicted switches to
/// parking — the misprediction bound.
const SPIN_CAP: Cycles = Cycles::from_micros(200);
/// EWMA weight of the newest wait measurement.
const ALPHA: f64 = 0.5;

/// Accumulated lock statistics (the energy proxy: parked time frees the
/// core, spinning burns it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockStats {
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held.
    pub contended: u64,
    /// Contended acquisitions that parked (immediately or after the spin
    /// cap).
    pub parked: u64,
    /// Time spent spinning for the lock.
    pub spin_time: Cycles,
    /// Time spent parked waiting for the lock.
    pub park_time: Cycles,
}

impl LockStats {
    /// Fraction of contended wait time during which the core was freed.
    pub fn freed_fraction(&self) -> f64 {
        let total = (self.spin_time + self.park_time).as_u64() as f64;
        if total == 0.0 {
            0.0
        } else {
            self.park_time.as_u64() as f64 / total
        }
    }
}

impl fmt::Display for LockStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acq ({} contended, {} parked), spin {}, park {} ({:.1}% freed)",
            self.acquisitions,
            self.contended,
            self.parked,
            self.spin_time,
            self.park_time,
            self.freed_fraction() * 100.0
        )
    }
}

/// A mutual-exclusion lock whose contended waiters predict their wait time
/// per acquisition site and spin or park accordingly.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tb_runtime::{LockSite, ThriftyLock};
///
/// let lock = Arc::new(ThriftyLock::new(0u64));
/// let site = LockSite::new(0x10);
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let l = Arc::clone(&lock);
///         std::thread::spawn(move || {
///             for _ in 0..100 {
///                 *l.lock(site) += 1;
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(*lock.lock(site), 400);
/// ```
#[derive(Debug)]
pub struct ThriftyLock<T> {
    data: UnsafeCell<T>,
    /// The lock word: the actual mutual-exclusion state.
    held: AtomicBool,
    /// Parking support: parkers wait here; unlockers notify.
    gate: Mutex<()>,
    cv: Condvar,
    clock: RuntimeClock,
    predictor: Mutex<HashMap<LockSite, f64>>,
    stats: Mutex<LockStats>,
}

// SAFETY: the lock provides exclusive access to `data`: only the thread
// that won the `held` compare-exchange can construct a guard, and the
// guard releases on drop. `T: Send` suffices because only one thread
// touches the data at a time.
unsafe impl<T: Send> Send for ThriftyLock<T> {}
unsafe impl<T: Send> Sync for ThriftyLock<T> {}

/// RAII guard providing access to the protected data; releases on drop.
#[derive(Debug)]
pub struct ThriftyLockGuard<'a, T> {
    lock: &'a ThriftyLock<T>,
}

impl<T> ThriftyLock<T> {
    /// Creates an unlocked lock protecting `value`.
    pub fn new(value: T) -> Self {
        ThriftyLock {
            data: UnsafeCell::new(value),
            held: AtomicBool::new(false),
            gate: Mutex::new(()),
            cv: Condvar::new(),
            clock: RuntimeClock::new(),
            predictor: Mutex::new(HashMap::new()),
            stats: Mutex::new(LockStats::default()),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// A snapshot of the accumulated statistics.
    pub fn stats(&self) -> LockStats {
        *self.stats.lock()
    }

    /// The current wait prediction for a site, if any history exists.
    pub fn predicted_wait(&self, site: LockSite) -> Option<Cycles> {
        self.predictor
            .lock()
            .get(&site)
            .map(|&ns| Cycles::from_nanos(ns.round() as u64))
    }

    fn try_acquire(&self) -> bool {
        self.held
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Acquires the lock at `site`, spinning or parking per the site's
    /// predicted wait.
    pub fn lock(&self, site: LockSite) -> ThriftyLockGuard<'_, T> {
        let start = self.clock.now();
        if self.try_acquire() {
            let mut stats = self.stats.lock();
            stats.acquisitions += 1;
            return ThriftyLockGuard { lock: self };
        }
        // Contended: decide like the barrier's sleep() call.
        let predicted = self.predictor.lock().get(&site).copied();
        let park_now = predicted.is_some_and(|ns| ns > PARK_THRESHOLD.as_u64() as f64);
        let mut spin_end = start;
        if !park_now {
            // Spin, bounded by the prediction plus the misprediction cap.
            let spin_deadline = start
                + predicted
                    .map(|ns| Cycles::from_nanos(ns.round() as u64))
                    .unwrap_or(Cycles::ZERO)
                + SPIN_CAP;
            loop {
                if self.try_acquire() {
                    spin_end = self.clock.now();
                    self.finish_acquire(site, start, spin_end, spin_end, false);
                    return ThriftyLockGuard { lock: self };
                }
                if self.clock.now() >= spin_deadline {
                    spin_end = self.clock.now();
                    break;
                }
                std::hint::spin_loop();
            }
        }
        // Park until the holder releases.
        let mut guard = self.gate.lock();
        while !self.try_acquire() {
            self.cv.wait_for(&mut guard, Duration::from_millis(1));
        }
        drop(guard);
        let acquired = self.clock.now();
        self.finish_acquire(site, start, spin_end, acquired, true);
        ThriftyLockGuard { lock: self }
    }

    fn finish_acquire(
        &self,
        site: LockSite,
        start: Cycles,
        spin_end: Cycles,
        acquired: Cycles,
        parked: bool,
    ) {
        let wait_ns = acquired.saturating_sub(start).as_u64() as f64;
        {
            let mut pred = self.predictor.lock();
            pred.entry(site)
                .and_modify(|e| *e = (1.0 - ALPHA) * *e + ALPHA * wait_ns)
                .or_insert(wait_ns);
        }
        let mut stats = self.stats.lock();
        stats.acquisitions += 1;
        stats.contended += 1;
        stats.spin_time += spin_end.saturating_sub(start);
        if parked {
            stats.parked += 1;
            stats.park_time += acquired.saturating_sub(spin_end);
        }
    }

    fn unlock(&self) {
        self.held.store(false, Ordering::Release);
        // Take the gate so a parker cannot check-then-sleep between our
        // store and the notification.
        drop(self.gate.lock());
        self.cv.notify_one();
    }
}

impl<T: Default> Default for ThriftyLock<T> {
    fn default() -> Self {
        ThriftyLock::new(T::default())
    }
}

impl<T> Deref for ThriftyLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while this thread holds the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for ThriftyLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard exists only while this thread holds the lock,
        // and `&mut self` guarantees no aliasing through this guard.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for ThriftyLockGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const SITE: LockSite = LockSite::new(0x42);

    #[test]
    fn provides_mutual_exclusion() {
        let lock = Arc::new(ThriftyLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *l.lock(SITE) += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let lock = Arc::into_inner(lock).expect("all clones joined");
        assert_eq!(lock.into_inner(), 8_000);
    }

    #[test]
    fn uncontended_locks_are_not_counted_contended() {
        let lock = ThriftyLock::new(());
        for _ in 0..10 {
            drop(lock.lock(SITE));
        }
        let s = lock.stats();
        assert_eq!(s.acquisitions, 10);
        assert_eq!(s.contended, 0);
        assert_eq!(s.parked, 0);
    }

    #[test]
    fn long_holds_teach_waiters_to_park() {
        let lock = Arc::new(ThriftyLock::new(0u32));
        let l = Arc::clone(&lock);
        // The holder keeps the lock for 3 ms, repeatedly; the waiter should
        // learn to park after the first long wait.
        let holder = std::thread::spawn(move || {
            for _ in 0..6 {
                let mut g = l.lock(LockSite::new(0x1));
                *g += 1;
                std::thread::sleep(Duration::from_millis(3));
                drop(g);
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        std::thread::sleep(Duration::from_micros(300));
        for _ in 0..5 {
            let g = lock.lock(SITE);
            drop(g);
            std::thread::sleep(Duration::from_micros(500));
        }
        holder.join().unwrap();
        let s = lock.stats();
        assert!(s.parked > 0, "long waits should park: {s}");
        assert!(
            lock.predicted_wait(SITE).unwrap_or(Cycles::ZERO) > Cycles::from_micros(100),
            "prediction learned a long wait"
        );
    }

    #[test]
    fn predictor_is_per_site() {
        let lock = ThriftyLock::new(());
        drop(lock.lock(LockSite::new(1)));
        assert_eq!(
            lock.predicted_wait(LockSite::new(1)),
            None,
            "uncontended: no update"
        );
        assert_eq!(lock.predicted_wait(LockSite::new(2)), None);
    }

    #[test]
    fn guard_gives_data_access() {
        let lock = ThriftyLock::new(vec![1, 2, 3]);
        {
            let mut g = lock.lock(SITE);
            g.push(4);
            assert_eq!(g.len(), 4);
        }
        assert_eq!(*lock.lock(SITE), vec![1, 2, 3, 4]);
    }

    #[test]
    fn default_constructs_unlocked() {
        let lock: ThriftyLock<u32> = ThriftyLock::default();
        assert_eq!(*lock.lock(SITE), 0);
    }

    #[test]
    fn stats_display() {
        let s = LockStats::default().to_string();
        assert!(s.contains("acq"));
        assert!(s.contains("freed"));
    }

    #[test]
    fn stress_many_sites_and_threads() {
        let lock = Arc::new(ThriftyLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let l = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let site = LockSite::new(i % 3);
                        let mut g = l.lock(site);
                        *g += t as u64 % 2 + 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = *lock.lock(SITE);
        assert_eq!(total, 500 * (1 + 2 + 1 + 2));
    }
}
