//! Time-in-state accounting for the runtime barrier — the energy proxy.
//!
//! On real hardware we cannot meter joules, but the paper's energy story
//! maps directly onto scheduler states: spinning burns a core at spin
//! power, yielding shares it, parking frees it. Tracking nanoseconds per
//! state therefore plays the role of the simulator's energy ledger.

use serde::{Deserialize, Serialize};
use std::fmt;
use tb_sim::Cycles;

/// Per-thread time-in-state totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Time spent busy-spinning at barriers (initial + residual spin).
    pub spin: Cycles,
    /// Time spent in the yield loop (shallow sleep analog).
    pub yielded: Cycles,
    /// Time spent parked (deep sleep analog).
    pub parked: Cycles,
    /// Time spent parked on the escalated guard after the residual-spin
    /// bound (a delayed or lost release broadcast; the hardened path).
    pub escalated: Cycles,
    /// Barrier episodes in which this thread slept (yield or park).
    pub sleeps: u64,
    /// Barrier episodes in which this thread spun conventionally.
    pub spins: u64,
    /// Episodes where the park timed out before the release (early
    /// wake-up; residual spin followed).
    pub early_wakeups: u64,
    /// Injected spurious OS wake-ups absorbed by the park predicate loop.
    pub spurious_wakeups: u64,
    /// Residual spins that hit the bound and escalated to a guarded park.
    pub escalations: u64,
    /// §3.3.3 cut-off activations observed by this thread.
    pub cutoff_disables: u64,
}

impl ThreadStats {
    /// Total stall time at barriers.
    pub fn total_stall(&self) -> Cycles {
        self.spin + self.yielded + self.parked + self.escalated
    }

    /// The fraction of stall time the core was *freed* (parked) rather
    /// than burned — the runtime's headline "energy" metric.
    pub fn freed_fraction(&self) -> f64 {
        let total = self.total_stall().as_u64() as f64;
        if total == 0.0 {
            0.0
        } else {
            self.parked.as_u64() as f64 / total
        }
    }

    /// Merges another thread's totals into this one.
    pub fn merge(&mut self, other: &ThreadStats) {
        self.spin += other.spin;
        self.yielded += other.yielded;
        self.parked += other.parked;
        self.escalated += other.escalated;
        self.sleeps += other.sleeps;
        self.spins += other.spins;
        self.early_wakeups += other.early_wakeups;
        self.spurious_wakeups += other.spurious_wakeups;
        self.escalations += other.escalations;
        self.cutoff_disables += other.cutoff_disables;
    }
}

impl fmt::Display for ThreadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spin {} yield {} park {} ({} sleeps, {} spins, {:.1}% freed)",
            self.spin,
            self.yielded,
            self.parked,
            self.sleeps,
            self.spins,
            self.freed_fraction() * 100.0
        )
    }
}

/// Whole-barrier statistics: the per-thread totals plus episode counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Per-thread time-in-state totals.
    pub threads: Vec<ThreadStats>,
    /// Barrier episodes completed.
    pub barriers_completed: u64,
    /// Injected delayed-unpark faults taken by releasers.
    pub delayed_unparks: u64,
}

impl RuntimeStats {
    /// Sum of all threads' totals.
    pub fn combined(&self) -> ThreadStats {
        let mut out = ThreadStats::default();
        for t in &self.threads {
            out.merge(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freed_fraction_bounds() {
        let mut s = ThreadStats::default();
        assert_eq!(s.freed_fraction(), 0.0);
        s.spin = Cycles::from_micros(25);
        s.parked = Cycles::from_micros(75);
        assert!((s.freed_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(s.total_stall(), Cycles::from_micros(100));
    }

    #[test]
    fn merge_is_additive() {
        let mut a = ThreadStats {
            spin: Cycles::from_micros(1),
            sleeps: 2,
            ..Default::default()
        };
        let b = ThreadStats {
            spin: Cycles::from_micros(3),
            sleeps: 5,
            early_wakeups: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.spin, Cycles::from_micros(4));
        assert_eq!(a.sleeps, 7);
        assert_eq!(a.early_wakeups, 1);
    }

    #[test]
    fn combined_sums_threads() {
        let stats = RuntimeStats {
            threads: vec![
                ThreadStats {
                    parked: Cycles::from_micros(10),
                    ..Default::default()
                },
                ThreadStats {
                    parked: Cycles::from_micros(20),
                    ..Default::default()
                },
            ],
            barriers_completed: 4,
            delayed_unparks: 0,
        };
        assert_eq!(stats.combined().parked, Cycles::from_micros(30));
    }

    #[test]
    fn display_is_informative() {
        let s = ThreadStats::default().to_string();
        assert!(s.contains("spin"));
        assert!(s.contains("freed"));
    }
}
