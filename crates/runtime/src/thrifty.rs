//! The thrifty barrier on real threads.
//!
//! Uses [`tb_core::BarrierAlgorithm`] unchanged: the same PC-indexed
//! last-value BIT predictor, the same derived stall times, the same
//! deepest-state-that-fits policy and §3.3.3 cut-off. Only the physical
//! actions differ: "sleep states" are a yield loop and a timed park, the
//! external wake-up is the releaser's condvar broadcast, and the internal
//! wake-up is the park timeout.

use crate::clock::RuntimeClock;
use crate::stats::{RuntimeStats, ThreadStats};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tb_core::{AlgorithmConfig, BarrierAlgorithm, BarrierPc, FaultPlan, SleepChoice, ThreadId};
use tb_energy::{SleepState, SleepStateId, SleepTable};
use tb_faults::FaultInjector;
use tb_sim::Cycles;
use tb_trace::{SinkHandle, SpscSink, TraceEvent, TraceEventKind};

/// Residual-spin iterations before the spinner stops burning its core and
/// escalates to a guarded park (see [`ESCALATE_GUARD`]). On a healthy
/// barrier the flip lands orders of magnitude sooner; only a lost or
/// badly delayed release broadcast reaches the bound.
const RESIDUAL_SPIN_BOUND: u32 = 1 << 18;

/// Re-check period of the escalated park: the runtime guard timer. A
/// missed broadcast costs at most one period per re-arm, so every episode
/// terminates even if the condvar signal is lost entirely.
const ESCALATE_GUARD: Duration = Duration::from_micros(200);

/// The OS-level sleep-state table: a yield loop (shallow) and a timed park
/// (deep).
///
/// "Power savings" are core-occupancy proxies: a yielding thread still
/// competes for its core, a parked thread frees it entirely. Transition
/// latencies reflect scheduler costs (a quantum hand-off, a futex round
/// trip) and play the same role as the paper's PLL stabilization times.
#[derive(Debug, Clone)]
pub struct RuntimeSleepLevels;

impl RuntimeSleepLevels {
    /// Index of the yield level in [`RuntimeSleepLevels::table`].
    pub const YIELD: usize = 0;
    /// Index of the park level.
    pub const PARK: usize = 1;

    /// The two-level table.
    pub fn table() -> SleepTable {
        SleepTable::from_states(vec![
            SleepState::new("yield", 0.30, Cycles::from_micros(5), true, false),
            SleepState::new("park", 0.95, Cycles::from_micros(30), true, false),
        ])
    }

    /// `true` when the chosen state is the park level.
    pub fn is_park(id: SleepStateId) -> bool {
        id.index() == Self::PARK
    }
}

/// What one `wait` call did (for tests and instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitOutcome {
    /// `true` on the releasing thread.
    pub was_last: bool,
    /// The sleep/spin decision taken (always `Spin` for the releaser).
    pub choice: SleepChoice,
    /// The stall predicted at arrival, if any.
    pub predicted_stall: Option<Cycles>,
    /// Measured wall-clock stall from arrival to departure.
    pub stall: Cycles,
    /// The §3.3.3 overprediction penalty measured after waking.
    pub penalty: Cycles,
    /// Whether this episode tripped the cut-off for (thread, site).
    pub disabled: bool,
}

#[derive(Debug)]
struct Inner {
    total: usize,
    clock: RuntimeClock,
    count: AtomicUsize,
    sense: AtomicBool,
    algo: Mutex<BarrierAlgorithm>,
    gate: Mutex<()>,
    condvar: Condvar,
    stats: Vec<Mutex<ThreadStats>>,
    barriers: AtomicU64,
    trace: SinkHandle,
    sink: Option<Arc<SpscSink>>,
    faults: Option<Mutex<FaultInjector>>,
    delayed_unparks: AtomicU64,
}

/// A reusable thrifty barrier for a fixed set of OS threads.
///
/// Wrap it in an [`std::sync::Arc`] and have each thread call
/// [`ThriftyRuntimeBarrier::wait`] with its dense thread index and the
/// barrier site's PC.
#[derive(Debug)]
pub struct ThriftyRuntimeBarrier {
    inner: Inner,
}

impl ThriftyRuntimeBarrier {
    /// Creates a barrier for `total` threads with the default runtime
    /// configuration (thrifty algorithm over the yield/park table).
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: usize) -> Self {
        let cfg = AlgorithmConfig {
            sleep_table: RuntimeSleepLevels::table(),
            ..AlgorithmConfig::thrifty()
        };
        ThriftyRuntimeBarrier::with_config(total, cfg)
    }

    /// Creates a barrier with an explicit algorithm configuration (e.g. a
    /// conventional baseline via [`AlgorithmConfig::baseline`], or ablated
    /// thresholds).
    ///
    /// # Panics
    ///
    /// Panics if `total == 0` or the table has more than two states (the
    /// runtime knows how to execute only yield and park).
    pub fn with_config(total: usize, cfg: AlgorithmConfig) -> Self {
        ThriftyRuntimeBarrier::build(total, cfg, None)
    }

    /// Creates a traced barrier: every thread records lifecycle events into
    /// its own lock-free ring of `capacity_per_thread` events (overflowing
    /// rings drop the *newest* events so old history stays intact). Drain
    /// with [`ThriftyRuntimeBarrier::drain_trace`].
    ///
    /// # Panics
    ///
    /// As [`ThriftyRuntimeBarrier::with_config`], plus
    /// `capacity_per_thread == 0`.
    pub fn with_trace(total: usize, cfg: AlgorithmConfig, capacity_per_thread: usize) -> Self {
        let sink = Arc::new(SpscSink::new(total, capacity_per_thread));
        ThriftyRuntimeBarrier::build(total, cfg, Some(sink))
    }

    /// Creates a barrier with seed-driven fault injection: spurious park
    /// wake-ups (absorbed by the predicate loop) and delayed release
    /// broadcasts (the unpark-analog delay), per `plan`. A disabled plan
    /// yields a plain barrier.
    ///
    /// # Panics
    ///
    /// As [`ThriftyRuntimeBarrier::with_config`].
    pub fn with_faults(total: usize, cfg: AlgorithmConfig, plan: &FaultPlan) -> Self {
        let mut barrier = ThriftyRuntimeBarrier::build(total, cfg, None);
        barrier.inner.faults = FaultInjector::from_plan(plan).map(Mutex::new);
        barrier
    }

    fn build(total: usize, cfg: AlgorithmConfig, sink: Option<Arc<SpscSink>>) -> Self {
        assert!(total > 0, "a barrier needs at least one thread");
        assert!(
            cfg.sleep_table.len() <= 2,
            "the runtime maps at most two sleep levels (yield, park)"
        );
        let trace = match &sink {
            Some(s) => SinkHandle::new(Arc::clone(s) as _),
            None => SinkHandle::disabled(),
        };
        let mut algo = BarrierAlgorithm::new(cfg, total);
        algo.set_trace(trace.clone());
        ThriftyRuntimeBarrier {
            inner: Inner {
                total,
                clock: RuntimeClock::new(),
                count: AtomicUsize::new(0),
                sense: AtomicBool::new(false),
                algo: Mutex::new(algo),
                gate: Mutex::new(()),
                condvar: Condvar::new(),
                stats: (0..total)
                    .map(|_| Mutex::new(ThreadStats::default()))
                    .collect(),
                barriers: AtomicU64::new(0),
                trace,
                sink,
                faults: None,
                delayed_unparks: AtomicU64::new(0),
            },
        }
    }

    /// Drains and returns all trace events captured so far, sorted by
    /// `(timestamp, thread)`, or `None` when the barrier was built without
    /// tracing. Call between episodes or after joining the workers; events
    /// pushed concurrently with the drain may be missed until the next one.
    pub fn drain_trace(&self) -> Option<Vec<TraceEvent>> {
        self.inner.sink.as_ref().map(|s| s.drain_sorted())
    }

    /// Events lost to ring overflow so far (0 without tracing).
    pub fn trace_dropped(&self) -> u64 {
        self.inner.sink.as_ref().map_or(0, |s| s.dropped())
    }

    /// Number of participating threads.
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// A snapshot of the accumulated statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            threads: self.inner.stats.iter().map(|s| *s.lock()).collect(),
            barriers_completed: self.inner.barriers.load(Ordering::Acquire),
            delayed_unparks: self.inner.delayed_unparks.load(Ordering::Acquire),
        }
    }

    /// Waits at the barrier site `pc` as thread `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread >= total`. Calling with a thread index that is
    /// concurrently used by another OS thread corrupts the statistics but
    /// not the barrier itself.
    pub fn wait(&self, thread: usize, pc: BarrierPc) -> WaitOutcome {
        assert!(thread < self.inner.total, "thread index out of range");
        let inner = &self.inner;
        let tid = ThreadId::new(thread);
        let local_sense = !inner.sense.load(Ordering::Acquire);
        let arrived = inner.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == inner.total {
            return self.release(tid, pc, local_sense);
        }
        let arrival = inner.clock.now();
        let episode = inner.barriers.load(Ordering::Acquire);
        inner.trace.emit(TraceEvent::new(
            arrival,
            thread,
            TraceEventKind::Arrival {
                episode,
                pc: pc.as_u64(),
                last: false,
            },
        ));
        let decision = inner.algo.lock().on_early_arrival(tid, pc, arrival);
        let (wake_ts, spin_since) = match decision.choice {
            SleepChoice::Spin => {
                inner.stats[thread].lock().spins += 1;
                inner.trace.emit(TraceEvent::new(
                    arrival,
                    thread,
                    TraceEventKind::SpinStart {
                        episode,
                        pc: pc.as_u64(),
                    },
                ));
                (None, arrival)
            }
            SleepChoice::Sleep { state, .. } => {
                inner.stats[thread].lock().sleeps += 1;
                inner.trace.emit(TraceEvent::new(
                    arrival,
                    thread,
                    TraceEventKind::SleepStart {
                        episode,
                        pc: pc.as_u64(),
                        state: state.index() as u32,
                        needs_flush: false,
                    },
                ));
                let (woke, timed_out, early) = if RuntimeSleepLevels::is_park(state) {
                    self.park_until(thread, local_sense, decision.wakeup.internal_at)
                } else {
                    self.yield_until(thread, local_sense, decision.wakeup.internal_at)
                };
                let wake_kind = if timed_out {
                    TraceEventKind::InternalWake {
                        episode,
                        pc: pc.as_u64(),
                    }
                } else {
                    TraceEventKind::ExternalWake {
                        episode,
                        pc: pc.as_u64(),
                    }
                };
                inner.trace.emit(TraceEvent::new(woke, thread, wake_kind));
                if early {
                    inner.trace.emit(TraceEvent::new(
                        woke,
                        thread,
                        TraceEventKind::ResidualSpin {
                            episode,
                            pc: pc.as_u64(),
                        },
                    ));
                }
                (Some(woke), woke)
            }
        };
        // Residual spin (§3.3.1): correctness never depends on the wake-up
        // being exact. Unlike the simulated hardware spinloop, a real
        // runtime must tolerate oversubscription (more threads than
        // cores), so the spin cedes the core every few thousand
        // iterations — without this, spinners can starve the releaser on
        // small machines.
        let mut iterations = 0u32;
        let mut escalated_at: Option<Cycles> = None;
        while inner.sense.load(Ordering::Acquire) != local_sense {
            std::hint::spin_loop();
            iterations += 1;
            if iterations.is_multiple_of(4096) {
                std::thread::yield_now();
            }
            if iterations >= RESIDUAL_SPIN_BOUND {
                // The flip is overdue — a delayed or lost release signal.
                // Stop burning the core: park on the condvar, re-arming a
                // guard timeout so even a missed broadcast terminates.
                escalated_at = Some(inner.clock.now());
                let mut guard = inner.gate.lock();
                while inner.sense.load(Ordering::Acquire) != local_sense {
                    let _ = inner.condvar.wait_for(&mut guard, ESCALATE_GUARD);
                }
                drop(guard);
                break;
            }
        }
        let departed = inner.clock.now();
        {
            let mut stats = inner.stats[thread].lock();
            match escalated_at {
                Some(since) => {
                    stats.spin += since.saturating_sub(spin_since);
                    stats.escalated += departed.saturating_sub(since);
                    stats.escalations += 1;
                }
                None => stats.spin += departed.saturating_sub(spin_since),
            }
        }
        let finish = inner
            .algo
            .lock()
            .finish_barrier(tid, pc, wake_ts.unwrap_or(departed));
        if finish.disabled {
            inner.stats[thread].lock().cutoff_disables += 1;
        }
        inner.trace.emit(TraceEvent::new(
            departed,
            thread,
            TraceEventKind::Depart {
                episode,
                pc: pc.as_u64(),
                wake_latency: finish.penalty,
            },
        ));
        WaitOutcome {
            was_last: false,
            choice: decision.choice,
            predicted_stall: decision.predicted_stall,
            stall: departed.saturating_sub(arrival),
            penalty: finish.penalty,
            disabled: finish.disabled,
        }
    }

    fn release(&self, tid: ThreadId, pc: BarrierPc, local_sense: bool) -> WaitOutcome {
        let inner = &self.inner;
        let now = inner.clock.now();
        let episode = inner.barriers.load(Ordering::Acquire);
        inner.trace.emit(TraceEvent::new(
            now,
            tid.index(),
            TraceEventKind::Arrival {
                episode,
                pc: pc.as_u64(),
                last: true,
            },
        ));
        let mut algo = inner.algo.lock();
        algo.on_last_arrival(tid, pc, now);
        inner.count.store(0, Ordering::Release);
        {
            // Publish the flip under the gate so parked threads cannot miss
            // the broadcast between their predicate check and their wait.
            let _g = inner.gate.lock();
            inner.sense.store(local_sense, Ordering::Release);
        }
        // Fault (d): a delayed unpark analog — the flip is visible (spinners
        // proceed) but the broadcast that actually wakes parked threads is
        // held back. Parked threads ride their internal timeout or the
        // escalated guard until it lands.
        if let Some(faults) = &inner.faults {
            if let Some(delay) = faults.lock().unpark_delay() {
                inner.delayed_unparks.fetch_add(1, Ordering::AcqRel);
                std::thread::sleep(Duration::from_nanos(delay.as_u64()));
            }
        }
        inner.condvar.notify_all();
        let finish = algo.finish_barrier(tid, pc, inner.clock.now());
        drop(algo);
        inner.barriers.fetch_add(1, Ordering::AcqRel);
        inner.trace.emit(TraceEvent::new(
            inner.clock.now(),
            tid.index(),
            TraceEventKind::Depart {
                episode,
                pc: pc.as_u64(),
                wake_latency: Cycles::ZERO,
            },
        ));
        WaitOutcome {
            was_last: true,
            choice: SleepChoice::Spin,
            predicted_stall: None,
            stall: Cycles::ZERO,
            penalty: finish.penalty,
            disabled: finish.disabled,
        }
    }

    /// Deep sleep: park on the condvar until the release broadcast
    /// (external wake-up) or the internal timeout. Returns the wake-up
    /// timestamp plus whether the timer fired and whether it fired *early*
    /// (before the release).
    fn park_until(
        &self,
        thread: usize,
        local_sense: bool,
        deadline: Option<Cycles>,
    ) -> (Cycles, bool, bool) {
        let inner = &self.inner;
        let start = inner.clock.now();
        let mut spurious = 0u64;
        let mut guard = inner.gate.lock();
        let mut timed_out = false;
        while inner.sense.load(Ordering::Acquire) != local_sense {
            // Fault (b), runtime flavor: a spurious OS wake-up — the wait
            // returns almost immediately without a signal. The predicate
            // loop absorbs it; the tiny timed wait releases the gate so the
            // releaser is never blocked by injection.
            let is_spurious = inner
                .faults
                .as_ref()
                .is_some_and(|f| f.lock().spurious_park_wake());
            if is_spurious {
                spurious += 1;
                let _ = inner.condvar.wait_for(&mut guard, Duration::from_micros(1));
                continue;
            }
            match deadline {
                Some(at) => {
                    let now = inner.clock.now();
                    if now >= at {
                        timed_out = true;
                        break;
                    }
                    let remaining = Duration::from_nanos(at.saturating_sub(now).as_u64());
                    if inner.condvar.wait_for(&mut guard, remaining).timed_out() {
                        timed_out = true;
                        break;
                    }
                }
                None => {
                    // Even an untimed park gets the guard period: a lost
                    // broadcast must not strand the thread forever.
                    let _ = inner.condvar.wait_for(&mut guard, ESCALATE_GUARD);
                }
            }
        }
        drop(guard);
        let woke = inner.clock.now();
        let early = timed_out && inner.sense.load(Ordering::Acquire) != local_sense;
        let mut stats = inner.stats[thread].lock();
        stats.parked += woke.saturating_sub(start);
        stats.spurious_wakeups += spurious;
        if early {
            stats.early_wakeups += 1;
        }
        (woke, timed_out, early)
    }

    /// Shallow sleep: cede the core repeatedly until the flip or the
    /// internal timeout. Same return convention as
    /// [`ThriftyRuntimeBarrier::park_until`].
    fn yield_until(
        &self,
        thread: usize,
        local_sense: bool,
        deadline: Option<Cycles>,
    ) -> (Cycles, bool, bool) {
        let inner = &self.inner;
        let start = inner.clock.now();
        let mut timed_out = false;
        while inner.sense.load(Ordering::Acquire) != local_sense {
            if let Some(at) = deadline {
                if inner.clock.now() >= at {
                    timed_out = true;
                    break;
                }
            }
            std::thread::yield_now();
        }
        let woke = inner.clock.now();
        let early = timed_out && inner.sense.load(Ordering::Acquire) != local_sense;
        let mut stats = inner.stats[thread].lock();
        stats.yielded += woke.saturating_sub(start);
        if early {
            stats.early_wakeups += 1;
        }
        (woke, timed_out, early)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    const PC: BarrierPc = BarrierPc::new(0xBEEF);

    fn run_phases(
        barrier: Arc<ThriftyRuntimeBarrier>,
        threads: usize,
        episodes: usize,
        stagger: impl Fn(usize, usize) -> Duration + Send + Sync + Copy + 'static,
    ) {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    for e in 0..episodes {
                        std::thread::sleep(stagger(t, e));
                        b.wait(t, PC);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn synchronizes_correctly_under_stagger() {
        let threads = 4;
        let episodes = 20;
        let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
        let counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..episodes).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let b = Arc::clone(&barrier);
                let counts = Arc::clone(&counts);
                std::thread::spawn(move || {
                    for e in 0..episodes {
                        std::thread::sleep(Duration::from_micros((t as u64) * 300));
                        counts[e].fetch_add(1, Ordering::SeqCst);
                        b.wait(t, PC);
                        assert_eq!(counts[e].load(Ordering::SeqCst), threads);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(barrier.stats().barriers_completed, episodes as u64);
    }

    #[test]
    fn imbalanced_workload_parks_the_early_threads() {
        // Thread 3 is an 8 ms straggler every episode; the others should
        // learn to park and free their cores for a good share of the stall.
        // (Thresholds are loose because the test suite runs under CPU
        // contention, which inflates scheduling noise.)
        let threads = 4;
        let episodes = 12;
        let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
        run_phases(Arc::clone(&barrier), threads, episodes, |t, _| {
            if t == 3 {
                Duration::from_millis(8)
            } else {
                Duration::from_micros(100)
            }
        });
        let stats = barrier.stats();
        let combined = stats.combined();
        assert!(combined.sleeps > 0, "early threads slept: {combined}");
        assert!(
            combined.freed_fraction() > 0.25,
            "a good share of stall time should be parked, got {combined}"
        );
    }

    #[test]
    fn warmup_episode_spins() {
        let threads = 2;
        let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
        let b = Arc::clone(&barrier);
        let h = std::thread::spawn(move || b.wait(1, PC));
        std::thread::sleep(Duration::from_millis(1));
        barrier.wait(0, PC);
        h.join().unwrap();
        let stats = barrier.stats();
        assert_eq!(stats.combined().sleeps, 0, "no history on instance 0");
        assert_eq!(stats.combined().spins, 1);
    }

    #[test]
    fn balanced_workload_mostly_spins() {
        // Stalls far below the yield profitability bound: the policy should
        // keep everyone spinning.
        let threads = 4;
        let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
        run_phases(Arc::clone(&barrier), threads, 10, |_, _| {
            Duration::from_micros(3)
        });
        let stats = barrier.stats().combined();
        assert!(
            stats.spins > stats.sleeps,
            "balanced phases should spin: {stats}"
        );
    }

    #[test]
    fn baseline_config_never_sleeps() {
        let threads = 4;
        let cfg = AlgorithmConfig {
            sleep_table: RuntimeSleepLevels::table(),
            ..AlgorithmConfig::baseline()
        };
        let barrier = Arc::new(ThriftyRuntimeBarrier::with_config(threads, cfg));
        run_phases(Arc::clone(&barrier), threads, 8, |t, _| {
            Duration::from_millis(if t == 0 { 2 } else { 0 })
        });
        let stats = barrier.stats().combined();
        assert_eq!(stats.sleeps, 0);
        assert_eq!(stats.parked, Cycles::ZERO);
    }

    #[test]
    fn distinct_sites_predict_independently() {
        let threads = 2;
        let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
        let pc2 = BarrierPc::new(0xCAFE);
        let b = Arc::clone(&barrier);
        let h = std::thread::spawn(move || {
            for _ in 0..6 {
                b.wait(1, PC);
                b.wait(1, pc2);
            }
        });
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(2));
            barrier.wait(0, PC);
            barrier.wait(0, pc2);
        }
        h.join().unwrap();
        assert_eq!(barrier.stats().barriers_completed, 12);
    }

    #[test]
    fn wait_outcome_reports_prediction() {
        let threads = 2;
        let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
        let b = Arc::clone(&barrier);
        let outcomes = std::thread::spawn(move || {
            let mut outs = Vec::new();
            for _ in 0..5 {
                outs.push(b.wait(1, PC));
            }
            outs
        });
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(2));
            barrier.wait(0, PC);
        }
        let outs = outcomes.join().unwrap();
        assert!(outs.iter().all(|o| !o.was_last));
        assert_eq!(outs[0].predicted_stall, None, "warm-up has no prediction");
        assert!(
            outs[2..].iter().any(|o| o.predicted_stall.is_some()),
            "later episodes predict"
        );
        assert!(outs.iter().all(|o| o.stall > Cycles::ZERO));
    }

    #[test]
    fn traced_barrier_captures_consistent_events() {
        use tb_trace::{TraceKindCounts, TraceSummary};
        let threads = 4;
        let episodes = 10;
        let cfg = AlgorithmConfig {
            sleep_table: RuntimeSleepLevels::table(),
            ..AlgorithmConfig::thrifty()
        };
        let barrier = Arc::new(ThriftyRuntimeBarrier::with_trace(threads, cfg, 4096));
        run_phases(Arc::clone(&barrier), threads, episodes, |t, _| {
            if t == 0 {
                Duration::from_millis(4)
            } else {
                Duration::from_micros(50)
            }
        });
        let events = barrier.drain_trace().expect("tracing was enabled");
        assert_eq!(barrier.trace_dropped(), 0);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "sorted");

        let counts = TraceKindCounts::from_events(&events);
        let stats = barrier.stats().combined();
        let total = (threads * episodes) as u64;
        assert_eq!(counts.releases, episodes as u64);
        assert_eq!(counts.last_arrivals, episodes as u64);
        assert_eq!(counts.arrivals, total - episodes as u64);
        assert_eq!(counts.departs, total);
        assert_eq!(counts.sleep_starts, stats.sleeps);
        assert_eq!(counts.spin_starts, stats.spins);
        assert_eq!(
            counts.internal_wakes + counts.external_wakes,
            stats.sleeps,
            "every sleep woke exactly once"
        );
        assert_eq!(counts.residual_spins, stats.early_wakeups);
        assert!(counts.sleep_starts > 0, "the straggler forced sleeps");

        let summary = TraceSummary::from_events(&events, barrier.trace_dropped());
        assert_eq!(summary.events, events.len() as u64);
        // The latency digest covers sleeper departures only; each sleep is
        // followed by exactly one departure of that thread.
        assert_eq!(summary.wake_latency.samples, counts.sleep_starts);
    }

    #[test]
    fn untraced_barrier_has_no_trace() {
        let barrier = ThriftyRuntimeBarrier::new(1);
        assert!(barrier.drain_trace().is_none());
        assert_eq!(barrier.trace_dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "thread index out of range")]
    fn out_of_range_thread_rejected() {
        ThriftyRuntimeBarrier::new(2).wait(2, PC);
    }

    #[test]
    #[should_panic(expected = "at most two sleep levels")]
    fn three_state_table_rejected() {
        let cfg = AlgorithmConfig::thrifty(); // paper table: 3 states
        let _ = ThriftyRuntimeBarrier::with_config(2, cfg);
    }
}
