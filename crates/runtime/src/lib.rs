#![warn(missing_docs)]
//! Real-threads thrifty barrier.
//!
//! The paper's mechanism needs hardware sleep states and a cache-controller
//! extension, but the *algorithm* — PC-indexed BIT prediction, derived
//! stall times, deepest-state-that-fits selection, hybrid wake-up with an
//! overprediction cut-off — is hardware-agnostic. This crate applies it to
//! ordinary OS threads, mapping sleep states to scheduler-level analogs:
//!
//! | Paper state | Runtime analog | "Transition" cost |
//! |---|---|---|
//! | spin | busy-wait with `spin_loop` hints | — |
//! | shallow sleep | `thread::yield_now` loop | scheduler quantum (~5 µs) |
//! | deep sleep | timed park on a condvar | park/unpark round trip (~60 µs) |
//!
//! The *external wake-up* analog is the releaser's broadcast on the
//! condvar; the *internal wake-up* analog is the park timeout derived from
//! the predicted stall. Time in each state is tracked per thread as the
//! energy proxy (a parked thread frees its core; a spinning thread burns
//! it).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use tb_core::BarrierPc;
//! use tb_runtime::ThriftyRuntimeBarrier;
//!
//! let threads = 4;
//! let barrier = Arc::new(ThriftyRuntimeBarrier::new(threads));
//! let pc = BarrierPc::new(0x100);
//! let handles: Vec<_> = (0..threads)
//!     .map(|t| {
//!         let b = Arc::clone(&barrier);
//!         std::thread::spawn(move || {
//!             for _ in 0..5 {
//!                 // ... compute ...
//!                 b.wait(t, pc);
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(barrier.stats().barriers_completed, 5);
//! ```

pub mod clock;
pub mod lock;
pub mod spin;
pub mod stats;
pub mod thrifty;

pub use clock::RuntimeClock;
pub use lock::{LockSite, LockStats, ThriftyLock, ThriftyLockGuard};
pub use spin::SpinBarrier;
pub use stats::{RuntimeStats, ThreadStats};
pub use thrifty::{RuntimeSleepLevels, ThriftyRuntimeBarrier, WaitOutcome};
