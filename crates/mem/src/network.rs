//! Hypercube interconnect latency model (Table 1).
//!
//! The paper's machine uses a wormhole-routed hypercube with 250 MHz
//! pipelined routers, 16 ns pin-to-pin latency per hop, and 16 ns endpoint
//! (un)marshaling on each side. With wormhole routing and short coherence
//! messages, transfer time is dominated by the header path, so the model is
//! `marshal + hops × pin_to_pin + unmarshal` plus a serialization term for
//! payload-carrying messages (a 64 B cache line crossing a 16 B-wide path).

use crate::addr::NodeId;
use serde::{Deserialize, Serialize};
use tb_sim::Cycles;

/// Hypercube topology with Table 1 latency parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypercube {
    nodes: u16,
    dimension: u32,
    pin_to_pin: Cycles,
    marshal: Cycles,
    line_serialization: Cycles,
}

impl Hypercube {
    /// Creates the Table 1 network for `nodes` nodes: 16 ns per hop, 16 ns
    /// marshaling and unmarshaling, 16 ns serialization for line-sized
    /// payloads (64 B over a 16 B-wide 250 MHz path).
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of two in `1..=64`.
    pub fn table1(nodes: u16) -> Self {
        Hypercube::new(
            nodes,
            Cycles::from_nanos(16),
            Cycles::from_nanos(16),
            Cycles::from_nanos(16),
        )
    }

    /// Creates a hypercube with explicit latencies.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of two in `1..=64`.
    pub fn new(
        nodes: u16,
        pin_to_pin: Cycles,
        marshal: Cycles,
        line_serialization: Cycles,
    ) -> Self {
        assert!(
            (1..=64).contains(&nodes) && nodes.is_power_of_two(),
            "hypercube requires a power-of-two node count in 1..=64, got {nodes}"
        );
        Hypercube {
            nodes,
            dimension: nodes.trailing_zeros(),
            pin_to_pin,
            marshal,
            line_serialization,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// The cube's dimension (log2 of the node count).
    pub fn dimension(&self) -> u32 {
        self.dimension
    }

    /// Number of router hops between two nodes: the Hamming distance of
    /// their ids.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the machine.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        assert!(
            a.index() < self.nodes as usize && b.index() < self.nodes as usize,
            "nodes {a},{b} outside a {}-node machine",
            self.nodes
        );
        (a.as_u16() ^ b.as_u16()).count_ones()
    }

    /// One-way latency of a header-only (control) message.
    ///
    /// Same-node "messages" (e.g. a request to the local directory) skip
    /// the network entirely and cost nothing here.
    pub fn control_latency(&self, from: NodeId, to: NodeId) -> Cycles {
        let hops = self.hops(from, to);
        if hops == 0 {
            return Cycles::ZERO;
        }
        self.marshal + self.pin_to_pin * hops as u64 + self.marshal
    }

    /// One-way latency of a message carrying a cache line.
    pub fn line_latency(&self, from: NodeId, to: NodeId) -> Cycles {
        let hops = self.hops(from, to);
        if hops == 0 {
            return Cycles::ZERO;
        }
        self.control_latency(from, to) + self.line_serialization
    }

    /// Worst-case hop count (the cube's diameter).
    pub fn diameter(&self) -> u32 {
        self.dimension
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_is_hamming_distance() {
        let net = Hypercube::table1(64);
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(0)), 0);
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(1)), 1);
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(63)), 6);
        assert_eq!(net.hops(NodeId::new(0b101010), NodeId::new(0b010101)), 6);
        assert_eq!(net.hops(NodeId::new(5), NodeId::new(4)), 1);
    }

    #[test]
    fn diameter_is_dimension() {
        assert_eq!(Hypercube::table1(64).diameter(), 6);
        assert_eq!(Hypercube::table1(16).diameter(), 4);
        assert_eq!(Hypercube::table1(1).diameter(), 0);
    }

    #[test]
    fn control_latency_table1() {
        let net = Hypercube::table1(64);
        // 1 hop: 16 (marshal) + 16 (hop) + 16 (unmarshal) = 48 ns.
        assert_eq!(
            net.control_latency(NodeId::new(0), NodeId::new(1)),
            Cycles::from_nanos(48)
        );
        // 6 hops: 16 + 96 + 16 = 128 ns.
        assert_eq!(
            net.control_latency(NodeId::new(0), NodeId::new(63)),
            Cycles::from_nanos(128)
        );
    }

    #[test]
    fn local_messages_are_free() {
        let net = Hypercube::table1(8);
        assert_eq!(
            net.control_latency(NodeId::new(3), NodeId::new(3)),
            Cycles::ZERO
        );
        assert_eq!(
            net.line_latency(NodeId::new(3), NodeId::new(3)),
            Cycles::ZERO
        );
    }

    #[test]
    fn line_messages_pay_serialization() {
        let net = Hypercube::table1(64);
        let c = net.control_latency(NodeId::new(0), NodeId::new(7));
        let l = net.line_latency(NodeId::new(0), NodeId::new(7));
        assert_eq!(l, c + Cycles::from_nanos(16));
    }

    #[test]
    fn latency_is_symmetric() {
        let net = Hypercube::table1(32);
        for a in 0..32u16 {
            let b = (a * 7 + 3) % 32;
            assert_eq!(
                net.control_latency(NodeId::new(a), NodeId::new(b)),
                net.control_latency(NodeId::new(b), NodeId::new(a))
            );
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = Hypercube::table1(48);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_node_rejected() {
        Hypercube::table1(8).hops(NodeId::new(0), NodeId::new(8));
    }
}
