//! Wake-up invalidation faults (fault class (a) of the fault model).
//!
//! The thrifty barrier's *external* wake-up (§3.3.1) is the invalidation of
//! the barrier-flag line, delivered to every sharer when the releaser flips
//! the flag. [`InvalidationFaults`] makes that delivery unreliable for one
//! watched line: a signal can be *lost* (dropped from the access's
//! invalidation list) or *delayed* (its delivery time pushed back).
//!
//! Crucially, the perturbation happens *after* the coherence transition:
//! the sharer's cached copy is already invalidated and the directory/bus
//! state already updated when the list is edited, so coherence stays
//! correct — what is lost or late is purely the wake-up *notification*,
//! exactly the failure a real flag-watch cache-controller extension would
//! exhibit. (A spinner whose signal was dropped keeps spinning on its
//! stale local copy until something else makes it re-read the line — which
//! is why the executor needs a guard timer, not just sleepers.)
//!
//! All randomness comes from per-class `SimRng` streams derived from the
//! fault seed, one Bernoulli draw per watched-line invalidation (plus a
//! magnitude draw when a delay fires), so a schedule replays identically
//! regardless of what other fault classes are enabled.

use crate::addr::{LineAddr, NodeId};
use crate::system::Invalidation;
use tb_sim::{Cycles, SimRng};

/// What happened to one watched-line invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationFaultKind {
    /// The wake-up signal was dropped entirely.
    Lost,
    /// The wake-up signal was delivered late by the recorded amount.
    Delayed(Cycles),
}

/// One injected invalidation fault, for the executor's trace attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidationFaultRecord {
    /// The node whose wake-up signal was perturbed.
    pub node: NodeId,
    /// The original (unperturbed) delivery time.
    pub at: Cycles,
    /// What was injected.
    pub kind: InvalidationFaultKind,
}

/// Seed-driven lost/delayed-invalidation injector for one watched line.
#[derive(Debug, Clone)]
pub struct InvalidationFaults {
    watched: Option<LineAddr>,
    lose: f64,
    delay: f64,
    delay_mean_ns: f64,
    lose_rng: SimRng,
    delay_rng: SimRng,
    log: Vec<InvalidationFaultRecord>,
}

impl InvalidationFaults {
    /// Creates the injector. `lose` and `delay` are per-signal
    /// probabilities; `delay_mean_ns` is the mean of the exponential delay.
    /// No line is watched until [`InvalidationFaults::watch`] is called.
    pub fn new(seed: u64, lose: f64, delay: f64, delay_mean_ns: f64) -> Self {
        let root = SimRng::new(seed);
        InvalidationFaults {
            watched: None,
            lose,
            delay,
            delay_mean_ns,
            lose_rng: root.derive("fault-inv-lose", 0),
            delay_rng: root.derive("fault-inv-delay", 0),
            log: Vec::new(),
        }
    }

    /// Sets the watched line (the barrier flag). Invalidations of every
    /// other line pass through untouched.
    pub fn watch(&mut self, line: LineAddr) {
        self.watched = Some(line);
    }

    /// Perturbs the invalidation list of one access in place, recording
    /// every injection in the drainable log.
    pub fn apply(&mut self, invalidations: &mut Vec<Invalidation>) {
        let Some(watched) = self.watched else { return };
        if invalidations.is_empty() {
            return;
        }
        invalidations.retain_mut(|inv| {
            if inv.line != watched {
                return true;
            }
            if self.lose > 0.0 && self.lose_rng.chance(self.lose) {
                self.log.push(InvalidationFaultRecord {
                    node: inv.node,
                    at: inv.at,
                    kind: InvalidationFaultKind::Lost,
                });
                return false;
            }
            if self.delay > 0.0 && self.delay_rng.chance(self.delay) {
                let delta =
                    Cycles::from_nanos(self.delay_rng.exponential(self.delay_mean_ns) as u64)
                        .max(Cycles::new(1));
                self.log.push(InvalidationFaultRecord {
                    node: inv.node,
                    at: inv.at,
                    kind: InvalidationFaultKind::Delayed(delta),
                });
                inv.at += delta;
            }
            true
        });
    }

    /// Drains the injections recorded since the last drain (the executor
    /// turns them into trace events with thread/episode attribution).
    pub fn drain_log(&mut self) -> Vec<InvalidationFaultRecord> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(node: u16, line: LineAddr, at: u64) -> Invalidation {
        Invalidation {
            node: NodeId::new(node),
            line,
            at: Cycles::new(at),
        }
    }

    fn lines() -> (LineAddr, LineAddr) {
        let layout = crate::addr::MemLayout::new(4);
        (
            layout.shared_addr(0, 0).line(),
            layout.shared_addr(1, 0).line(),
        )
    }

    #[test]
    fn unwatched_injector_is_inert() {
        let (flag, _) = lines();
        let mut f = InvalidationFaults::new(1, 1.0, 1.0, 1000.0);
        let mut invs = vec![inv(1, flag, 10)];
        let before = invs.clone();
        f.apply(&mut invs);
        assert_eq!(invs, before);
        assert!(f.drain_log().is_empty());
    }

    #[test]
    fn only_the_watched_line_is_perturbed() {
        let (flag, other) = lines();
        let mut f = InvalidationFaults::new(1, 1.0, 0.0, 1000.0);
        f.watch(flag);
        let mut invs = vec![inv(1, flag, 10), inv(2, other, 20), inv(3, flag, 30)];
        f.apply(&mut invs);
        assert_eq!(invs, vec![inv(2, other, 20)], "all flag signals lost");
        let log = f.drain_log();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|r| r.kind == InvalidationFaultKind::Lost));
        assert_eq!(log[0].node, NodeId::new(1));
        assert!(f.drain_log().is_empty(), "drain empties the log");
    }

    #[test]
    fn delays_push_delivery_back_and_are_recorded() {
        let (flag, _) = lines();
        let mut f = InvalidationFaults::new(2, 0.0, 1.0, 50_000.0);
        f.watch(flag);
        let mut invs = vec![inv(1, flag, 100)];
        f.apply(&mut invs);
        assert_eq!(invs.len(), 1);
        assert!(invs[0].at > Cycles::new(100), "delivery moved later");
        let log = f.drain_log();
        assert_eq!(log.len(), 1);
        match log[0].kind {
            InvalidationFaultKind::Delayed(d) => {
                assert_eq!(invs[0].at, Cycles::new(100) + d);
            }
            other => panic!("expected a delay, got {other:?}"),
        }
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let (flag, _) = lines();
        let run = |seed| {
            let mut f = InvalidationFaults::new(seed, 0.3, 0.3, 10_000.0);
            f.watch(flag);
            let mut out = Vec::new();
            for i in 0..200 {
                let mut invs = vec![inv((i % 4) as u16, flag, 100 * i)];
                f.apply(&mut invs);
                out.push(invs);
            }
            (out, f.drain_log())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
