//! Addresses, cache lines, pages, and the CC-NUMA placement policy.
//!
//! Following §4.1 of the paper: *"Shared data pages are distributed in a
//! round-robin fashion among the nodes, and private data pages are allocated
//! locally."* The address space is split by the top bit: shared addresses
//! have bit 63 clear and their 4 KiB page number selects the home node
//! round-robin; private addresses have bit 63 set, carry their owning node
//! in bits 48..62, and are always homed at that node.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (one processor + caches + memory slice) in the
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from its index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// The node's index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The node's index as the raw u16.
    pub const fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A byte address in the simulated physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(u64);

/// Cache line size in bytes (Table 1: 64 B lines at both levels).
pub const LINE_BYTES: u64 = 64;
/// Page size in bytes for NUMA placement.
pub const PAGE_BYTES: u64 = 4096;

const PRIVATE_BIT: u64 = 1 << 63;
const PRIVATE_NODE_SHIFT: u32 = 48;
const PRIVATE_NODE_MASK: u64 = 0x7FFF;
const PRIVATE_OFFSET_MASK: u64 = (1 << PRIVATE_NODE_SHIFT) - 1;

impl Addr {
    /// Creates an address from its raw bits.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Raw bits.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// `true` if this address lies in some node's private region.
    pub const fn is_private(self) -> bool {
        self.0 & PRIVATE_BIT != 0
    }

    /// For private addresses, the owning node.
    pub fn private_owner(self) -> Option<NodeId> {
        if self.is_private() {
            Some(NodeId(
                ((self.0 >> PRIVATE_NODE_SHIFT) & PRIVATE_NODE_MASK) as u16,
            ))
        } else {
            None
        }
    }

    /// The 4 KiB page number (within the shared or the per-node private
    /// region).
    pub const fn page(self) -> u64 {
        (self.0 & !PRIVATE_BIT & PRIVATE_OFFSET_MASK) / PAGE_BYTES
    }

    /// Address `bytes` later.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(node) = self.private_owner() {
            write!(f, "priv[{node}]+{:#x}", self.0 & PRIVATE_OFFSET_MASK)
        } else {
            write!(f, "shared+{:#x}", self.0)
        }
    }
}

/// A cache-line address (byte address divided by the line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Raw line number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// The machine's address-space layout: how many nodes exist and where each
/// line's home (directory + memory) lives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemLayout {
    nodes: u16,
}

impl MemLayout {
    /// Creates a layout for `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= nodes <= 64` (the directory's sharer set is a
    /// 64-bit full map, matching the paper's 64-node system).
    pub fn new(nodes: u16) -> Self {
        assert!(
            (1..=64).contains(&nodes),
            "node count must be in 1..=64, got {nodes}"
        );
        MemLayout { nodes }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// An address in the shared region: byte `offset` within shared page
    /// `page`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= PAGE_BYTES` or the address would collide with
    /// the private region encoding.
    pub fn shared_addr(&self, page: u64, offset: u64) -> Addr {
        assert!(offset < PAGE_BYTES, "offset {offset} exceeds page size");
        let raw = page * PAGE_BYTES + offset;
        assert!(raw & PRIVATE_BIT == 0, "shared page number too large");
        Addr(raw)
    }

    /// An address in `node`'s private region: byte `offset` within private
    /// page `page`.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range, `offset >= PAGE_BYTES`, or the
    /// page number overflows the private region.
    pub fn private_addr(&self, node: NodeId, page: u64, offset: u64) -> Addr {
        assert!(
            node.index() < self.nodes as usize,
            "node {node} out of range (machine has {} nodes)",
            self.nodes
        );
        assert!(offset < PAGE_BYTES, "offset {offset} exceeds page size");
        let local = page * PAGE_BYTES + offset;
        assert!(
            local <= PRIVATE_OFFSET_MASK,
            "private page number too large"
        );
        Addr(PRIVATE_BIT | ((node.as_u16() as u64) << PRIVATE_NODE_SHIFT) | local)
    }

    /// The home node of a line: the node whose memory and directory slice
    /// own it. Shared pages are assigned round-robin by page number; private
    /// pages are homed at their owner.
    pub fn home_of(&self, line: LineAddr) -> NodeId {
        let addr = line.base_addr();
        if let Some(owner) = addr.private_owner() {
            owner
        } else if self.nodes.is_power_of_two() {
            // Every transaction past the L2 computes its home, so avoid
            // the integer division in the (universal in practice)
            // power-of-two case; the bus substrate permits other sizes.
            NodeId((addr.page() & (self.nodes as u64 - 1)) as u16)
        } else {
            NodeId((addr.page() % self.nodes as u64) as u16)
        }
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        let a = Addr::new(130);
        assert_eq!(a.line().as_u64(), 2);
        assert_eq!(a.line().base_addr(), Addr::new(128));
        assert_eq!(a.offset(6), Addr::new(136));
    }

    #[test]
    fn shared_pages_round_robin() {
        let l = MemLayout::new(4);
        for page in 0..16 {
            let a = l.shared_addr(page, 0);
            assert_eq!(l.home_of(a.line()).index(), (page % 4) as usize);
        }
    }

    #[test]
    fn private_pages_are_local() {
        let l = MemLayout::new(8);
        for n in l.node_ids() {
            for page in 0..4 {
                let a = l.private_addr(n, page, 64);
                assert!(a.is_private());
                assert_eq!(a.private_owner(), Some(n));
                assert_eq!(l.home_of(a.line()), n);
            }
        }
    }

    #[test]
    fn private_regions_do_not_collide_across_nodes() {
        let l = MemLayout::new(64);
        let a = l.private_addr(NodeId::new(3), 7, 0);
        let b = l.private_addr(NodeId::new(4), 7, 0);
        assert_ne!(a, b);
        assert_ne!(a.line(), b.line());
    }

    #[test]
    fn shared_and_private_distinct() {
        let l = MemLayout::new(2);
        let s = l.shared_addr(0, 0);
        let p = l.private_addr(NodeId::new(0), 0, 0);
        assert_ne!(s, p);
        assert!(!s.is_private());
        assert_eq!(s.private_owner(), None);
    }

    #[test]
    fn page_numbers() {
        let l = MemLayout::new(2);
        assert_eq!(l.shared_addr(5, 100).page(), 5);
        assert_eq!(l.private_addr(NodeId::new(1), 9, 0).page(), 9);
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn too_many_nodes_rejected() {
        let _ = MemLayout::new(65);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_offset_rejected() {
        MemLayout::new(2).shared_addr(0, PAGE_BYTES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn private_node_out_of_range() {
        MemLayout::new(2).private_addr(NodeId::new(2), 0, 0);
    }

    #[test]
    fn display_formats() {
        let l = MemLayout::new(2);
        assert!(l.shared_addr(1, 0).to_string().contains("shared"));
        assert!(l
            .private_addr(NodeId::new(1), 0, 8)
            .to_string()
            .contains("priv[n1]"));
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert!(Addr::new(64).line().to_string().starts_with('L'));
    }

    #[test]
    fn node_ids_iterates_all() {
        let l = MemLayout::new(5);
        let ids: Vec<usize> = l.node_ids().map(|n| n.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
