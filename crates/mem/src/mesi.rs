//! MESI cache-line states, directory states, and sharer bit-sets.
//!
//! The coherence protocol follows the DASH lineage the paper cites: an
//! invalidation-based MESI protocol with a full-map directory at each line's
//! home node. With at most 64 nodes (Table 1), a sharer set fits in one
//! 64-bit word.

use crate::addr::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// State of a line in a processor's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineState {
    /// Dirty, exclusive to this cache.
    Modified,
    /// Clean, exclusive to this cache.
    Exclusive,
    /// Clean, possibly in other caches too.
    Shared,
    /// Not present / invalidated.
    Invalid,
}

impl LineState {
    /// `true` for states holding a valid copy.
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }

    /// `true` if the copy differs from memory and must be written back on
    /// eviction or flush.
    pub fn is_dirty(self) -> bool {
        self == LineState::Modified
    }

    /// `true` if the cache may write without a coherence transaction.
    pub fn can_write_silently(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            LineState::Modified => 'M',
            LineState::Exclusive => 'E',
            LineState::Shared => 'S',
            LineState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

/// A set of nodes, stored as a 64-bit full-map vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// A set containing only `node`.
    pub fn singleton(node: NodeId) -> Self {
        let mut s = SharerSet::EMPTY;
        s.insert(node);
        s
    }

    /// Adds a node.
    ///
    /// # Panics
    ///
    /// Panics if the node index is 64 or above.
    pub fn insert(&mut self, node: NodeId) {
        assert!(node.index() < 64, "sharer set holds at most 64 nodes");
        self.0 |= 1 << node.index();
    }

    /// Removes a node; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let bit = 1u64 << node.index();
        let had = self.0 & bit != 0;
        self.0 &= !bit;
        had
    }

    /// Membership test.
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < 64 && self.0 & (1 << node.index()) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` when no nodes are present.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates members in increasing node order.
    ///
    /// Walks set bits with `trailing_zeros`, so iteration cost scales with
    /// the population, not the 64-bit width — the common fan-out over one
    /// or two sharers touches one or two bits, not 64 candidates.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as u16;
            bits &= bits - 1;
            Some(NodeId::new(i))
        })
    }

    /// The set without `node` (used to exclude the requester when fanning
    /// out invalidations).
    pub fn without(mut self, node: NodeId) -> SharerSet {
        self.remove(node);
        self
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = SharerSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl fmt::Display for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

/// Directory state of a line at its home node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirState {
    /// No cache holds the line; memory is the only copy.
    #[default]
    Uncached,
    /// One or more caches hold clean copies.
    Shared(SharerSet),
    /// Exactly one cache holds the line in M or E state.
    Exclusive(NodeId),
}

impl DirState {
    /// All caches currently holding the line.
    pub fn holders(&self) -> SharerSet {
        match *self {
            DirState::Uncached => SharerSet::EMPTY,
            DirState::Shared(s) => s,
            DirState::Exclusive(n) => SharerSet::singleton(n),
        }
    }

    /// `true` when some cache may hold a dirty copy.
    pub fn maybe_dirty(&self) -> bool {
        matches!(self, DirState::Exclusive(_))
    }
}

impl fmt::Display for DirState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirState::Uncached => write!(f, "U"),
            DirState::Shared(s) => write!(f, "S{s}"),
            DirState::Exclusive(n) => write!(f, "E[{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_state_predicates() {
        assert!(LineState::Modified.is_valid());
        assert!(LineState::Modified.is_dirty());
        assert!(LineState::Modified.can_write_silently());
        assert!(LineState::Exclusive.can_write_silently());
        assert!(!LineState::Exclusive.is_dirty());
        assert!(!LineState::Shared.can_write_silently());
        assert!(!LineState::Invalid.is_valid());
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::EMPTY;
        assert!(s.is_empty());
        s.insert(NodeId::new(0));
        s.insert(NodeId::new(63));
        s.insert(NodeId::new(63)); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId::new(0)));
        assert!(s.contains(NodeId::new(63)));
        assert!(!s.contains(NodeId::new(5)));
        assert!(s.remove(NodeId::new(0)));
        assert!(!s.remove(NodeId::new(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sharer_set_iterates_in_order() {
        let s: SharerSet = [5u16, 1, 9].into_iter().map(NodeId::new).collect();
        let got: Vec<usize> = s.iter().map(|n| n.index()).collect();
        assert_eq!(got, vec![1, 5, 9]);
    }

    #[test]
    fn without_excludes_requester() {
        let s: SharerSet = (0..4).map(NodeId::new).collect();
        let w = s.without(NodeId::new(2));
        assert_eq!(w.len(), 3);
        assert!(!w.contains(NodeId::new(2)));
        assert!(s.contains(NodeId::new(2)), "original unchanged (Copy)");
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn sharer_set_rejects_node_64() {
        let mut s = SharerSet::EMPTY;
        s.insert(NodeId::new(64));
    }

    #[test]
    fn dir_state_holders() {
        assert!(DirState::Uncached.holders().is_empty());
        assert_eq!(DirState::Exclusive(NodeId::new(7)).holders().len(), 1);
        let s: SharerSet = (0..3).map(NodeId::new).collect();
        assert_eq!(DirState::Shared(s).holders(), s);
        assert!(DirState::Exclusive(NodeId::new(0)).maybe_dirty());
        assert!(!DirState::Shared(s).maybe_dirty());
        assert_eq!(DirState::default(), DirState::Uncached);
    }

    #[test]
    fn displays() {
        assert_eq!(LineState::Shared.to_string(), "S");
        let s = SharerSet::singleton(NodeId::new(2));
        assert_eq!(s.to_string(), "{n2}");
        assert_eq!(DirState::Uncached.to_string(), "U");
        assert_eq!(DirState::Exclusive(NodeId::new(1)).to_string(), "E[n1]");
    }
}
