//! A unified front over the two coherence substrates, so the machine
//! simulator runs unchanged on the paper's directory CC-NUMA or on the
//! snooping-bus SMP.

use crate::addr::{Addr, MemLayout, NodeId};
use crate::bus::{BusConfig, BusMemorySystem};
use crate::faults::{InvalidationFaultRecord, InvalidationFaults};
use crate::system::{Access, FlushOutcome, MachineConfig, MemStats, MemorySystem};
use std::fmt;
use tb_sim::Cycles;

/// Either coherent memory substrate behind one API.
#[derive(Debug)]
pub enum CoherentMemory {
    /// The paper's directory-based CC-NUMA (Table 1).
    Directory(MemorySystem),
    /// A snooping-bus SMP.
    Bus(BusMemorySystem),
}

impl CoherentMemory {
    /// Builds the directory machine.
    pub fn directory(cfg: MachineConfig) -> Self {
        CoherentMemory::Directory(MemorySystem::new(cfg))
    }

    /// Builds the bus SMP.
    pub fn bus(cfg: BusConfig) -> Self {
        CoherentMemory::Bus(BusMemorySystem::new(cfg))
    }

    /// The address layout.
    pub fn layout(&self) -> &MemLayout {
        match self {
            CoherentMemory::Directory(m) => m.layout(),
            CoherentMemory::Bus(m) => m.layout(),
        }
    }

    /// Performs a read.
    pub fn read(&mut self, node: NodeId, addr: Addr, now: Cycles) -> Access {
        match self {
            CoherentMemory::Directory(m) => m.read(node, addr, now),
            CoherentMemory::Bus(m) => m.read(node, addr, now),
        }
    }

    /// Performs a write.
    pub fn write(&mut self, node: NodeId, addr: Addr, now: Cycles) -> Access {
        match self {
            CoherentMemory::Directory(m) => m.write(node, addr, now),
            CoherentMemory::Bus(m) => m.write(node, addr, now),
        }
    }

    /// Performs `lines` back-to-back writes to consecutive cache lines
    /// starting at `base`, chaining each completion into the next issue
    /// time. One substrate dispatch covers the whole run; the coherence
    /// actions and timestamps are identical to per-line [`write`] calls.
    ///
    /// [`write`]: Self::write
    pub fn write_line_run(&mut self, node: NodeId, base: Addr, lines: u32, now: Cycles) -> Cycles {
        match self {
            CoherentMemory::Directory(m) => m.write_line_run(node, base, lines, now),
            CoherentMemory::Bus(m) => m.write_line_run(node, base, lines, now),
        }
    }

    /// Flushes a node's dirty shared lines.
    pub fn flush_dirty_shared(&mut self, node: NodeId, now: Cycles) -> FlushOutcome {
        match self {
            CoherentMemory::Directory(m) => m.flush_dirty_shared(node, now),
            CoherentMemory::Bus(m) => m.flush_dirty_shared(node, now),
        }
    }

    /// Event counters.
    pub fn stats(&self) -> &MemStats {
        match self {
            CoherentMemory::Directory(m) => m.stats(),
            CoherentMemory::Bus(m) => m.stats(),
        }
    }

    /// Installs a wake-up fault injector on whichever substrate is active.
    pub fn set_faults(&mut self, faults: InvalidationFaults) {
        match self {
            CoherentMemory::Directory(m) => m.set_faults(faults),
            CoherentMemory::Bus(m) => m.set_faults(faults),
        }
    }

    /// Drains the injector's fault log (empty when no injector is set).
    pub fn drain_fault_log(&mut self) -> Vec<InvalidationFaultRecord> {
        match self {
            CoherentMemory::Directory(m) => m.drain_fault_log(),
            CoherentMemory::Bus(m) => m.drain_fault_log(),
        }
    }
}

impl fmt::Display for CoherentMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherentMemory::Directory(m) => write!(f, "directory CC-NUMA: {}", m.config().nodes),
            CoherentMemory::Bus(m) => write!(f, "{}", m.config()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_answer_the_same_api() {
        let mut backends = [
            CoherentMemory::directory(MachineConfig::table1_with_nodes(4)),
            CoherentMemory::bus(BusConfig::smp(4)),
        ];
        for m in &mut backends {
            let a = m.layout().shared_addr(0, 0);
            let r = m.read(NodeId::new(1), a, Cycles::ZERO);
            assert!(r.completion > Cycles::ZERO);
            let w = m.write(NodeId::new(2), a, Cycles::from_micros(1));
            assert_eq!(w.invalidations.len(), 1, "{m}");
            let f = m.flush_dirty_shared(NodeId::new(2), Cycles::from_micros(2));
            assert_eq!(f.lines, 1);
            assert!(m.stats().reads >= 1);
        }
    }

    #[test]
    fn write_line_run_matches_per_line_writes() {
        // The batched entry point must produce the same completion chain and
        // the same coherence state as issuing the writes one at a time.
        for make in [
            (|| CoherentMemory::directory(MachineConfig::table1_with_nodes(8)))
                as fn() -> CoherentMemory,
            || CoherentMemory::bus(BusConfig::smp(8)),
        ] {
            let mut batched = make();
            let mut looped = make();
            let base = batched.layout().shared_addr(3, 0);
            let node = NodeId::new(2);
            // Seed some remote sharers so part of the run needs upgrades.
            for i in 0..8u64 {
                let a = base.offset(i * 2 * 64);
                batched.read(NodeId::new(5), a, Cycles::ZERO);
                looped.read(NodeId::new(5), a, Cycles::ZERO);
            }
            let t0 = Cycles::from_micros(1);
            let end_b = batched.write_line_run(node, base, 40, t0);
            let mut end_l = t0;
            for i in 0..40u64 {
                end_l = looped.write(node, base.offset(i * 64), end_l).completion;
            }
            // Run again from a warm cache: now every write is silent.
            let end_b2 = batched.write_line_run(node, base, 40, end_b);
            let mut end_l2 = end_l;
            for i in 0..40u64 {
                end_l2 = looped.write(node, base.offset(i * 64), end_l2).completion;
            }
            assert_eq!(end_b, end_l, "{batched}");
            assert_eq!(end_b2, end_l2, "{batched}");
            assert_eq!(batched.stats(), looped.stats(), "{batched}");
        }
    }

    #[test]
    fn display_distinguishes_backends() {
        let d = CoherentMemory::directory(MachineConfig::table1_with_nodes(4));
        let b = CoherentMemory::bus(BusConfig::smp(4));
        assert!(d.to_string().contains("directory"));
        assert!(b.to_string().contains("bus"));
    }
}
