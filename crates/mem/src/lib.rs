#![warn(missing_docs)]
//! CC-NUMA memory substrate for the thrifty-barrier reproduction.
//!
//! The paper evaluates the thrifty barrier on a 64-node CC-NUMA machine
//! with release consistency and a DASH-style directory coherence protocol
//! (Table 1). This crate implements that substrate:
//!
//! * [`addr`] — byte addresses, cache lines, pages, and the NUMA placement
//!   policy (shared pages round-robin across nodes, private pages local).
//! * [`mesi`] — MESI line states, the full-map directory state, and sharer
//!   bit-sets.
//! * [`cache`] — set-associative write-back caches with LRU replacement and
//!   dirty-line enumeration (needed to price deep-sleep cache flushes).
//! * [`network`] — the hypercube interconnect latency model with Table 1's
//!   router and marshaling latencies.
//! * [`system`] — the coherent [`MemorySystem`]: per-node two-level cache
//!   hierarchies in front of directory-controlled home memories. Accesses
//!   are resolved transactionally: each returns its completion time and the
//!   set of invalidation messages it caused, with per-destination delivery
//!   times. Those invalidations are precisely the *external wake-up* signals
//!   of the thrifty barrier (§3.3.1).
//!
//! # Examples
//!
//! ```
//! use tb_mem::{MachineConfig, MemorySystem, NodeId};
//! use tb_sim::Cycles;
//!
//! let mut mem = MemorySystem::new(MachineConfig::table1());
//! let flag = mem.layout().shared_addr(0, 0);
//! // Two spinners pull the flag into their caches…
//! mem.read(NodeId::new(1), flag, Cycles::ZERO);
//! mem.read(NodeId::new(2), flag, Cycles::ZERO);
//! // …and the releaser's write invalidates both copies.
//! let w = mem.write(NodeId::new(0), flag, Cycles::from_micros(1));
//! assert_eq!(w.invalidations.len(), 2);
//! ```

pub mod addr;
pub mod backend;
pub mod bus;
pub mod cache;
pub mod dir;
pub mod faults;
pub mod mesi;
pub mod network;
pub mod system;

pub use addr::{Addr, LineAddr, MemLayout, NodeId};
pub use backend::CoherentMemory;
pub use bus::{BusConfig, BusMemorySystem};
pub use cache::{Cache, CacheConfig};
pub use dir::Directory;
pub use faults::{InvalidationFaultKind, InvalidationFaultRecord, InvalidationFaults};
pub use mesi::{DirState, LineState, SharerSet};
pub use network::Hypercube;
pub use system::{
    Access, AccessClass, FlushOutcome, Invalidation, MachineConfig, MemStats, MemorySystem,
};
