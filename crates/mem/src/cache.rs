//! Set-associative write-back caches with LRU replacement.
//!
//! Table 1 of the paper: 16 kB 2-way L1 and 64 kB 8-way L2, both with 64 B
//! lines. The caches are deliberately small "to capture the behavior that
//! real-sized input data would exhibit on an actual machine with larger
//! caches", following the SPLASH-2 methodology the paper cites.
//!
//! The cache stores coherence state only — the machine layer tracks logical
//! values (such as the barrier flag's sense) separately, so no data payload
//! is simulated. [`Cache::dirty_lines`] enumerates Modified lines, which is
//! what a CPU must flush before entering a non-snoopable sleep state.
//!
//! # Layout
//!
//! The ways are stored as one flat `Vec<Way>` of length `sets × assoc`,
//! with set `s` occupying the contiguous slice
//! `[s * assoc, (s + 1) * assoc)`. Empty slots are marked
//! [`LineState::Invalid`] in place, so a lookup is a short inline scan over
//! at most `assoc` contiguous entries — no per-set `Vec` headers, no
//! pointer chase, no allocation after construction. The set count is a
//! power of two (asserted by [`CacheConfig::new`]), so the set index is a
//! bit-mask rather than a division.

use crate::addr::{Addr, LineAddr, LINE_BYTES};
use crate::mesi::LineState;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    associativity: u32,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless the size is a positive multiple of
    /// `associativity * 64 B` and the resulting set count is a power of two.
    pub fn new(size_bytes: u64, associativity: u32) -> Self {
        assert!(associativity > 0, "associativity must be positive");
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(LINE_BYTES * associativity as u64),
            "cache size must be a positive multiple of associativity * line size"
        );
        let sets = size_bytes / (LINE_BYTES * associativity as u64);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            associativity,
        }
    }

    /// Table 1 L1: 16 kB, 2-way, 64 B lines.
    pub fn table1_l1() -> Self {
        CacheConfig::new(16 * 1024, 2)
    }

    /// Table 1 L2: 64 kB, 8-way, 64 B lines.
    pub fn table1_l2() -> Self {
        CacheConfig::new(64 * 1024, 8)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Ways per set.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.associativity as u64)
    }
}

/// One slot of the flat way array. `state == Invalid` marks an empty slot;
/// `line`/`last_used` are meaningless then.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Way {
    line: LineAddr,
    state: LineState,
    last_used: u64,
}

impl Way {
    fn empty() -> Self {
        Way {
            line: Addr::new(0).line(),
            state: LineState::Invalid,
            last_used: 0,
        }
    }

    fn holds(&self, line: LineAddr) -> bool {
        self.state.is_valid() && self.line == line
    }
}

/// A single cache level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    /// `sets × assoc` slots; set `s` is the slice `[s*assoc, (s+1)*assoc)`.
    ways: Vec<Way>,
    /// `sets - 1`: power-of-two set count makes the index a mask.
    set_mask: u64,
    assoc: usize,
    /// Valid (non-`Invalid`) slots, kept incrementally so `len()` is O(1).
    valid: usize,
    tick: u64,
}

/// A line pushed out of the cache by [`Cache::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// The displaced line.
    pub line: LineAddr,
    /// Its state at eviction; `Modified` means a write-back is required.
    pub state: LineState,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let assoc = config.associativity as usize;
        Cache {
            config,
            ways: vec![Way::empty(); sets as usize * assoc],
            set_mask: sets - 1,
            assoc,
            valid: 0,
            tick: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// First slot of `line`'s set in the flat way array.
    fn set_base(&self, line: LineAddr) -> usize {
        // Mix the high bits in so private-region lines (which share high
        // tag bits) spread across sets. Set count is a power of two, so
        // the modulo is a mask.
        let raw = line.as_u64();
        let mixed = raw ^ (raw >> 32);
        (mixed & self.set_mask) as usize * self.assoc
    }

    fn set(&self, line: LineAddr) -> &[Way] {
        let base = self.set_base(line);
        &self.ways[base..base + self.assoc]
    }

    fn set_mut(&mut self, line: LineAddr) -> &mut [Way] {
        let base = self.set_base(line);
        &mut self.ways[base..base + self.assoc]
    }

    /// The state of `line`, updating LRU recency. `Invalid` if absent.
    pub fn access(&mut self, line: LineAddr) -> LineState {
        self.tick += 1;
        let tick = self.tick;
        for way in self.set_mut(line) {
            if way.holds(line) {
                way.last_used = tick;
                return way.state;
            }
        }
        LineState::Invalid
    }

    /// One-scan write probe: behaves like [`Cache::access`] (LRU bump,
    /// tick advance) and *additionally* performs the silent-write upgrade
    /// in the same pass when the line is writable without coherence
    /// (`Modified`/`Exclusive` — see [`LineState::can_write_silently`]).
    ///
    /// Returns the state **before** the upgrade, so the caller's decision
    /// logic is unchanged: `can_write_silently()` on the returned state
    /// means the write has already been applied. Equivalent to
    /// `access(line)` followed by `set_state(line, Modified)` on the
    /// silent path — one tag scan instead of two.
    pub fn write_access(&mut self, line: LineAddr) -> LineState {
        self.tick += 1;
        let tick = self.tick;
        for way in self.set_mut(line) {
            if way.holds(line) {
                way.last_used = tick;
                let before = way.state;
                if before.can_write_silently() {
                    way.state = LineState::Modified;
                }
                return before;
            }
        }
        LineState::Invalid
    }

    /// One-scan flush helper: downgrades the line to `Shared` only if it
    /// is resident **and dirty**. Equivalent to `probe(line).is_dirty()`
    /// then `set_state(line, Shared)`; clean or absent copies (e.g. an L1
    /// `Exclusive` copy of a line dirty only in the L2) are untouched.
    pub fn make_shared_if_dirty(&mut self, line: LineAddr) {
        if let Some(way) = self.set_mut(line).iter_mut().find(|w| w.holds(line)) {
            if way.state.is_dirty() {
                way.state = LineState::Shared;
            }
        }
    }

    /// The state of `line` without touching LRU state (a coherence probe).
    pub fn probe(&self, line: LineAddr) -> LineState {
        self.set(line)
            .iter()
            .find(|w| w.holds(line))
            .map(|w| w.state)
            .unwrap_or(LineState::Invalid)
    }

    /// Inserts (or updates) `line` with `state`, evicting the LRU way if
    /// the set is full. Returns the evicted line, if any.
    ///
    /// # Panics
    ///
    /// Panics if `state` is `Invalid` — use [`Cache::invalidate`] instead.
    pub fn insert(&mut self, line: LineAddr, state: LineState) -> Option<Evicted> {
        assert!(state.is_valid(), "cannot insert a line in Invalid state");
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_mut(line);
        let mut free: Option<usize> = None;
        let mut victim_idx = 0;
        let mut victim_used = u64::MAX;
        for (i, way) in set.iter_mut().enumerate() {
            if way.holds(line) {
                way.state = state;
                way.last_used = tick;
                return None;
            }
            if !way.state.is_valid() {
                if free.is_none() {
                    free = Some(i);
                }
            } else if way.last_used < victim_used {
                // `last_used` ticks are unique (tick advances on every
                // access/insert), so the LRU victim is unambiguous.
                victim_used = way.last_used;
                victim_idx = i;
            }
        }
        if let Some(i) = free {
            set[i] = Way {
                line,
                state,
                last_used: tick,
            };
            self.valid += 1;
            return None;
        }
        let victim = &mut set[victim_idx];
        let evicted = Evicted {
            line: victim.line,
            state: victim.state,
        };
        *victim = Way {
            line,
            state,
            last_used: tick,
        };
        Some(evicted)
    }

    /// Changes the state of a resident line in place; returns `false` if
    /// the line is absent.
    pub fn set_state(&mut self, line: LineAddr, state: LineState) -> bool {
        assert!(state.is_valid(), "use invalidate to drop a line");
        if let Some(way) = self.set_mut(line).iter_mut().find(|w| w.holds(line)) {
            way.state = state;
            true
        } else {
            false
        }
    }

    /// Removes `line`; returns its prior state if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineState> {
        let way = self.set_mut(line).iter_mut().find(|w| w.holds(line))?;
        let prior = way.state;
        way.state = LineState::Invalid;
        self.valid -= 1;
        Some(prior)
    }

    /// All lines currently in `Modified` state — what a deep-sleep entry
    /// must flush. Sorted; allocates. The flush hot path uses
    /// [`Cache::dirty_lines_into`] instead.
    pub fn dirty_lines(&self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        self.dirty_lines_into(&mut out);
        out.sort_unstable();
        out
    }

    /// Appends all `Modified` lines to `out` without sorting — the
    /// allocation-free flush path. Callers that need deterministic order
    /// sort once after collecting from every level.
    pub fn dirty_lines_into(&self, out: &mut Vec<LineAddr>) {
        out.extend(
            self.ways
                .iter()
                .filter(|w| w.state.is_dirty())
                .map(|w| w.line),
        );
    }

    /// All valid lines, for invariant checks.
    pub fn resident_lines(&self) -> Vec<(LineAddr, LineState)> {
        let mut out = Vec::new();
        self.resident_lines_into(&mut out);
        out.sort_unstable_by_key(|(l, _)| *l);
        out
    }

    /// Appends all valid lines to `out` without sorting.
    pub fn resident_lines_into(&self, out: &mut Vec<(LineAddr, LineState)>) {
        out.extend(
            self.ways
                .iter()
                .filter(|w| w.state.is_valid())
                .map(|w| (w.line, w.state)),
        );
    }

    /// Number of valid lines resident.
    pub fn len(&self) -> usize {
        self.valid
    }

    /// `true` when the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dirty = self.ways.iter().filter(|w| w.state.is_dirty()).count();
        write!(
            f,
            "{}B {}-way: {} lines resident ({} dirty)",
            self.config.size_bytes,
            self.config.associativity,
            self.len(),
            dirty
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn line(n: u64) -> LineAddr {
        Addr::new(n * LINE_BYTES).line()
    }

    #[test]
    fn table1_geometries() {
        let l1 = CacheConfig::table1_l1();
        assert_eq!(l1.sets(), 128);
        assert_eq!(l1.associativity(), 2);
        let l2 = CacheConfig::table1_l2();
        assert_eq!(l2.sets(), 128);
        assert_eq!(l2.associativity(), 8);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        assert_eq!(c.access(line(1)), LineState::Invalid);
        assert!(c.insert(line(1), LineState::Shared).is_none());
        assert_eq!(c.access(line(1)), LineState::Shared);
        assert_eq!(c.probe(line(1)), LineState::Shared);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way: fill a set with lines A and B, touch A, insert C in the
        // same set: B must be the victim.
        let cfg = CacheConfig::new(2 * 64 * 2, 2); // 2 sets, 2-way
        let mut c = Cache::new(cfg);
        let sets = cfg.sets();
        // Lines mapping to set 0 under the mixed index: choose multiples of sets.
        let a = line(0);
        let b = line(sets);
        let x = line(2 * sets);
        c.insert(a, LineState::Shared);
        c.insert(b, LineState::Shared);
        c.access(a); // make B the LRU
        let ev = c.insert(x, LineState::Shared).expect("set was full");
        assert_eq!(ev.line, b);
        assert_eq!(c.probe(a), LineState::Shared);
        assert_eq!(c.probe(b), LineState::Invalid);
    }

    #[test]
    fn dirty_eviction_reports_modified() {
        let cfg = CacheConfig::new(64 * 2, 2); // 1 set, 2-way
        let mut c = Cache::new(cfg);
        c.insert(line(0), LineState::Modified);
        c.insert(line(1), LineState::Shared);
        let ev = c.insert(line(2), LineState::Exclusive).unwrap();
        assert_eq!(ev.line, line(0));
        assert!(ev.state.is_dirty());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        c.insert(line(9), LineState::Exclusive);
        assert!(c.insert(line(9), LineState::Modified).is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.probe(line(9)), LineState::Modified);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        c.insert(line(4), LineState::Shared);
        assert_eq!(c.invalidate(line(4)), Some(LineState::Shared));
        assert_eq!(c.invalidate(line(4)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn set_state_transitions() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        c.insert(line(7), LineState::Exclusive);
        assert!(c.set_state(line(7), LineState::Modified));
        assert_eq!(c.probe(line(7)), LineState::Modified);
        assert!(!c.set_state(line(8), LineState::Shared));
    }

    #[test]
    fn dirty_lines_enumerates_modified_only() {
        let mut c = Cache::new(CacheConfig::table1_l2());
        c.insert(line(1), LineState::Modified);
        c.insert(line(2), LineState::Shared);
        c.insert(line(3), LineState::Modified);
        assert_eq!(c.dirty_lines(), vec![line(1), line(3)]);
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let cfg = CacheConfig::new(64 * 2, 2); // 1 set, 2-way
        let mut c = Cache::new(cfg);
        c.insert(line(0), LineState::Shared);
        c.insert(line(1), LineState::Shared);
        c.probe(line(0)); // must NOT refresh line 0
        let ev = c.insert(line(2), LineState::Shared).unwrap();
        assert_eq!(ev.line, line(0), "probe must not count as a use");
    }

    #[test]
    fn invalidated_slot_is_reused_before_eviction() {
        let cfg = CacheConfig::new(64 * 2, 2); // 1 set, 2-way
        let mut c = Cache::new(cfg);
        c.insert(line(0), LineState::Shared);
        c.insert(line(1), LineState::Shared);
        c.invalidate(line(0));
        // The set has a free slot again: no eviction on the next insert.
        assert!(c.insert(line(2), LineState::Shared).is_none());
        assert_eq!(c.len(), 2);
        assert_eq!(c.probe(line(1)), LineState::Shared);
        assert_eq!(c.probe(line(2)), LineState::Shared);
    }

    #[test]
    #[should_panic(expected = "Invalid state")]
    fn inserting_invalid_panics() {
        Cache::new(CacheConfig::table1_l1()).insert(line(0), LineState::Invalid);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new(3 * 64 * 2, 2);
    }

    #[test]
    fn capacity_is_respected() {
        let cfg = CacheConfig::table1_l1();
        let mut c = Cache::new(cfg);
        let capacity = (cfg.size_bytes() / LINE_BYTES) as usize;
        for i in 0..10_000 {
            c.insert(line(i), LineState::Shared);
        }
        assert!(c.len() <= capacity);
    }

    #[test]
    fn display_mentions_dirty_count() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        c.insert(line(0), LineState::Modified);
        assert!(c.to_string().contains("1 dirty"));
    }
}
