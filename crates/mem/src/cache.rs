//! Set-associative write-back caches with LRU replacement.
//!
//! Table 1 of the paper: 16 kB 2-way L1 and 64 kB 8-way L2, both with 64 B
//! lines. The caches are deliberately small "to capture the behavior that
//! real-sized input data would exhibit on an actual machine with larger
//! caches", following the SPLASH-2 methodology the paper cites.
//!
//! The cache stores coherence state only — the machine layer tracks logical
//! values (such as the barrier flag's sense) separately, so no data payload
//! is simulated. [`Cache::dirty_lines`] enumerates Modified lines, which is
//! what a CPU must flush before entering a non-snoopable sleep state.

use crate::addr::{LineAddr, LINE_BYTES};
use crate::mesi::LineState;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    associativity: u32,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless the size is a positive multiple of
    /// `associativity * 64 B` and the resulting set count is a power of two.
    pub fn new(size_bytes: u64, associativity: u32) -> Self {
        assert!(associativity > 0, "associativity must be positive");
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(LINE_BYTES * associativity as u64),
            "cache size must be a positive multiple of associativity * line size"
        );
        let sets = size_bytes / (LINE_BYTES * associativity as u64);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            associativity,
        }
    }

    /// Table 1 L1: 16 kB, 2-way, 64 B lines.
    pub fn table1_l1() -> Self {
        CacheConfig::new(16 * 1024, 2)
    }

    /// Table 1 L2: 64 kB, 8-way, 64 B lines.
    pub fn table1_l2() -> Self {
        CacheConfig::new(64 * 1024, 8)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Ways per set.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.associativity as u64)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Way {
    line: LineAddr,
    state: LineState,
    last_used: u64,
}

/// A single cache level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
}

/// A line pushed out of the cache by [`Cache::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// The displaced line.
    pub line: LineAddr,
    /// Its state at eviction; `Modified` means a write-back is required.
    pub state: LineState,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = (0..config.sets()).map(|_| Vec::new()).collect();
        Cache {
            config,
            sets,
            tick: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_index(&self, line: LineAddr) -> usize {
        // Mix the high bits in so private-region lines (which share high
        // tag bits) spread across sets.
        let raw = line.as_u64();
        let mixed = raw ^ (raw >> 32);
        (mixed % self.config.sets()) as usize
    }

    /// The state of `line`, updating LRU recency. `Invalid` if absent.
    pub fn access(&mut self, line: LineAddr) -> LineState {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.line == line {
                way.last_used = tick;
                return way.state;
            }
        }
        LineState::Invalid
    }

    /// The state of `line` without touching LRU state (a coherence probe).
    pub fn probe(&self, line: LineAddr) -> LineState {
        let set = self.set_index(line);
        self.sets[set]
            .iter()
            .find(|w| w.line == line)
            .map(|w| w.state)
            .unwrap_or(LineState::Invalid)
    }

    /// Inserts (or updates) `line` with `state`, evicting the LRU way if
    /// the set is full. Returns the evicted line, if any.
    ///
    /// # Panics
    ///
    /// Panics if `state` is `Invalid` — use [`Cache::invalidate`] instead.
    pub fn insert(&mut self, line: LineAddr, state: LineState) -> Option<Evicted> {
        assert!(state.is_valid(), "cannot insert a line in Invalid state");
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_index(line);
        let assoc = self.config.associativity as usize;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.state = state;
            way.last_used = tick;
            return None;
        }
        if set.len() < assoc {
            set.push(Way {
                line,
                state,
                last_used: tick,
            });
            return None;
        }
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.last_used)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        let victim = &mut set[victim_idx];
        let evicted = Evicted {
            line: victim.line,
            state: victim.state,
        };
        *victim = Way {
            line,
            state,
            last_used: tick,
        };
        Some(evicted)
    }

    /// Changes the state of a resident line in place; returns `false` if
    /// the line is absent.
    pub fn set_state(&mut self, line: LineAddr, state: LineState) -> bool {
        assert!(state.is_valid(), "use invalidate to drop a line");
        let set = self.set_index(line);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.line == line) {
            way.state = state;
            true
        } else {
            false
        }
    }

    /// Removes `line`; returns its prior state if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineState> {
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|w| w.line == line)?;
        Some(self.sets[set].swap_remove(pos).state)
    }

    /// All lines currently in `Modified` state — what a deep-sleep entry
    /// must flush.
    pub fn dirty_lines(&self) -> Vec<LineAddr> {
        let mut out: Vec<LineAddr> = self
            .sets
            .iter()
            .flatten()
            .filter(|w| w.state.is_dirty())
            .map(|w| w.line)
            .collect();
        out.sort_unstable();
        out
    }

    /// All valid lines, for invariant checks.
    pub fn resident_lines(&self) -> Vec<(LineAddr, LineState)> {
        let mut out: Vec<(LineAddr, LineState)> = self
            .sets
            .iter()
            .flatten()
            .map(|w| (w.line, w.state))
            .collect();
        out.sort_unstable_by_key(|(l, _)| *l);
        out
    }

    /// Number of valid lines resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// `true` when the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B {}-way: {} lines resident ({} dirty)",
            self.config.size_bytes,
            self.config.associativity,
            self.len(),
            self.dirty_lines().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn line(n: u64) -> LineAddr {
        Addr::new(n * LINE_BYTES).line()
    }

    #[test]
    fn table1_geometries() {
        let l1 = CacheConfig::table1_l1();
        assert_eq!(l1.sets(), 128);
        assert_eq!(l1.associativity(), 2);
        let l2 = CacheConfig::table1_l2();
        assert_eq!(l2.sets(), 128);
        assert_eq!(l2.associativity(), 8);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        assert_eq!(c.access(line(1)), LineState::Invalid);
        assert!(c.insert(line(1), LineState::Shared).is_none());
        assert_eq!(c.access(line(1)), LineState::Shared);
        assert_eq!(c.probe(line(1)), LineState::Shared);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way: fill a set with lines A and B, touch A, insert C in the
        // same set: B must be the victim.
        let cfg = CacheConfig::new(2 * 64 * 2, 2); // 2 sets, 2-way
        let mut c = Cache::new(cfg);
        let sets = cfg.sets();
        // Lines mapping to set 0 under the mixed index: choose multiples of sets.
        let a = line(0);
        let b = line(sets);
        let x = line(2 * sets);
        c.insert(a, LineState::Shared);
        c.insert(b, LineState::Shared);
        c.access(a); // make B the LRU
        let ev = c.insert(x, LineState::Shared).expect("set was full");
        assert_eq!(ev.line, b);
        assert_eq!(c.probe(a), LineState::Shared);
        assert_eq!(c.probe(b), LineState::Invalid);
    }

    #[test]
    fn dirty_eviction_reports_modified() {
        let cfg = CacheConfig::new(64 * 2, 2); // 1 set, 2-way
        let mut c = Cache::new(cfg);
        c.insert(line(0), LineState::Modified);
        c.insert(line(1), LineState::Shared);
        let ev = c.insert(line(2), LineState::Exclusive).unwrap();
        assert_eq!(ev.line, line(0));
        assert!(ev.state.is_dirty());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        c.insert(line(9), LineState::Exclusive);
        assert!(c.insert(line(9), LineState::Modified).is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.probe(line(9)), LineState::Modified);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        c.insert(line(4), LineState::Shared);
        assert_eq!(c.invalidate(line(4)), Some(LineState::Shared));
        assert_eq!(c.invalidate(line(4)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn set_state_transitions() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        c.insert(line(7), LineState::Exclusive);
        assert!(c.set_state(line(7), LineState::Modified));
        assert_eq!(c.probe(line(7)), LineState::Modified);
        assert!(!c.set_state(line(8), LineState::Shared));
    }

    #[test]
    fn dirty_lines_enumerates_modified_only() {
        let mut c = Cache::new(CacheConfig::table1_l2());
        c.insert(line(1), LineState::Modified);
        c.insert(line(2), LineState::Shared);
        c.insert(line(3), LineState::Modified);
        assert_eq!(c.dirty_lines(), vec![line(1), line(3)]);
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let cfg = CacheConfig::new(64 * 2, 2); // 1 set, 2-way
        let mut c = Cache::new(cfg);
        c.insert(line(0), LineState::Shared);
        c.insert(line(1), LineState::Shared);
        c.probe(line(0)); // must NOT refresh line 0
        let ev = c.insert(line(2), LineState::Shared).unwrap();
        assert_eq!(ev.line, line(0), "probe must not count as a use");
    }

    #[test]
    #[should_panic(expected = "Invalid state")]
    fn inserting_invalid_panics() {
        Cache::new(CacheConfig::table1_l1()).insert(line(0), LineState::Invalid);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new(3 * 64 * 2, 2);
    }

    #[test]
    fn capacity_is_respected() {
        let cfg = CacheConfig::table1_l1();
        let mut c = Cache::new(cfg);
        let capacity = (cfg.size_bytes() / LINE_BYTES) as usize;
        for i in 0..10_000 {
            c.insert(line(i), LineState::Shared);
        }
        assert!(c.len() <= capacity);
    }

    #[test]
    fn display_mentions_dirty_count() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        c.insert(line(0), LineState::Modified);
        assert!(c.to_string().contains("1 dirty"));
    }
}
