//! The coherent CC-NUMA memory system.
//!
//! Per-node two-level write-back caches sit in front of directory-controlled
//! home memories connected by a hypercube (Table 1 of the paper). The model
//! is *transaction-level*: the machine executes accesses in global time
//! order, and each access atomically updates coherence state and returns
//!
//! * its **completion time**, composed from Table 1 latencies (L1/L2 round
//!   trips, memory row access, network hops, invalidation fan-out and
//!   acknowledgment collection), and
//! * the **invalidation messages** it caused, each with its delivery time at
//!   the destination node.
//!
//! The second item is the load-bearing one for this paper: when the last
//! thread flips the barrier flag, the directory invalidates every sharer,
//! and those deliveries are the *external wake-up* signals (§3.3.1) that the
//! extended cache controller turns into CPU wake-ups.
//!
//! # Model simplifications (documented in DESIGN.md §7)
//!
//! * No data payloads are stored; the machine layer tracks logical values.
//! * Write-backs and replacement hints are off the critical path (a write
//!   buffer is assumed), so they update state but add no latency.
//! * Directory occupancy/contention is approximated by a per-message
//!   dispatch delay when fanning out invalidations.

use crate::addr::{Addr, LineAddr, MemLayout, NodeId};
use crate::cache::{Cache, CacheConfig, Evicted};
use crate::dir::Directory;
use crate::mesi::{DirState, LineState, SharerSet};
use crate::network::Hypercube;
use serde::{Deserialize, Serialize};
use std::fmt;
use tb_sim::Cycles;

/// Architecture parameters (Table 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of nodes (1 CPU per node); must be a power of two ≤ 64.
    pub nodes: u16,
    /// L1 geometry (Table 1: 16 kB, 2-way).
    pub l1: CacheConfig,
    /// L2 geometry (Table 1: 64 kB, 8-way).
    pub l2: CacheConfig,
    /// L1 round-trip latency from the processor (Table 1: 2 ns).
    pub l1_round_trip: Cycles,
    /// L2 round-trip latency from the processor (Table 1: 12 ns).
    pub l2_round_trip: Cycles,
    /// DRAM row-miss access time (Table 1: 60 ns, interleaved).
    pub mem_access: Cycles,
    /// Time to stream one 64 B line over the 16 B-wide 250 MHz bus.
    pub mem_transfer: Cycles,
    /// Serialization gap between successive invalidations dispatched by a
    /// directory (models controller occupancy).
    pub dir_dispatch: Cycles,
}

impl MachineConfig {
    /// The paper's 64-node configuration (Table 1).
    pub fn table1() -> Self {
        MachineConfig::table1_with_nodes(64)
    }

    /// Table 1 latencies with a different machine size (for the scaling
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of two in `1..=64`.
    pub fn table1_with_nodes(nodes: u16) -> Self {
        assert!(
            (1..=64).contains(&nodes) && nodes.is_power_of_two(),
            "node count must be a power of two in 1..=64, got {nodes}"
        );
        MachineConfig {
            nodes,
            l1: CacheConfig::table1_l1(),
            l2: CacheConfig::table1_l2(),
            l1_round_trip: Cycles::from_nanos(2),
            l2_round_trip: Cycles::from_nanos(12),
            mem_access: Cycles::from_nanos(60),
            mem_transfer: Cycles::from_nanos(16),
            dir_dispatch: Cycles::from_nanos(4),
        }
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes              {}", self.nodes)?;
        writeln!(
            f,
            "L1                 {} B, {}-way, 64 B lines, RT {}",
            self.l1.size_bytes(),
            self.l1.associativity(),
            self.l1_round_trip
        )?;
        writeln!(
            f,
            "L2                 {} B, {}-way, 64 B lines, RT {}",
            self.l2.size_bytes(),
            self.l2.associativity(),
            self.l2_round_trip
        )?;
        writeln!(f, "memory             row miss {}", self.mem_access)?;
        writeln!(f, "line transfer      {}", self.mem_transfer)?;
        write!(f, "network            hypercube, wormhole, 16ns/hop")
    }
}

/// How an access was satisfied (for statistics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// Satisfied by the L1.
    L1Hit,
    /// Satisfied by the L2 (L1 filled).
    L2Hit,
    /// Satisfied by the local node's memory.
    LocalMem,
    /// Satisfied by a remote home's memory.
    RemoteMem,
    /// Satisfied by a cache-to-cache transfer from the owning node.
    CacheToCache,
    /// A write upgrade of an already-cached shared line.
    Upgrade,
}

/// One invalidation message caused by a write, with its delivery time.
///
/// The machine layer turns deliveries on *watched* lines into external
/// wake-up signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invalidation {
    /// Destination node whose cached copy is invalidated.
    pub node: NodeId,
    /// The invalidated line.
    pub line: LineAddr,
    /// When the message reaches the destination's cache controller.
    pub at: Cycles,
}

/// Result of a memory access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// When the requesting processor can proceed.
    pub completion: Cycles,
    /// How the access was satisfied.
    pub class: AccessClass,
    /// The line involved.
    pub line: LineAddr,
    /// Invalidations sent to other nodes (writes only).
    pub invalidations: Vec<Invalidation>,
}

impl Access {
    /// Latency from issue to completion.
    pub fn latency(&self, issued: Cycles) -> Cycles {
        self.completion.saturating_sub(issued)
    }
}

/// Result of flushing dirty shared lines before a non-snoopable sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlushOutcome {
    /// Number of dirty shared lines written back.
    pub lines: usize,
    /// Time the flush occupied the processor/cache controller.
    pub duration: Cycles,
}

/// Aggregate event counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Total read accesses.
    pub reads: u64,
    /// Total write accesses.
    pub writes: u64,
    /// Accesses satisfied by the L1.
    pub l1_hits: u64,
    /// Accesses satisfied by the L2.
    pub l2_hits: u64,
    /// Directory transactions (anything past the L2).
    pub dir_transactions: u64,
    /// Invalidation messages sent.
    pub invalidations_sent: u64,
    /// Dirty lines written back (evictions and sharing write-backs).
    pub writebacks: u64,
    /// Cache-to-cache transfers.
    pub cache_to_cache: u64,
    /// Flush operations performed.
    pub flushes: u64,
    /// Lines written back by flushes.
    pub flushed_lines: u64,
}

#[derive(Debug)]
struct NodeCaches {
    l1: Cache,
    l2: Cache,
}

/// The coherent memory system: all caches, directories, and the network.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MachineConfig,
    layout: MemLayout,
    net: Hypercube,
    nodes: Vec<NodeCaches>,
    dir: Directory,
    stats: MemStats,
    /// Reusable buffer for [`MemorySystem::flush_dirty_shared`], so the
    /// per-sleep-transition flush allocates nothing in steady state.
    flush_scratch: Vec<LineAddr>,
    /// Wake-up fault injector (`None` outside fault experiments, so the
    /// baseline write path never even branches on a watched line).
    faults: Option<crate::faults::InvalidationFaults>,
}

impl MemorySystem {
    /// Creates a memory system with cold caches.
    pub fn new(cfg: MachineConfig) -> Self {
        let layout = MemLayout::new(cfg.nodes);
        let net = Hypercube::table1(cfg.nodes);
        let nodes = (0..cfg.nodes)
            .map(|_| NodeCaches {
                l1: Cache::new(cfg.l1),
                l2: Cache::new(cfg.l2),
            })
            .collect();
        MemorySystem {
            cfg,
            layout,
            net,
            nodes,
            dir: Directory::new(),
            stats: MemStats::default(),
            flush_scratch: Vec::new(),
            faults: None,
        }
    }

    /// Installs a wake-up fault injector. Invalidations of its watched line
    /// produced by subsequent [`write`](Self::write) calls may be lost or
    /// delayed; everything else is untouched.
    pub fn set_faults(&mut self, faults: crate::faults::InvalidationFaults) {
        self.faults = Some(faults);
    }

    /// Drains the injector's fault log (empty when no injector is set).
    pub fn drain_fault_log(&mut self) -> Vec<crate::faults::InvalidationFaultRecord> {
        self.faults
            .as_mut()
            .map(crate::faults::InvalidationFaults::drain_log)
            .unwrap_or_default()
    }

    /// The machine's address layout.
    pub fn layout(&self) -> &MemLayout {
        &self.layout
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The interconnect.
    pub fn network(&self) -> &Hypercube {
        &self.net
    }

    /// Event counters accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Directory state of a line (for tests and invariant checks).
    pub fn dir_state(&self, line: LineAddr) -> DirState {
        self.dir.get(line)
    }

    /// The per-level cache states of `line` at `node` (L1, L2), without
    /// perturbing LRU state — for invariant checks.
    pub fn probe_levels(&self, node: NodeId, line: LineAddr) -> (LineState, LineState) {
        let nc = &self.nodes[node.index()];
        (nc.l1.probe(line), nc.l2.probe(line))
    }

    /// The cache state of `line` at `node` (L1 first, then L2), without
    /// perturbing LRU state.
    pub fn cached_state(&self, node: NodeId, line: LineAddr) -> LineState {
        let nc = &self.nodes[node.index()];
        let l1 = nc.l1.probe(line);
        if l1.is_valid() {
            l1
        } else {
            nc.l2.probe(line)
        }
    }

    /// Performs a read by `node` at time `now`.
    pub fn read(&mut self, node: NodeId, addr: Addr, now: Cycles) -> Access {
        self.stats.reads += 1;
        let line = addr.line();
        let nc = &mut self.nodes[node.index()];
        let l1 = nc.l1.access(line);
        if l1.is_valid() {
            self.stats.l1_hits += 1;
            return Access {
                completion: now + self.cfg.l1_round_trip,
                class: AccessClass::L1Hit,
                line,
                invalidations: Vec::new(),
            };
        }
        let l2 = nc.l2.access(line);
        if l2.is_valid() {
            self.stats.l2_hits += 1;
            self.fill_l1(node, line, l2);
            return Access {
                completion: now + self.cfg.l2_round_trip,
                class: AccessClass::L2Hit,
                line,
                invalidations: Vec::new(),
            };
        }
        self.read_miss(node, line, now)
    }

    /// Performs a write by `node` at time `now`.
    ///
    /// Atomic read-modify-writes (the barrier's `count++` under its lock)
    /// are modeled as writes: the line ends up Modified at the writer.
    pub fn write(&mut self, node: NodeId, addr: Addr, now: Cycles) -> Access {
        self.stats.writes += 1;
        let line = addr.line();
        // Silent-write fast path: a line held Modified or Exclusive can be
        // written without consulting the directory at all, so the compute
        // phase's working-set rewrite stays entirely inside the node.
        let nc = &mut self.nodes[node.index()];
        let l1 = nc.l1.write_access(line);
        if l1.can_write_silently() {
            self.stats.l1_hits += 1;
            return Access {
                completion: now + self.cfg.l1_round_trip,
                class: AccessClass::L1Hit,
                line,
                invalidations: Vec::new(),
            };
        }
        let mut access = self.write_after_l1(node, line, l1, now);
        if let Some(f) = self.faults.as_mut() {
            f.apply(&mut access.invalidations);
        }
        access
    }

    /// The non-silent remainder of [`write`](Self::write), entered after the
    /// L1 probe (whose LRU bump already happened) returned `l1`.
    fn write_after_l1(
        &mut self,
        node: NodeId,
        line: LineAddr,
        l1: LineState,
        now: Cycles,
    ) -> Access {
        let nc = &mut self.nodes[node.index()];
        if !l1.is_valid() {
            let l2 = nc.l2.write_access(line);
            if l2.can_write_silently() {
                self.stats.l2_hits += 1;
                self.fill_l1(node, line, LineState::Modified);
                return Access {
                    completion: now + self.cfg.l2_round_trip,
                    class: AccessClass::L2Hit,
                    line,
                    invalidations: Vec::new(),
                };
            }
            if !l2.is_valid() {
                return self.write_miss(node, line, now);
            }
        }
        // Cached in Shared state somewhere locally: upgrade.
        self.upgrade(node, line, now)
    }

    /// Performs `lines` back-to-back writes to consecutive cache lines
    /// starting at `base`, chaining each write's completion into the next
    /// write's issue time, and returns the final completion.
    ///
    /// This is the compute phase's working-set rewrite loop, pulled below
    /// the dispatch layer: the (overwhelmingly common) silent-write case is
    /// decided right here from the L1 probe, without materializing an
    /// [`Access`] per line. The sequence of coherence actions — and thus
    /// every timestamp and counter — is identical to calling
    /// [`write`](Self::write) once per line.
    pub fn write_line_run(&mut self, node: NodeId, base: Addr, lines: u32, now: Cycles) -> Cycles {
        let mut t = now;
        for i in 0..lines as u64 {
            let line = base.offset(i * crate::addr::LINE_BYTES).line();
            self.stats.writes += 1;
            let nc = &mut self.nodes[node.index()];
            let l1 = nc.l1.write_access(line);
            if l1.can_write_silently() {
                self.stats.l1_hits += 1;
                t += self.cfg.l1_round_trip;
            } else {
                t = self.write_after_l1(node, line, l1, t).completion;
            }
        }
        t
    }

    /// Flushes `node`'s dirty **shared** lines to their homes, as required
    /// before entering a sleep state whose cache cannot service coherence
    /// requests (§3.1). Dirty copies are retained clean (the supply voltage
    /// is not interrupted, so data are preserved); the directory records the
    /// node as a clean sharer, letting the cache controller acknowledge
    /// later invalidations on the sleeping CPU's behalf.
    pub fn flush_dirty_shared(&mut self, node: NodeId, now: Cycles) -> FlushOutcome {
        let _ = now;
        // Reuse the scratch buffer: after warm-up, collecting the dirty
        // set allocates nothing. Filter + sort + dedup matches the old
        // collect-then-sort behavior exactly (sorting makes the combined
        // L1/L2 order irrelevant).
        let mut lines = std::mem::take(&mut self.flush_scratch);
        lines.clear();
        let nc = &self.nodes[node.index()];
        nc.l1.dirty_lines_into(&mut lines);
        nc.l2.dirty_lines_into(&mut lines);
        lines.retain(|l| !l.base_addr().is_private());
        lines.sort_unstable();
        lines.dedup();
        let mut farthest = Cycles::ZERO;
        for &line in &lines {
            let nc = &mut self.nodes[node.index()];
            nc.l1.make_shared_if_dirty(line);
            if !nc.l2.set_state(line, LineState::Shared) {
                // Dirty only in L1 (inclusion broken by an L2 upgrade race
                // cannot happen in this model, but keep the copy coherent).
                nc.l2.insert(line, LineState::Shared);
            }
            let home = self.layout.home_of(line);
            farthest = farthest.max(self.net.line_latency(node, home));
            self.dir
                .set(line, DirState::Shared(SharerSet::singleton(node)));
            self.stats.writebacks += 1;
        }
        self.stats.flushes += 1;
        self.stats.flushed_lines += lines.len() as u64;
        let duration = if lines.is_empty() {
            self.cfg.l2_round_trip
        } else {
            // Pipelined write-back stream: startup + per-line bus occupancy
            // + the tail message reaching the farthest home involved.
            self.cfg.l2_round_trip + self.cfg.mem_transfer * lines.len() as u64 + farthest
        };
        let outcome = FlushOutcome {
            lines: lines.len(),
            duration,
        };
        self.flush_scratch = lines;
        outcome
    }

    // ----- internal helpers ------------------------------------------------

    /// Fills the L1 with `line`, handling the inclusion consequences of the
    /// victim.
    fn fill_l1(&mut self, node: NodeId, line: LineAddr, state: LineState) {
        let nc = &mut self.nodes[node.index()];
        if let Some(Evicted {
            line: vl,
            state: vs,
        }) = nc.l1.insert(line, state)
        {
            if vs.is_dirty() {
                // Fold the dirty data back into the (inclusive) L2 copy.
                if !nc.l2.set_state(vl, LineState::Modified) {
                    // L2 lost the line (its own eviction invalidated our L1
                    // copy first, so this cannot normally happen); write back.
                    self.writeback_to_home(node, vl);
                }
            }
        }
    }

    /// Fills L2 then L1 with `line`, handling evictions at both levels.
    fn fill_both(&mut self, node: NodeId, line: LineAddr, state: LineState) {
        let evicted = self.nodes[node.index()].l2.insert(line, state);
        if let Some(Evicted {
            line: vl,
            state: vs,
        }) = evicted
        {
            // Inclusion: the L1 copy (if any) goes too; it may be dirtier
            // than the L2's record of it.
            let l1_state = self.nodes[node.index()].l1.invalidate(vl);
            let dirty = vs.is_dirty() || l1_state.is_some_and(|s| s.is_dirty());
            if dirty {
                self.writeback_to_home(node, vl);
            } else {
                self.drop_clean_holder(node, vl);
            }
        }
        self.fill_l1(node, line, state);
    }

    /// Write-back of a dirty line on eviction: memory becomes the only copy.
    fn writeback_to_home(&mut self, node: NodeId, line: LineAddr) {
        self.stats.writebacks += 1;
        match self.dir_state(line) {
            DirState::Exclusive(owner) if owner == node => {
                self.dir.set(line, DirState::Uncached);
            }
            other => panic!("write-back of {line} from {node} but directory says {other}"),
        }
    }

    /// Replacement hint for a clean eviction: the directory drops the node.
    fn drop_clean_holder(&mut self, node: NodeId, line: LineAddr) {
        match self.dir_state(line) {
            DirState::Exclusive(owner) if owner == node => {
                self.dir.set(line, DirState::Uncached);
            }
            DirState::Shared(s) => {
                let s = s.without(node);
                self.dir.set(
                    line,
                    if s.is_empty() {
                        DirState::Uncached
                    } else {
                        DirState::Shared(s)
                    },
                );
            }
            DirState::Uncached | DirState::Exclusive(_) => {
                // A stale hint; full-map directories tolerate it.
            }
        }
    }

    fn read_miss(&mut self, node: NodeId, line: LineAddr, now: Cycles) -> Access {
        self.stats.dir_transactions += 1;
        let home = self.layout.home_of(line);
        let t_home = now + self.cfg.l2_round_trip + self.net.control_latency(node, home);
        match self.dir_state(line) {
            DirState::Uncached => {
                let t_data = t_home + self.cfg.mem_access + self.cfg.mem_transfer;
                let completion = t_data + self.net.line_latency(home, node);
                self.dir.set(line, DirState::Exclusive(node));
                self.fill_both(node, line, LineState::Exclusive);
                Access {
                    completion,
                    class: if home == node {
                        AccessClass::LocalMem
                    } else {
                        AccessClass::RemoteMem
                    },
                    line,
                    invalidations: Vec::new(),
                }
            }
            DirState::Shared(s) => {
                debug_assert!(
                    !s.contains(node),
                    "missed a line the directory says we share"
                );
                let t_data = t_home + self.cfg.mem_access + self.cfg.mem_transfer;
                let completion = t_data + self.net.line_latency(home, node);
                let mut s = s;
                s.insert(node);
                self.dir.set(line, DirState::Shared(s));
                self.fill_both(node, line, LineState::Shared);
                Access {
                    completion,
                    class: if home == node {
                        AccessClass::LocalMem
                    } else {
                        AccessClass::RemoteMem
                    },
                    line,
                    invalidations: Vec::new(),
                }
            }
            DirState::Exclusive(owner) => {
                assert_ne!(owner, node, "missed a line the directory says we own");
                self.stats.cache_to_cache += 1;
                // Forward to owner; owner supplies data and downgrades to
                // Shared, writing dirty data back to home off-path.
                let t_owner =
                    t_home + self.net.control_latency(home, owner) + self.cfg.l2_round_trip;
                let completion = t_owner + self.net.line_latency(owner, node);
                let onc = &mut self.nodes[owner.index()];
                let was_dirty = onc.l1.probe(line).is_dirty() || onc.l2.probe(line).is_dirty();
                if onc.l1.probe(line).is_valid() {
                    onc.l1.set_state(line, LineState::Shared);
                }
                if onc.l2.probe(line).is_valid() {
                    onc.l2.set_state(line, LineState::Shared);
                }
                if was_dirty {
                    self.stats.writebacks += 1; // sharing write-back to home
                }
                let holders: SharerSet = [owner, node].into_iter().collect();
                self.dir.set(line, DirState::Shared(holders));
                self.fill_both(node, line, LineState::Shared);
                Access {
                    completion,
                    class: AccessClass::CacheToCache,
                    line,
                    invalidations: Vec::new(),
                }
            }
        }
    }

    fn write_miss(&mut self, node: NodeId, line: LineAddr, now: Cycles) -> Access {
        self.stats.dir_transactions += 1;
        let home = self.layout.home_of(line);
        let t_home = now + self.cfg.l2_round_trip + self.net.control_latency(node, home);
        match self.dir_state(line) {
            DirState::Uncached => {
                let t_data = t_home + self.cfg.mem_access + self.cfg.mem_transfer;
                let completion = t_data + self.net.line_latency(home, node);
                self.dir.set(line, DirState::Exclusive(node));
                self.fill_both(node, line, LineState::Modified);
                Access {
                    completion,
                    class: if home == node {
                        AccessClass::LocalMem
                    } else {
                        AccessClass::RemoteMem
                    },
                    line,
                    invalidations: Vec::new(),
                }
            }
            DirState::Shared(s) => {
                let targets = s.without(node);
                let (invalidations, last_ack) =
                    self.fan_out_invalidations(node, line, home, t_home, targets);
                let t_data = t_home + self.cfg.mem_access + self.cfg.mem_transfer;
                let t_grant = t_data + self.net.line_latency(home, node);
                let completion = t_grant.max(last_ack);
                self.dir.set(line, DirState::Exclusive(node));
                self.fill_both(node, line, LineState::Modified);
                Access {
                    completion,
                    class: if home == node {
                        AccessClass::LocalMem
                    } else {
                        AccessClass::RemoteMem
                    },
                    line,
                    invalidations,
                }
            }
            DirState::Exclusive(owner) => {
                assert_ne!(owner, node, "write-missed a line the directory says we own");
                self.stats.cache_to_cache += 1;
                let t_owner =
                    t_home + self.net.control_latency(home, owner) + self.cfg.l2_round_trip;
                let completion = t_owner + self.net.line_latency(owner, node);
                let onc = &mut self.nodes[owner.index()];
                onc.l1.invalidate(line);
                onc.l2.invalidate(line);
                let invalidations = vec![Invalidation {
                    node: owner,
                    line,
                    at: t_owner,
                }];
                self.stats.invalidations_sent += 1;
                self.dir.set(line, DirState::Exclusive(node));
                self.fill_both(node, line, LineState::Modified);
                Access {
                    completion,
                    class: AccessClass::CacheToCache,
                    line,
                    invalidations,
                }
            }
        }
    }

    fn upgrade(&mut self, node: NodeId, line: LineAddr, now: Cycles) -> Access {
        self.stats.dir_transactions += 1;
        let home = self.layout.home_of(line);
        let t_home = now + self.cfg.l1_round_trip + self.net.control_latency(node, home);
        let targets = match self.dir_state(line) {
            DirState::Shared(s) => s.without(node),
            // The directory may already say Exclusive(us) if the L2 held E
            // while the L1 held S; treat as silent upgrade.
            DirState::Exclusive(owner) if owner == node => SharerSet::EMPTY,
            other => panic!("upgrade of {line} by {node} but directory says {other}"),
        };
        let (invalidations, last_ack) =
            self.fan_out_invalidations(node, line, home, t_home, targets);
        let t_grant = t_home + self.net.control_latency(home, node);
        let completion = t_grant.max(last_ack).max(now + self.cfg.l1_round_trip);
        self.dir.set(line, DirState::Exclusive(node));
        let nc = &mut self.nodes[node.index()];
        if !nc.l2.set_state(line, LineState::Modified) {
            nc.l2.insert(line, LineState::Modified);
        }
        if !nc.l1.set_state(line, LineState::Modified) {
            self.fill_l1(node, line, LineState::Modified);
        }
        Access {
            completion,
            class: AccessClass::Upgrade,
            line,
            invalidations,
        }
    }

    /// Sends invalidations for `line` from `home` to every node in
    /// `targets`, removing their copies. Returns the messages (with
    /// delivery times) and the time the last acknowledgment reaches the
    /// requester.
    fn fan_out_invalidations(
        &mut self,
        requester: NodeId,
        line: LineAddr,
        home: NodeId,
        t_home: Cycles,
        targets: SharerSet,
    ) -> (Vec<Invalidation>, Cycles) {
        let mut invalidations = Vec::with_capacity(targets.len());
        let mut last_ack = t_home;
        for (i, sharer) in targets.iter().enumerate() {
            let dispatched = t_home + self.cfg.dir_dispatch * i as u64;
            let delivered = dispatched + self.net.control_latency(home, sharer);
            let nc = &mut self.nodes[sharer.index()];
            nc.l1.invalidate(line);
            nc.l2.invalidate(line);
            invalidations.push(Invalidation {
                node: sharer,
                line,
                at: delivered,
            });
            let ack = delivered + self.net.control_latency(sharer, requester);
            last_ack = last_ack.max(ack);
            self.stats.invalidations_sent += 1;
        }
        (invalidations, last_ack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(nodes: u16) -> MemorySystem {
        MemorySystem::new(MachineConfig::table1_with_nodes(nodes))
    }

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn first_read_misses_then_hits() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        let r1 = m.read(n(1), a, Cycles::ZERO);
        assert_ne!(r1.class, AccessClass::L1Hit);
        assert!(r1.completion > Cycles::ZERO);
        let r2 = m.read(n(1), a, r1.completion);
        assert_eq!(r2.class, AccessClass::L1Hit);
        assert_eq!(r2.latency(r1.completion), Cycles::from_nanos(2));
    }

    #[test]
    fn first_reader_gets_exclusive_then_sharers_downgrade() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        m.read(n(1), a, Cycles::ZERO);
        assert_eq!(m.dir_state(a.line()), DirState::Exclusive(n(1)));
        assert_eq!(m.cached_state(n(1), a.line()), LineState::Exclusive);
        let r = m.read(n(2), a, Cycles::from_nanos(500));
        assert_eq!(r.class, AccessClass::CacheToCache);
        assert_eq!(m.cached_state(n(1), a.line()), LineState::Shared);
        assert_eq!(m.cached_state(n(2), a.line()), LineState::Shared);
        match m.dir_state(a.line()) {
            DirState::Shared(s) => {
                assert!(s.contains(n(1)) && s.contains(n(2)) && s.len() == 2)
            }
            other => panic!("expected Shared, got {other}"),
        }
    }

    #[test]
    fn write_to_shared_line_invalidates_all_sharers() {
        let mut m = sys(8);
        let a = m.layout().shared_addr(0, 0);
        for i in 1..6 {
            m.read(n(i), a, Cycles::from_nanos(i as u64 * 1000));
        }
        let w = m.write(n(0), a, Cycles::from_micros(10));
        assert_eq!(w.invalidations.len(), 5);
        for inv in &w.invalidations {
            assert!(inv.at > Cycles::from_micros(10));
            assert_eq!(inv.line, a.line());
            assert_eq!(m.cached_state(inv.node, a.line()), LineState::Invalid);
        }
        assert_eq!(m.dir_state(a.line()), DirState::Exclusive(n(0)));
        assert_eq!(m.cached_state(n(0), a.line()), LineState::Modified);
        // Completion waits for the last acknowledgment.
        let max_delivery = w.invalidations.iter().map(|i| i.at).max().unwrap();
        assert!(w.completion >= max_delivery);
    }

    #[test]
    fn silent_write_on_exclusive() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        let r = m.read(n(2), a, Cycles::ZERO);
        let w = m.write(n(2), a, r.completion);
        assert_eq!(w.class, AccessClass::L1Hit);
        assert!(w.invalidations.is_empty());
        assert_eq!(m.cached_state(n(2), a.line()), LineState::Modified);
        assert_eq!(m.dir_state(a.line()), DirState::Exclusive(n(2)));
    }

    #[test]
    fn upgrade_from_shared_pays_coherence() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        m.read(n(0), a, Cycles::ZERO);
        m.read(n(1), a, Cycles::from_micros(1));
        let w = m.write(n(0), a, Cycles::from_micros(2));
        assert_eq!(w.class, AccessClass::Upgrade);
        assert_eq!(w.invalidations.len(), 1);
        assert_eq!(w.invalidations[0].node, n(1));
        assert_eq!(m.cached_state(n(1), a.line()), LineState::Invalid);
    }

    #[test]
    fn write_miss_on_modified_steals_ownership() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        m.write(n(1), a, Cycles::ZERO);
        let w = m.write(n(2), a, Cycles::from_micros(1));
        assert_eq!(w.class, AccessClass::CacheToCache);
        assert_eq!(w.invalidations.len(), 1);
        assert_eq!(w.invalidations[0].node, n(1));
        assert_eq!(m.dir_state(a.line()), DirState::Exclusive(n(2)));
        assert_eq!(m.cached_state(n(1), a.line()), LineState::Invalid);
    }

    #[test]
    fn local_vs_remote_memory_latency() {
        let mut m = sys(4);
        // Page 0 homes at node 0; page 1 at node 1.
        let local = m.layout().shared_addr(0, 0);
        let remote = m.layout().shared_addr(1, 0);
        let rl = m.read(n(0), local, Cycles::ZERO);
        let rr = m.read(n(0), remote, Cycles::ZERO);
        assert_eq!(rl.class, AccessClass::LocalMem);
        assert_eq!(rr.class, AccessClass::RemoteMem);
        assert!(rr.latency(Cycles::ZERO) > rl.latency(Cycles::ZERO));
    }

    #[test]
    fn flush_writes_back_shared_dirty_and_keeps_clean_copy() {
        let mut m = sys(4);
        let shared = m.layout().shared_addr(0, 0);
        let private = m.layout().private_addr(n(1), 0, 0);
        m.write(n(1), shared, Cycles::ZERO);
        m.write(n(1), private, Cycles::from_micros(1));
        let f = m.flush_dirty_shared(n(1), Cycles::from_micros(2));
        assert_eq!(f.lines, 1, "only the shared dirty line is flushed");
        assert!(f.duration > Cycles::ZERO);
        assert_eq!(m.cached_state(n(1), shared.line()), LineState::Shared);
        assert_eq!(
            m.dir_state(shared.line()),
            DirState::Shared(SharerSet::singleton(n(1)))
        );
        // Private line untouched.
        assert_eq!(m.cached_state(n(1), private.line()), LineState::Modified);
    }

    #[test]
    fn flush_with_nothing_dirty_is_cheap() {
        let mut m = sys(2);
        let f = m.flush_dirty_shared(n(0), Cycles::ZERO);
        assert_eq!(f.lines, 0);
        assert_eq!(f.duration, m.config().l2_round_trip);
    }

    #[test]
    fn reread_after_flush_hits_locally() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        m.write(n(1), a, Cycles::ZERO);
        m.flush_dirty_shared(n(1), Cycles::from_micros(1));
        let r = m.read(n(1), a, Cycles::from_micros(2));
        assert_eq!(r.class, AccessClass::L1Hit, "clean copy retained");
    }

    #[test]
    fn rewrite_after_flush_needs_upgrade() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        m.write(n(1), a, Cycles::ZERO);
        m.flush_dirty_shared(n(1), Cycles::from_micros(1));
        let w = m.write(n(1), a, Cycles::from_micros(2));
        assert_eq!(
            w.class,
            AccessClass::Upgrade,
            "flush cost resurfaces on re-write"
        );
    }

    #[test]
    fn barrier_flag_pattern_end_to_end() {
        // The paper's §3.3.1 mechanism: spinners cache the flag Shared; the
        // releaser's write invalidates every spinner, and the deliveries are
        // the wake-up signals.
        let mut m = sys(64);
        let flag = m.layout().shared_addr(10, 0);
        let releaser = n(13);
        let mut t = Cycles::ZERO;
        for i in 0..64u16 {
            if n(i) != releaser {
                m.read(n(i), flag, t);
                t += Cycles::from_nanos(200);
            }
        }
        let w = m.write(releaser, flag, Cycles::from_micros(100));
        assert_eq!(w.invalidations.len(), 63);
        let mut seen: Vec<u16> = w.invalidations.iter().map(|i| i.node.as_u16()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 63);
        for inv in &w.invalidations {
            assert!(inv.at >= Cycles::from_micros(100));
            // Wake-up delivery is microseconds, not milliseconds: "much
            // smaller than the barrier interval time".
            assert!(inv.at < Cycles::from_micros(102));
        }
    }

    #[test]
    fn eviction_notifies_directory() {
        let mut m = sys(2);
        // Fill node 0's L2 far beyond capacity with private lines.
        let total_lines = (m.config().l2.size_bytes() / 64) * 4;
        let mut t = Cycles::ZERO;
        for i in 0..total_lines {
            let a = m.layout().private_addr(n(0), i / 64, (i % 64) * 64);
            m.write(n(0), a, t);
            t += Cycles::from_micros(1);
        }
        // Every line the directory still attributes to node 0 must actually
        // be resident somewhere in node 0's hierarchy.
        let mut resident = std::collections::HashSet::new();
        for (l, _) in m.nodes[0].l1.resident_lines() {
            resident.insert(l);
        }
        for (l, _) in m.nodes[0].l2.resident_lines() {
            resident.insert(l);
        }
        for (line, state) in m.dir.iter() {
            if let DirState::Exclusive(owner) = state {
                if owner == n(0) {
                    assert!(resident.contains(&line), "directory stale for {line}");
                }
            }
        }
        assert!(m.stats().writebacks > 0, "capacity evictions wrote back");
    }

    #[test]
    fn stats_accumulate() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        m.read(n(0), a, Cycles::ZERO);
        m.read(n(0), a, Cycles::from_nanos(100));
        m.write(n(1), a, Cycles::from_micros(1));
        let s = m.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.l1_hits, 1);
        assert!(s.dir_transactions >= 2);
        assert!(s.invalidations_sent >= 1);
    }

    #[test]
    fn config_display_mentions_table1_values() {
        let c = MachineConfig::table1();
        let s = c.to_string();
        assert!(s.contains("64"));
        assert!(s.contains("hypercube"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_node_count_rejected() {
        let _ = MachineConfig::table1_with_nodes(5);
    }
}
