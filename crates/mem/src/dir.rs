//! Two-tier full-map coherence directory storage.
//!
//! Every coherence transaction consults (and usually updates) the
//! directory entry of its line, so the entry lookup sits squarely on the
//! simulator's hot path. A `HashMap<LineAddr, DirState>` pays a SipHash
//! plus probe sequence per transaction; this module replaces it with:
//!
//! * a **dense tier** — a flat `Vec<DirState>` indexed directly by line
//!   number, pre-sized to cover the shared pages the machine layer
//!   actually touches (barrier count/flag pages and the per-thread
//!   working-set pages all live in the first few hundred shared pages),
//!   making the common lookup a bounds-checked array load; and
//! * a **sparse tier** — an integer-hashed `HashMap` fallback for
//!   stragglers (private-region lines, whose addresses carry the private
//!   tag in bit 63, and any shared line beyond the dense window). The
//!   hasher is a single multiply (Fibonacci-style, the `fxhash`
//!   finalizer), not SipHash; entries are removed when they return to
//!   [`DirState::Uncached`] so iteration and memory stay proportional to
//!   the genuinely-cached straggler population.
//!
//! Both tiers agree on semantics: an absent entry *is*
//! [`DirState::Uncached`], exactly like the old map's
//! `get().unwrap_or_default()`.

use crate::addr::{LineAddr, LINE_BYTES};
use crate::mesi::DirState;
use crate::Addr;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Shared pages covered by the dense tier. The machine layer places the
/// barrier pages at 2–3 and the working sets at pages 64..576
/// (`DIRTY_BASE_PAGE + 64 threads × 8 pages`); 1024 pages leaves slack
/// for future layouts while costing only `1024 × 64 × 1 B` of storage.
const DENSE_PAGES: u64 = 1024;

/// Line numbers below this hit the dense tier.
const DENSE_LINES: u64 = DENSE_PAGES * (crate::addr::PAGE_BYTES / LINE_BYTES);

/// A 64-bit integer hasher in the `fxhash` family: one XOR-fold and one
/// multiply. Keys are line numbers (already well-mixed by the private-bit
/// layout), so this is collision-adequate and an order of magnitude
/// cheaper than the default SipHash.
#[derive(Default)]
pub struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; fold arbitrary input anyway so
        // the impl is total.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x517cc1b727220a95);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x517cc1b727220a95);
    }
}

type SparseMap = HashMap<u64, DirState, BuildHasherDefault<LineHasher>>;

/// Full-map directory storage: dense array for the known-hot shared page
/// window, integer-hashed map for everything else.
#[derive(Debug, Clone)]
pub struct Directory {
    dense: Vec<DirState>,
    sparse: SparseMap,
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// Creates an empty directory (every line `Uncached`).
    pub fn new() -> Self {
        Directory {
            dense: vec![DirState::Uncached; DENSE_LINES as usize],
            sparse: SparseMap::default(),
        }
    }

    /// The entry for `line`; `Uncached` if never set.
    #[inline]
    pub fn get(&self, line: LineAddr) -> DirState {
        let n = line.as_u64();
        if n < DENSE_LINES {
            self.dense[n as usize]
        } else {
            self.sparse.get(&n).copied().unwrap_or_default()
        }
    }

    /// Sets the entry for `line`. Setting `Uncached` erases it.
    #[inline]
    pub fn set(&mut self, line: LineAddr, state: DirState) {
        let n = line.as_u64();
        if n < DENSE_LINES {
            self.dense[n as usize] = state;
        } else if state == DirState::Uncached {
            self.sparse.remove(&n);
        } else {
            self.sparse.insert(n, state);
        }
    }

    /// All lines whose entry is not `Uncached`, in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, DirState)> + '_ {
        let dense = self
            .dense
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != DirState::Uncached)
            .map(|(n, s)| (line_from_raw(n as u64), *s));
        let sparse = self
            .sparse
            .iter()
            .filter(|(_, s)| **s != DirState::Uncached)
            .map(|(n, s)| (line_from_raw(*n), *s));
        dense.chain(sparse)
    }
}

fn line_from_raw(n: u64) -> LineAddr {
    Addr::new(n * LINE_BYTES).line()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesi::SharerSet;
    use crate::NodeId;

    fn line(n: u64) -> LineAddr {
        line_from_raw(n)
    }

    fn shared(nodes: &[u16]) -> DirState {
        let mut s = SharerSet::EMPTY;
        for &n in nodes {
            s.insert(NodeId::new(n));
        }
        DirState::Shared(s)
    }

    #[test]
    fn absent_is_uncached_in_both_tiers() {
        let d = Directory::new();
        assert_eq!(d.get(line(0)), DirState::Uncached);
        assert_eq!(d.get(line(DENSE_LINES + 7)), DirState::Uncached);
        assert_eq!(d.get(line(u64::MAX / LINE_BYTES)), DirState::Uncached);
    }

    #[test]
    fn set_get_roundtrip_across_the_boundary() {
        let mut d = Directory::new();
        for n in [0, 1, DENSE_LINES - 1, DENSE_LINES, DENSE_LINES + 1, 1 << 40] {
            let st = shared(&[3]);
            d.set(line(n), st);
            assert_eq!(d.get(line(n)), st, "line {n}");
        }
    }

    #[test]
    fn setting_uncached_erases() {
        let mut d = Directory::new();
        d.set(line(5), shared(&[1]));
        d.set(line(DENSE_LINES + 5), shared(&[2]));
        d.set(line(5), DirState::Uncached);
        d.set(line(DENSE_LINES + 5), DirState::Uncached);
        assert_eq!(d.get(line(5)), DirState::Uncached);
        assert_eq!(d.get(line(DENSE_LINES + 5)), DirState::Uncached);
        assert_eq!(d.iter().count(), 0);
        assert!(
            d.sparse.is_empty(),
            "sparse tier must not retain tombstones"
        );
    }

    #[test]
    fn iter_spans_both_tiers() {
        let mut d = Directory::new();
        d.set(line(2), shared(&[0]));
        d.set(line(DENSE_LINES + 9), shared(&[1]));
        let mut got: Vec<u64> = d.iter().map(|(l, _)| l.as_u64()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![2, DENSE_LINES + 9]);
    }

    #[test]
    fn dense_window_covers_machine_layout() {
        // The machine layer's hottest lines: barrier pages 2–3 and
        // working-set pages 64..(64 + 64 × 8). All must be dense hits.
        let lines_per_page = crate::addr::PAGE_BYTES / LINE_BYTES;
        let last_ws_page = 64 + 64 * 8 - 1;
        assert!((last_ws_page + 1) * lines_per_page <= DENSE_LINES);
    }
}
