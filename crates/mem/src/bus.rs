//! A snooping-bus SMP memory system — the alternative substrate.
//!
//! The paper's machine is a directory-based CC-NUMA; its related work
//! (Jetty, serial snooping) targets *bus-based SMPs*, where every cache
//! snoops a shared bus and writes broadcast their invalidations. For the
//! thrifty barrier the difference is concentrated in one place: the
//! external wake-up. On a bus, the flag-flip's invalidation is observed by
//! **all** sharers at the same instant (one broadcast), while the
//! directory fans out point-to-point messages with per-destination
//! latencies. The bus also serializes *every* miss, so barrier arrival
//! storms contend.
//!
//! [`BusMemorySystem`] exposes the same transactional API as the directory
//! [`crate::MemorySystem`] (reads/writes returning completion times and
//! invalidation deliveries, plus dirty-shared flushes), so the machine
//! simulator runs unchanged on either substrate via
//! [`crate::CoherentMemory`].
//!
//! Internally the model keeps an exact sharer map per line — the moral
//! equivalent of duplicate snoop tags — while the *timing* follows the
//! bus: arbitration, one address phase that every controller snoops, and
//! a data phase from memory or the owning cache.

use crate::addr::{Addr, LineAddr, MemLayout, NodeId};
use crate::cache::{Cache, CacheConfig, Evicted};
use crate::dir::Directory;
use crate::mesi::{DirState, LineState, SharerSet};
use crate::system::{Access, AccessClass, FlushOutcome, Invalidation, MemStats};
use serde::{Deserialize, Serialize};
use std::fmt;
use tb_sim::Cycles;

/// Bus-based SMP parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Number of processors on the bus.
    pub nodes: u16,
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// L1 round-trip latency.
    pub l1_round_trip: Cycles,
    /// L2 round-trip latency.
    pub l2_round_trip: Cycles,
    /// Bus arbitration latency (request to grant, uncontended).
    pub arbitration: Cycles,
    /// Address-phase duration; every controller snoops it.
    pub snoop: Cycles,
    /// DRAM access time for a miss served by memory.
    pub mem_access: Cycles,
    /// Data-phase duration for one 64 B line.
    pub data_transfer: Cycles,
}

impl BusConfig {
    /// A Table 1-flavored bus SMP: same caches and DRAM as the CC-NUMA
    /// machine, a 250 MHz bus with 20 ns arbitration and 12 ns snoop
    /// phases.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= nodes <= 64`.
    pub fn smp(nodes: u16) -> Self {
        assert!(
            (2..=64).contains(&nodes),
            "bus SMP size must be in 2..=64, got {nodes}"
        );
        BusConfig {
            nodes,
            l1: CacheConfig::table1_l1(),
            l2: CacheConfig::table1_l2(),
            l1_round_trip: Cycles::from_nanos(2),
            l2_round_trip: Cycles::from_nanos(12),
            arbitration: Cycles::from_nanos(20),
            snoop: Cycles::from_nanos(12),
            mem_access: Cycles::from_nanos(60),
            data_transfer: Cycles::from_nanos(16),
        }
    }
}

impl fmt::Display for BusConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-processor snooping bus (arb {}, snoop {}, data {})",
            self.nodes, self.arbitration, self.snoop, self.data_transfer
        )
    }
}

#[derive(Debug)]
struct NodeCaches {
    l1: Cache,
    l2: Cache,
}

/// The snooping-bus SMP memory system.
#[derive(Debug)]
pub struct BusMemorySystem {
    cfg: BusConfig,
    layout: MemLayout,
    nodes: Vec<NodeCaches>,
    lines: Directory,
    bus_free_at: Cycles,
    stats: MemStats,
    /// Reusable buffer for [`BusMemorySystem::flush_dirty_shared`].
    flush_scratch: Vec<LineAddr>,
    /// Wake-up fault injector (`None` outside fault experiments).
    faults: Option<crate::faults::InvalidationFaults>,
}

impl BusMemorySystem {
    /// Creates a bus SMP with cold caches.
    pub fn new(cfg: BusConfig) -> Self {
        let layout = MemLayout::new(cfg.nodes);
        let nodes = (0..cfg.nodes)
            .map(|_| NodeCaches {
                l1: Cache::new(cfg.l1),
                l2: Cache::new(cfg.l2),
            })
            .collect();
        BusMemorySystem {
            cfg,
            layout,
            nodes,
            lines: Directory::new(),
            bus_free_at: Cycles::ZERO,
            stats: MemStats::default(),
            flush_scratch: Vec::new(),
            faults: None,
        }
    }

    /// Installs a wake-up fault injector. Invalidations of its watched line
    /// produced by subsequent [`write`](Self::write) calls may be lost or
    /// delayed; everything else is untouched.
    pub fn set_faults(&mut self, faults: crate::faults::InvalidationFaults) {
        self.faults = Some(faults);
    }

    /// Drains the injector's fault log (empty when no injector is set).
    pub fn drain_fault_log(&mut self) -> Vec<crate::faults::InvalidationFaultRecord> {
        self.faults
            .as_mut()
            .map(crate::faults::InvalidationFaults::drain_log)
            .unwrap_or_default()
    }

    /// The machine's address layout (homes are irrelevant on a bus; every
    /// line's backing store is the one shared memory).
    pub fn layout(&self) -> &MemLayout {
        &self.layout
    }

    /// The configuration.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Event counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Sharing state of a line (for tests).
    pub fn line_state(&self, line: LineAddr) -> DirState {
        self.lines.get(line)
    }

    /// Cache state at a node without LRU perturbation.
    pub fn cached_state(&self, node: NodeId, line: LineAddr) -> LineState {
        let nc = &self.nodes[node.index()];
        let l1 = nc.l1.probe(line);
        if l1.is_valid() {
            l1
        } else {
            nc.l2.probe(line)
        }
    }

    /// Acquires the bus at or after `ready`; returns the grant time and
    /// marks the bus busy until the transaction's `occupancy` completes.
    fn bus_grant(&mut self, ready: Cycles, occupancy: Cycles) -> Cycles {
        let grant = (ready + self.cfg.arbitration).max(self.bus_free_at);
        self.bus_free_at = grant + occupancy;
        grant
    }

    /// Performs a read by `node` at `now`.
    pub fn read(&mut self, node: NodeId, addr: Addr, now: Cycles) -> Access {
        self.stats.reads += 1;
        let line = addr.line();
        let nc = &mut self.nodes[node.index()];
        let l1 = nc.l1.access(line);
        if l1.is_valid() {
            self.stats.l1_hits += 1;
            return Access {
                completion: now + self.cfg.l1_round_trip,
                class: AccessClass::L1Hit,
                line,
                invalidations: Vec::new(),
            };
        }
        let l2 = nc.l2.access(line);
        if l2.is_valid() {
            self.stats.l2_hits += 1;
            self.fill_l1(node, line, l2);
            return Access {
                completion: now + self.cfg.l2_round_trip,
                class: AccessClass::L2Hit,
                line,
                invalidations: Vec::new(),
            };
        }
        // Bus read (BusRd).
        self.stats.dir_transactions += 1;
        let state = self.line_state(line);
        let (occupancy, class, new_cache_state) = match state {
            DirState::Exclusive(owner) if owner != node => {
                // The owning cache supplies the data and downgrades.
                self.stats.cache_to_cache += 1;
                let was_dirty = {
                    let onc = &mut self.nodes[owner.index()];
                    let dirty = onc.l1.probe(line).is_dirty() || onc.l2.probe(line).is_dirty();
                    if onc.l1.probe(line).is_valid() {
                        onc.l1.set_state(line, LineState::Shared);
                    }
                    if onc.l2.probe(line).is_valid() {
                        onc.l2.set_state(line, LineState::Shared);
                    }
                    dirty
                };
                if was_dirty {
                    self.stats.writebacks += 1;
                }
                (
                    self.cfg.snoop + self.cfg.data_transfer,
                    AccessClass::CacheToCache,
                    LineState::Shared,
                )
            }
            DirState::Shared(_) => (
                self.cfg.snoop + self.cfg.mem_access + self.cfg.data_transfer,
                AccessClass::LocalMem,
                LineState::Shared,
            ),
            _ => (
                self.cfg.snoop + self.cfg.mem_access + self.cfg.data_transfer,
                AccessClass::LocalMem,
                LineState::Exclusive,
            ),
        };
        let grant = self.bus_grant(now + self.cfg.l2_round_trip, occupancy);
        let completion = grant + occupancy;
        let mut holders = state.holders();
        holders.insert(node);
        self.lines.set(
            line,
            if new_cache_state == LineState::Exclusive {
                DirState::Exclusive(node)
            } else {
                DirState::Shared(holders)
            },
        );
        self.fill_both(node, line, new_cache_state);
        Access {
            completion,
            class,
            line,
            invalidations: Vec::new(),
        }
    }

    /// Performs a write by `node` at `now`.
    pub fn write(&mut self, node: NodeId, addr: Addr, now: Cycles) -> Access {
        self.stats.writes += 1;
        let line = addr.line();
        let nc = &mut self.nodes[node.index()];
        let l1 = nc.l1.write_access(line);
        if l1.can_write_silently() {
            self.stats.l1_hits += 1;
            return Access {
                completion: now + self.cfg.l1_round_trip,
                class: AccessClass::L1Hit,
                line,
                invalidations: Vec::new(),
            };
        }
        let mut access = self.write_after_l1(node, line, l1, now);
        if let Some(f) = self.faults.as_mut() {
            f.apply(&mut access.invalidations);
        }
        access
    }

    /// The non-silent remainder of [`write`](Self::write), entered after the
    /// L1 probe (whose LRU bump already happened) returned `l1`.
    fn write_after_l1(
        &mut self,
        node: NodeId,
        line: LineAddr,
        l1: LineState,
        now: Cycles,
    ) -> Access {
        let nc = &mut self.nodes[node.index()];
        if !l1.is_valid() {
            let l2 = nc.l2.write_access(line);
            if l2.can_write_silently() {
                self.stats.l2_hits += 1;
                self.fill_l1(node, line, LineState::Modified);
                return Access {
                    completion: now + self.cfg.l2_round_trip,
                    class: AccessClass::L2Hit,
                    line,
                    invalidations: Vec::new(),
                };
            }
        }
        // Bus upgrade or read-exclusive (BusRdX): one broadcast address
        // phase invalidates every other copy simultaneously.
        self.stats.dir_transactions += 1;
        let state = self.line_state(line);
        let had_copy = self.cached_state(node, line).is_valid();
        let needs_data = !had_copy;
        let supplies_from_cache = matches!(state, DirState::Exclusive(owner) if owner != node);
        let occupancy = if needs_data {
            if supplies_from_cache {
                self.cfg.snoop + self.cfg.data_transfer
            } else {
                self.cfg.snoop + self.cfg.mem_access + self.cfg.data_transfer
            }
        } else {
            self.cfg.snoop
        };
        let grant = self.bus_grant(now + self.cfg.l2_round_trip, occupancy);
        let completion = grant + occupancy;
        // Broadcast invalidation: every other holder sees the address
        // phase at the same instant.
        let observed = grant + self.cfg.snoop;
        let targets = state.holders().without(node);
        let mut invalidations = Vec::with_capacity(targets.len());
        for sharer in targets.iter() {
            let snc = &mut self.nodes[sharer.index()];
            snc.l1.invalidate(line);
            snc.l2.invalidate(line);
            invalidations.push(Invalidation {
                node: sharer,
                line,
                at: observed,
            });
            self.stats.invalidations_sent += 1;
        }
        if supplies_from_cache {
            self.stats.cache_to_cache += 1;
            self.stats.writebacks += 1;
        }
        self.lines.set(line, DirState::Exclusive(node));
        self.fill_both(node, line, LineState::Modified);
        Access {
            completion,
            class: if had_copy {
                AccessClass::Upgrade
            } else if supplies_from_cache {
                AccessClass::CacheToCache
            } else {
                AccessClass::LocalMem
            },
            line,
            invalidations,
        }
    }

    /// Performs `lines` back-to-back writes to consecutive cache lines
    /// starting at `base`, chaining completions, exactly as if
    /// [`write`](Self::write) were called once per line (see the directory
    /// substrate's `write_line_run` for rationale).
    pub fn write_line_run(&mut self, node: NodeId, base: Addr, lines: u32, now: Cycles) -> Cycles {
        let mut t = now;
        for i in 0..lines as u64 {
            let line = base.offset(i * crate::addr::LINE_BYTES).line();
            self.stats.writes += 1;
            let nc = &mut self.nodes[node.index()];
            let l1 = nc.l1.write_access(line);
            if l1.can_write_silently() {
                self.stats.l1_hits += 1;
                t += self.cfg.l1_round_trip;
            } else {
                t = self.write_after_l1(node, line, l1, t).completion;
            }
        }
        t
    }

    /// Flushes `node`'s dirty shared lines over the bus (each write-back
    /// occupies a data phase).
    pub fn flush_dirty_shared(&mut self, node: NodeId, now: Cycles) -> FlushOutcome {
        // Same scratch-buffer flush path as the directory substrate.
        let mut lines = std::mem::take(&mut self.flush_scratch);
        lines.clear();
        let nc = &self.nodes[node.index()];
        nc.l1.dirty_lines_into(&mut lines);
        nc.l2.dirty_lines_into(&mut lines);
        lines.retain(|l| !l.base_addr().is_private());
        lines.sort_unstable();
        lines.dedup();
        let mut end = now + self.cfg.l2_round_trip;
        for &line in &lines {
            let nc = &mut self.nodes[node.index()];
            nc.l1.make_shared_if_dirty(line);
            if !nc.l2.set_state(line, LineState::Shared) {
                nc.l2.insert(line, LineState::Shared);
            }
            self.lines
                .set(line, DirState::Shared(SharerSet::singleton(node)));
            let grant = self.bus_grant(end, self.cfg.data_transfer);
            end = grant + self.cfg.data_transfer;
            self.stats.writebacks += 1;
        }
        self.stats.flushes += 1;
        self.stats.flushed_lines += lines.len() as u64;
        let outcome = FlushOutcome {
            lines: lines.len(),
            duration: end.saturating_sub(now),
        };
        self.flush_scratch = lines;
        outcome
    }

    fn fill_l1(&mut self, node: NodeId, line: LineAddr, state: LineState) {
        let nc = &mut self.nodes[node.index()];
        if let Some(Evicted {
            line: vl,
            state: vs,
        }) = nc.l1.insert(line, state)
        {
            if vs.is_dirty() && !nc.l2.set_state(vl, LineState::Modified) {
                self.writeback_on_evict(node, vl);
            }
        }
    }

    fn fill_both(&mut self, node: NodeId, line: LineAddr, state: LineState) {
        let evicted = self.nodes[node.index()].l2.insert(line, state);
        if let Some(Evicted {
            line: vl,
            state: vs,
        }) = evicted
        {
            let l1_state = self.nodes[node.index()].l1.invalidate(vl);
            if vs.is_dirty() || l1_state.is_some_and(|s| s.is_dirty()) {
                self.writeback_on_evict(node, vl);
            } else {
                self.drop_holder(node, vl);
            }
        }
        self.fill_l1(node, line, state);
    }

    fn writeback_on_evict(&mut self, node: NodeId, line: LineAddr) {
        self.stats.writebacks += 1;
        if let DirState::Exclusive(owner) = self.line_state(line) {
            if owner == node {
                self.lines.set(line, DirState::Uncached);
            }
        }
    }

    fn drop_holder(&mut self, node: NodeId, line: LineAddr) {
        match self.line_state(line) {
            DirState::Exclusive(owner) if owner == node => {
                self.lines.set(line, DirState::Uncached);
            }
            DirState::Shared(s) => {
                let s = s.without(node);
                self.lines.set(
                    line,
                    if s.is_empty() {
                        DirState::Uncached
                    } else {
                        DirState::Shared(s)
                    },
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(nodes: u16) -> BusMemorySystem {
        BusMemorySystem::new(BusConfig::smp(nodes))
    }

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn broadcast_invalidation_is_simultaneous() {
        // The defining bus property: all sharers observe the flag flip at
        // the same instant.
        let mut m = sys(16);
        let flag = m.layout().shared_addr(0, 0);
        let mut t = Cycles::ZERO;
        for i in 1..16 {
            t += Cycles::from_micros(1);
            m.read(n(i), flag, t);
        }
        let w = m.write(n(0), flag, t + Cycles::from_micros(1));
        assert_eq!(w.invalidations.len(), 15);
        let first = w.invalidations[0].at;
        assert!(w.invalidations.iter().all(|i| i.at == first));
        assert!(w.completion >= first);
    }

    #[test]
    fn misses_serialize_on_the_bus() {
        // Two cold misses issued at the same instant: the second must wait
        // for the first transaction's occupancy.
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        let b = m.layout().shared_addr(1, 0);
        let r1 = m.read(n(0), a, Cycles::ZERO);
        let r2 = m.read(n(1), b, Cycles::ZERO);
        assert!(
            r2.completion > r1.completion,
            "bus contention must serialize: {} vs {}",
            r2.completion,
            r1.completion
        );
    }

    #[test]
    fn hit_paths_bypass_the_bus() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        let r1 = m.read(n(2), a, Cycles::ZERO);
        let busy_before = m.bus_free_at;
        let r2 = m.read(n(2), a, r1.completion);
        assert_eq!(r2.class, AccessClass::L1Hit);
        assert_eq!(m.bus_free_at, busy_before, "hits leave the bus alone");
    }

    #[test]
    fn owner_supplies_and_downgrades() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        m.write(n(1), a, Cycles::ZERO);
        let r = m.read(n(2), a, Cycles::from_micros(1));
        assert_eq!(r.class, AccessClass::CacheToCache);
        assert_eq!(m.cached_state(n(1), a.line()), LineState::Shared);
        match m.line_state(a.line()) {
            DirState::Shared(s) => assert_eq!(s.len(), 2),
            other => panic!("expected Shared, got {other}"),
        }
    }

    #[test]
    fn upgrade_invalidates_other_sharers() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(0, 0);
        m.read(n(0), a, Cycles::ZERO);
        m.read(n(1), a, Cycles::from_micros(1));
        let w = m.write(n(0), a, Cycles::from_micros(2));
        assert_eq!(w.class, AccessClass::Upgrade);
        assert_eq!(w.invalidations.len(), 1);
        assert_eq!(m.cached_state(n(1), a.line()), LineState::Invalid);
        assert_eq!(m.line_state(a.line()), DirState::Exclusive(n(0)));
    }

    #[test]
    fn flush_occupies_the_bus_per_line() {
        let mut m = sys(4);
        let mut t = Cycles::ZERO;
        for page in 0..8 {
            t += Cycles::from_micros(1);
            m.write(n(1), m.layout().shared_addr(page, 0), t);
        }
        let f = m.flush_dirty_shared(n(1), t + Cycles::from_micros(1));
        assert_eq!(f.lines, 8);
        assert!(
            f.duration >= Cycles::from_nanos(8 * 16),
            "eight data phases: {}",
            f.duration
        );
        let f2 = m.flush_dirty_shared(n(1), t + Cycles::from_millis(1));
        assert_eq!(f2.lines, 0);
    }

    #[test]
    fn first_reader_gets_exclusive() {
        let mut m = sys(4);
        let a = m.layout().shared_addr(2, 0);
        m.read(n(3), a, Cycles::ZERO);
        assert_eq!(m.cached_state(n(3), a.line()), LineState::Exclusive);
        let w = m.write(n(3), a, Cycles::from_micros(1));
        assert_eq!(w.class, AccessClass::L1Hit, "silent upgrade from E");
    }

    #[test]
    #[should_panic(expected = "bus SMP size")]
    fn single_node_rejected() {
        let _ = BusConfig::smp(1);
    }

    #[test]
    fn display_mentions_bus() {
        assert!(BusConfig::smp(8).to_string().contains("snooping bus"));
    }
}
