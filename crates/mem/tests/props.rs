//! Property-based tests of the coherence protocol: after any sequence of
//! reads, writes, and flushes, the full-map directory and the caches must
//! agree exactly.

use proptest::prelude::*;
use tb_mem::{Addr, DirState, LineState, MachineConfig, MemorySystem, NodeId};
use tb_sim::Cycles;

#[derive(Debug, Clone)]
enum Op {
    Read { node: u16, addr_idx: usize },
    Write { node: u16, addr_idx: usize },
    Flush { node: u16 },
}

fn op_strategy(nodes: u16, addrs: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..nodes, 0..addrs).prop_map(|(node, addr_idx)| Op::Read { node, addr_idx }),
        4 => (0..nodes, 0..addrs).prop_map(|(node, addr_idx)| Op::Write { node, addr_idx }),
        1 => (0..nodes).prop_map(|node| Op::Flush { node }),
    ]
}

/// The address pool: a mix of shared lines (some colliding in cache sets)
/// and per-node private lines.
fn addr_pool(mem: &MemorySystem, nodes: u16) -> Vec<Addr> {
    let mut pool = Vec::new();
    for page in 0..6u64 {
        for line in 0..4u64 {
            pool.push(mem.layout().shared_addr(page, line * 64));
        }
    }
    for n in 0..nodes.min(4) {
        pool.push(mem.layout().private_addr(NodeId::new(n), 0, 0));
    }
    pool
}

/// Checks every protocol invariant for every address in the pool.
fn check_invariants(mem: &MemorySystem, pool: &[Addr], nodes: u16) -> Result<(), TestCaseError> {
    for &addr in pool {
        let line = addr.line();
        let dir = mem.dir_state(line);
        let mut m_or_e_holders = 0;
        for n in 0..nodes {
            let node = NodeId::new(n);
            let (l1, l2) = mem.probe_levels(node, line);
            // Inclusion: a valid L1 line implies a valid L2 line.
            if l1.is_valid() {
                prop_assert!(
                    l2.is_valid(),
                    "inclusion violated at {node} for {line}: L1={l1} L2={l2}"
                );
            }
            let held = l1.is_valid() || l2.is_valid();
            let state = if l1.is_valid() { l1 } else { l2 };
            match dir {
                DirState::Uncached => {
                    prop_assert!(!held, "{node} holds {line} but directory says Uncached");
                }
                DirState::Shared(s) => {
                    prop_assert_eq!(
                        held,
                        s.contains(node),
                        "sharer set mismatch at {} for {}",
                        node,
                        line
                    );
                    if held {
                        prop_assert_eq!(
                            state,
                            LineState::Shared,
                            "{} holds {} in {} under a Shared directory",
                            node,
                            line,
                            state
                        );
                    }
                }
                DirState::Exclusive(owner) => {
                    prop_assert_eq!(
                        held,
                        node == owner,
                        "exclusivity mismatch at {} for {}",
                        node,
                        line
                    );
                }
            }
            if held && state.can_write_silently() {
                m_or_e_holders += 1;
            }
        }
        prop_assert!(m_or_e_holders <= 1, "multiple M/E holders of {line}");
        if m_or_e_holders == 1 {
            prop_assert!(
                matches!(dir, DirState::Exclusive(_)),
                "M/E holder of {line} but directory says {dir}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Directory and caches agree exactly after any operation sequence.
    #[test]
    fn coherence_invariants_hold(
        ops in proptest::collection::vec(op_strategy(8, 28), 1..120),
    ) {
        let nodes = 8u16;
        let mut mem = MemorySystem::new(MachineConfig::table1_with_nodes(nodes));
        let pool = addr_pool(&mem, nodes);
        let mut t = Cycles::ZERO;
        for op in &ops {
            t += Cycles::from_micros(1);
            match *op {
                Op::Read { node, addr_idx } => {
                    let addr = pool[addr_idx % pool.len()];
                    if addr.is_private() && addr.private_owner() != Some(NodeId::new(node)) {
                        continue; // private data is only touched by its owner
                    }
                    mem.read(NodeId::new(node), addr, t);
                }
                Op::Write { node, addr_idx } => {
                    let addr = pool[addr_idx % pool.len()];
                    if addr.is_private() && addr.private_owner() != Some(NodeId::new(node)) {
                        continue;
                    }
                    mem.write(NodeId::new(node), addr, t);
                }
                Op::Flush { node } => {
                    mem.flush_dirty_shared(NodeId::new(node), t);
                }
            }
            check_invariants(&mem, &pool, nodes)?;
        }
    }

    /// A write's invalidation fan-out exactly matches the prior sharers,
    /// and its completion is no earlier than any delivery.
    #[test]
    fn write_invalidates_exactly_the_sharers(
        readers in proptest::collection::btree_set(1u16..8, 0..7),
        writer in 0u16..1,
    ) {
        let mut mem = MemorySystem::new(MachineConfig::table1_with_nodes(8));
        let addr = mem.layout().shared_addr(0, 0);
        let mut t = Cycles::ZERO;
        for &r in &readers {
            t += Cycles::from_micros(1);
            mem.read(NodeId::new(r), addr, t);
        }
        let w = mem.write(NodeId::new(writer), addr, t + Cycles::from_micros(1));
        let mut invalidated: Vec<u16> =
            w.invalidations.iter().map(|i| i.node.as_u16()).collect();
        invalidated.sort_unstable();
        let expected: Vec<u16> = readers.iter().copied().collect();
        prop_assert_eq!(invalidated, expected);
        for inv in &w.invalidations {
            prop_assert!(w.completion >= inv.at || !readers.is_empty());
            prop_assert_eq!(
                mem.cached_state(inv.node, addr.line()),
                LineState::Invalid
            );
        }
        prop_assert_eq!(mem.dir_state(addr.line()), DirState::Exclusive(NodeId::new(writer)));
    }

    /// Flushing leaves no dirty shared lines and never touches private
    /// dirty data; flushing twice is idempotent in line count.
    #[test]
    fn flush_clears_exactly_shared_dirty(
        shared_writes in proptest::collection::vec(0u64..16, 0..20),
        private_writes in 0u32..10,
    ) {
        let mut mem = MemorySystem::new(MachineConfig::table1_with_nodes(4));
        let node = NodeId::new(1);
        let mut t = Cycles::ZERO;
        let mut distinct = std::collections::HashSet::new();
        for &page in &shared_writes {
            t += Cycles::from_micros(1);
            let addr = mem.layout().shared_addr(page, 0);
            mem.write(node, addr, t);
            distinct.insert(addr.line());
        }
        for i in 0..private_writes {
            t += Cycles::from_micros(1);
            let addr = mem.layout().private_addr(node, 0, (i as u64) * 64);
            mem.write(node, addr, t);
        }
        // Capacity evictions may already have written some lines back
        // (the pool collides in cache sets on purpose); the flush handles
        // exactly the lines still dirty in the hierarchy.
        let still_dirty = distinct
            .iter()
            .filter(|&&l| mem.cached_state(node, l) == LineState::Modified)
            .count();
        let f1 = mem.flush_dirty_shared(node, t + Cycles::from_micros(1));
        prop_assert_eq!(f1.lines, still_dirty);
        let f2 = mem.flush_dirty_shared(node, t + Cycles::from_micros(2));
        prop_assert_eq!(f2.lines, 0, "second flush finds nothing dirty");
        // Private data stayed dirty.
        for i in 0..private_writes {
            let addr = mem.layout().private_addr(node, 0, (i as u64) * 64);
            prop_assert_eq!(mem.cached_state(node, addr.line()), LineState::Modified);
        }
    }

    /// Access completion never precedes issue, and repeated reads of the
    /// same location from the same node eventually become L1 hits.
    #[test]
    fn latencies_are_causal_and_caches_warm(
        node in 0u16..8,
        page in 0u64..32,
    ) {
        let mut mem = MemorySystem::new(MachineConfig::table1_with_nodes(8));
        let addr = mem.layout().shared_addr(page, 0);
        let mut t = Cycles::from_micros(1);
        let first = mem.read(NodeId::new(node), addr, t);
        prop_assert!(first.completion > t);
        t = first.completion + Cycles::from_micros(1);
        let second = mem.read(NodeId::new(node), addr, t);
        prop_assert_eq!(second.class, tb_mem::AccessClass::L1Hit);
        prop_assert_eq!(second.latency(t), Cycles::from_nanos(2));
    }
}
