//! Property-based test of the two-tier [`Directory`]: on any trace of
//! `set`/`get` operations over lines spanning the dense window, the
//! dense/sparse boundary, and far-flung sparse stragglers (including
//! private-region lines), the directory must behave exactly like the plain
//! `HashMap<LineAddr, DirState>` it replaced — absent means `Uncached`,
//! and `iter` enumerates exactly the non-`Uncached` lines.

use proptest::prelude::*;
use std::collections::HashMap;
use tb_mem::{Addr, DirState, Directory, LineAddr, NodeId, SharerSet};

/// Line numbers probing every tier: inside the dense window, hugging the
/// 65536-line boundary from both sides, deep sparse territory, and the
/// private-region encoding (bit 63 set on the byte address).
fn line_strategy() -> impl Strategy<Value = LineAddr> {
    prop_oneof![
        4 => 0u64..70_000,                    // dense window + just past it
        2 => 65_530u64..65_542,               // straddle the boundary
        1 => (1u64 << 20)..(1u64 << 21),      // far sparse
        1 => ((1u64 << 57) + 5)..((1u64 << 57) + 64), // private-region lines
    ]
    .prop_map(|n| Addr::new(n * 64).line())
}

fn dir_state_strategy() -> impl Strategy<Value = DirState> {
    prop_oneof![
        1 => Just(DirState::Uncached),
        2 => (0u16..64).prop_map(|n| DirState::Exclusive(NodeId::new(n))),
        2 => proptest::collection::vec(0u16..64, 1..5).prop_map(|nodes| {
            DirState::Shared(nodes.into_iter().map(NodeId::new).collect::<SharerSet>())
        }),
    ]
}

proptest! {
    #[test]
    fn directory_matches_hashmap_reference(
        ops in proptest::collection::vec((line_strategy(), dir_state_strategy()), 1..200)
    ) {
        let mut dir = Directory::new();
        let mut reference: HashMap<LineAddr, DirState> = HashMap::new();
        for (line, state) in ops {
            // Before the write: both agree on the current value.
            let expect = reference.get(&line).copied().unwrap_or(DirState::Uncached);
            prop_assert_eq!(dir.get(line), expect, "pre-set disagreement at {}", line);
            dir.set(line, state);
            if state == DirState::Uncached {
                reference.remove(&line);
            } else {
                reference.insert(line, state);
            }
            prop_assert_eq!(dir.get(line), state, "post-set readback at {}", line);
        }
        // Untouched lines in every tier still read Uncached.
        for probe in [3u64, 65_535, 65_536, 1 << 22, (1 << 57) + 99] {
            let line = Addr::new(probe * 64).line();
            if !reference.contains_key(&line) {
                prop_assert_eq!(dir.get(line), DirState::Uncached);
            }
        }
        // `iter` enumerates exactly the reference's surviving entries.
        let mut got: Vec<(LineAddr, DirState)> = dir.iter().collect();
        let mut want: Vec<(LineAddr, DirState)> = reference.into_iter().collect();
        got.sort_by_key(|(l, _)| l.as_u64());
        want.sort_by_key(|(l, _)| l.as_u64());
        prop_assert_eq!(got, want);
    }
}
