//! Property-based tests of the snooping-bus SMP: the same
//! sharer/exclusivity invariants as the directory protocol, plus the bus's
//! defining broadcast and serialization properties.

use proptest::prelude::*;
use tb_mem::{Addr, BusConfig, BusMemorySystem, DirState, LineState, NodeId};
use tb_sim::Cycles;

#[derive(Debug, Clone)]
enum Op {
    Read { node: u16, addr_idx: usize },
    Write { node: u16, addr_idx: usize },
    Flush { node: u16 },
}

fn op_strategy(nodes: u16, addrs: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..nodes, 0..addrs).prop_map(|(node, addr_idx)| Op::Read { node, addr_idx }),
        4 => (0..nodes, 0..addrs).prop_map(|(node, addr_idx)| Op::Write { node, addr_idx }),
        1 => (0..nodes).prop_map(|node| Op::Flush { node }),
    ]
}

fn addr_pool(m: &BusMemorySystem) -> Vec<Addr> {
    (0..6u64)
        .flat_map(|page| (0..4u64).map(move |line| (page, line * 64)))
        .map(|(page, off)| m.layout().shared_addr(page, off))
        .collect()
}

fn check_invariants(m: &BusMemorySystem, pool: &[Addr], nodes: u16) -> Result<(), TestCaseError> {
    for &addr in pool {
        let line = addr.line();
        let state = m.line_state(line);
        let mut m_or_e = 0;
        for n in 0..nodes {
            let node = NodeId::new(n);
            let cached = m.cached_state(node, line);
            match state {
                DirState::Uncached => prop_assert!(!cached.is_valid()),
                DirState::Shared(s) => {
                    prop_assert_eq!(cached.is_valid(), s.contains(node));
                    if cached.is_valid() {
                        prop_assert_eq!(cached, LineState::Shared);
                    }
                }
                DirState::Exclusive(owner) => {
                    prop_assert_eq!(cached.is_valid(), node == owner);
                }
            }
            if cached.can_write_silently() {
                m_or_e += 1;
            }
        }
        prop_assert!(m_or_e <= 1, "multiple M/E holders of {line}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The snoop-tag bookkeeping agrees exactly with the caches after any
    /// operation sequence.
    #[test]
    fn bus_coherence_invariants_hold(
        ops in proptest::collection::vec(op_strategy(8, 24), 1..100),
    ) {
        let nodes = 8u16;
        let mut m = BusMemorySystem::new(BusConfig::smp(nodes));
        let pool = addr_pool(&m);
        let mut t = Cycles::ZERO;
        for op in &ops {
            t += Cycles::from_micros(1);
            match *op {
                Op::Read { node, addr_idx } => {
                    m.read(NodeId::new(node), pool[addr_idx % pool.len()], t);
                }
                Op::Write { node, addr_idx } => {
                    m.write(NodeId::new(node), pool[addr_idx % pool.len()], t);
                }
                Op::Flush { node } => {
                    m.flush_dirty_shared(NodeId::new(node), t);
                }
            }
            check_invariants(&m, &pool, nodes)?;
        }
    }

    /// Broadcast property: every invalidation of one write shares a single
    /// observation instant, and the set matches the prior sharers exactly.
    #[test]
    fn bus_invalidations_are_broadcast(
        readers in proptest::collection::btree_set(1u16..8, 0..7),
    ) {
        let mut m = BusMemorySystem::new(BusConfig::smp(8));
        let addr = m.layout().shared_addr(0, 0);
        let mut t = Cycles::ZERO;
        for &r in &readers {
            t += Cycles::from_micros(1);
            m.read(NodeId::new(r), addr, t);
        }
        let w = m.write(NodeId::new(0), addr, t + Cycles::from_micros(1));
        let mut hit: Vec<u16> = w.invalidations.iter().map(|i| i.node.as_u16()).collect();
        hit.sort_unstable();
        prop_assert_eq!(hit, readers.iter().copied().collect::<Vec<_>>());
        if let Some(first) = w.invalidations.first() {
            prop_assert!(w.invalidations.iter().all(|i| i.at == first.at));
        }
    }

    /// Bus transactions never travel back in time, and back-to-back misses
    /// keep strictly increasing completion times (serialization).
    #[test]
    fn bus_serializes_misses(pages in proptest::collection::vec(0u64..32, 2..12)) {
        let mut m = BusMemorySystem::new(BusConfig::smp(4));
        let mut last = Cycles::ZERO;
        for (i, &page) in pages.iter().enumerate() {
            let node = NodeId::new((i % 4) as u16);
            let addr = m.layout().shared_addr(page, 0);
            // All issued at time zero: the bus must serialize them.
            let r = m.read(node, addr, Cycles::ZERO);
            if r.class != tb_mem::AccessClass::L1Hit
                && r.class != tb_mem::AccessClass::L2Hit
            {
                prop_assert!(r.completion > last, "bus transaction overlap");
                last = r.completion;
            }
        }
    }
}
