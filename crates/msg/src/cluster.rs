//! The distributed-memory cluster model.
//!
//! Nodes exchange point-to-point messages over a full crossbar: a message
//! sent at `t` is delivered at `t + latency`, and a node broadcasting to
//! many destinations serializes its sends with a per-message dispatch gap
//! (the NIC's injection rate). Latencies default to a tightly-coupled
//! cluster of the paper's era (a few microseconds per message — an order
//! of magnitude above the CC-NUMA machine's coherence messages, which is
//! exactly why the trade-offs shift).

use serde::{Deserialize, Serialize};
use std::fmt;
use tb_sim::Cycles;

/// Cluster parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes (one process per node).
    pub nodes: u16,
    /// One-way small-message latency between any two distinct nodes.
    pub msg_latency: Cycles,
    /// Serialization gap between successive sends from one node (NIC
    /// injection rate).
    pub dispatch_gap: Cycles,
    /// Time for a polling loop iteration to notice a delivered message.
    pub poll_grain: Cycles,
    /// Which node coordinates the barrier (collects arrivals, broadcasts
    /// releases).
    pub coordinator: u16,
}

impl ClusterConfig {
    /// A tightly-coupled cluster: 5 µs messages, 200 ns injection gap,
    /// 100 ns polling grain, node 0 coordinating.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= nodes <= 1024`.
    pub fn default_cluster(nodes: u16) -> Self {
        assert!(
            (2..=1024).contains(&nodes),
            "cluster size must be in 2..=1024, got {nodes}"
        );
        ClusterConfig {
            nodes,
            msg_latency: Cycles::from_micros(5),
            dispatch_gap: Cycles::from_nanos(200),
            poll_grain: Cycles::from_nanos(100),
            coordinator: 0,
        }
    }

    /// Delivery time of a message sent from `from` to `to` at `sent`,
    /// as the `index`-th message of a batch (broadcasts serialize).
    ///
    /// A self-message (coordinator checking in with itself) is free.
    pub fn delivery(&self, from: u16, to: u16, sent: Cycles, index: u64) -> Cycles {
        if from == to {
            sent
        } else {
            sent + self.dispatch_gap * index + self.msg_latency
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the coordinator is out of range or latencies are zero.
    pub fn validate(&self) {
        assert!(
            self.coordinator < self.nodes,
            "coordinator {} outside the {}-node cluster",
            self.coordinator,
            self.nodes
        );
        assert!(
            self.msg_latency > Cycles::ZERO,
            "messages cannot be instant"
        );
        assert!(self.poll_grain > Cycles::ZERO, "polling cannot be instant");
    }
}

impl fmt::Display for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} msg latency, {} dispatch gap, coordinator n{}",
            self.nodes, self.msg_latency, self.dispatch_gap, self.coordinator
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_is_valid() {
        let c = ClusterConfig::default_cluster(64);
        c.validate();
        assert_eq!(c.nodes, 64);
    }

    #[test]
    fn delivery_adds_latency_and_gap() {
        let c = ClusterConfig::default_cluster(4);
        let t = Cycles::from_micros(100);
        assert_eq!(c.delivery(0, 1, t, 0), t + c.msg_latency);
        assert_eq!(
            c.delivery(0, 2, t, 3),
            t + c.dispatch_gap * 3 + c.msg_latency
        );
    }

    #[test]
    fn self_messages_are_free() {
        let c = ClusterConfig::default_cluster(4);
        let t = Cycles::from_micros(7);
        assert_eq!(c.delivery(2, 2, t, 5), t);
    }

    #[test]
    #[should_panic(expected = "cluster size")]
    fn one_node_rejected() {
        let _ = ClusterConfig::default_cluster(1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_coordinator_rejected() {
        let mut c = ClusterConfig::default_cluster(4);
        c.coordinator = 4;
        c.validate();
    }

    #[test]
    fn display_mentions_coordinator() {
        assert!(ClusterConfig::default_cluster(8)
            .to_string()
            .contains("coordinator n0"));
    }
}
