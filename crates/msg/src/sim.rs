//! The message-passing barrier executor.
//!
//! A coordinator barrier: every node finishing its compute phase sends an
//! *arrival* message to the coordinator (the coordinator checks in with
//! itself for free). When the count completes, the coordinator measures
//! the BIT against its own previous-release timestamp and broadcasts a
//! *release* message that carries the measured BIT — the message-passing
//! realization of §3.2.1's "shared BIT variable".
//!
//! Non-coordinator nodes that arrive early run the unmodified
//! [`tb_core::BarrierAlgorithm`]: predict the BIT, derive their stall,
//! pick a sleep state, and arm the hybrid wake-up — the external signal
//! being the release message's NIC interrupt, the internal one a NIC
//! timer. The coordinator itself never sleeps (it must service arrival
//! messages); it polls, and its stall is charged as spin energy.
//!
//! There are no coherent caches, so the deep states' flush requirement is
//! vacuous here; `needs_flush` is ignored.

use crate::cluster::ClusterConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use tb_core::{AlgorithmConfig, BarrierAlgorithm, BarrierPc, SleepChoice, ThreadId};
use tb_energy::{EnergyCategory, MachineLedger, PowerModel, SleepStateId};
use tb_sim::{Cycles, EventId, EventQueue, OnlineStats};
use tb_workloads::AppTrace;

#[derive(Debug, Clone, Copy)]
enum Event {
    ComputeDone { node: usize },
    ArriveAtCoordinator { episode: usize },
    ReleaseDelivered { node: usize, episode: usize },
    TimerFired { node: usize, episode: usize },
    TransitionDone { node: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Computing,
    Polling {
        since: Cycles,
    },
    EnteringSleep {
        state: SleepStateId,
        wake_pending: bool,
    },
    Sleeping {
        state: SleepStateId,
        since: Cycles,
    },
    ExitingSleep,
    Done,
}

#[derive(Debug)]
struct Node {
    state: NodeState,
    step: usize,
    depart_time: Cycles,
    timer: Option<EventId>,
    interrupt_armed: bool,
    predicted_bit: Option<Cycles>,
}

/// Results of one message-passing run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsgRunReport {
    /// Application name.
    pub app: String,
    /// Node count.
    pub nodes: usize,
    /// Wall-clock execution time.
    pub wall_time: Cycles,
    /// Per-node energy/time ledgers.
    pub ledger: MachineLedger,
    /// Barrier episodes completed.
    pub episodes: u64,
    /// Sleep episodes per state.
    pub sleeps_by_state: Vec<u64>,
    /// Early arrivals that polled instead of sleeping.
    pub polls: u64,
    /// Sleep episodes ended by the NIC timer.
    pub internal_wakeups: u64,
    /// Sleep episodes ended by the release-message interrupt.
    pub external_wakeups: u64,
    /// Relative BIT prediction error over predicted arrivals.
    pub prediction_error: OnlineStats,
}

impl MsgRunReport {
    /// Total energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.ledger.total_energy()
    }

    /// Total sleeps across states.
    pub fn total_sleeps(&self) -> u64 {
        self.sleeps_by_state.iter().sum()
    }

    /// Relative energy savings vs another run (positive = this one saves).
    pub fn energy_savings_vs(&self, other: &MsgRunReport) -> f64 {
        1.0 - self.total_energy() / other.total_energy()
    }

    /// Relative wall-clock slowdown vs another run.
    pub fn slowdown_vs(&self, other: &MsgRunReport) -> f64 {
        self.wall_time.as_u64() as f64 / other.wall_time.as_u64() as f64 - 1.0
    }
}

impl fmt::Display for MsgRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} msg-passing nodes: wall {}, {:.3} J, {} sleeps, {} polls",
            self.app,
            self.nodes,
            self.wall_time,
            self.total_energy(),
            self.total_sleeps(),
            self.polls
        )
    }
}

/// The message-passing cluster simulator.
#[derive(Debug)]
pub struct MsgSimulator {
    cluster: ClusterConfig,
    trace: AppTrace,
    algo: BarrierAlgorithm,
    power: PowerModel,
    queue: EventQueue<Event>,
    nodes: Vec<Node>,
    arrivals: Vec<u32>,
    released: Vec<bool>,
    episode_release: Vec<Cycles>,
    episode_bits: Vec<Cycles>,
    ledger: MachineLedger,
    sleeps_by_state: Vec<u64>,
    polls: u64,
    internal_wakeups: u64,
    external_wakeups: u64,
    prediction_error: OnlineStats,
    p_compute: f64,
    p_spin: f64,
}

impl MsgSimulator {
    /// Creates a simulator for `trace` on `cluster` under `algo_cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is smaller than the trace's thread count or
    /// the configuration is invalid.
    pub fn new(cluster: ClusterConfig, trace: AppTrace, algo_cfg: AlgorithmConfig) -> Self {
        cluster.validate();
        assert!(
            cluster.nodes as usize >= trace.threads,
            "cluster has {} nodes but the trace needs {}",
            cluster.nodes,
            trace.threads
        );
        let power = PowerModel::paper();
        let episodes = trace.steps.len();
        let n_states = algo_cfg.sleep_table.len();
        let algo = BarrierAlgorithm::new(algo_cfg, trace.threads);
        MsgSimulator {
            queue: EventQueue::new(),
            nodes: (0..trace.threads)
                .map(|_| Node {
                    state: NodeState::Computing,
                    step: 0,
                    depart_time: Cycles::ZERO,
                    timer: None,
                    interrupt_armed: false,
                    predicted_bit: None,
                })
                .collect(),
            arrivals: vec![0; episodes],
            released: vec![false; episodes],
            episode_release: vec![Cycles::MAX; episodes],
            episode_bits: vec![Cycles::ZERO; episodes],
            ledger: MachineLedger::new(trace.threads),
            sleeps_by_state: vec![0; n_states],
            polls: 0,
            internal_wakeups: 0,
            external_wakeups: 0,
            prediction_error: OnlineStats::new(),
            p_compute: power.compute_watts(),
            p_spin: power.spin_watts(),
            power,
            cluster,
            trace,
            algo,
        }
    }

    fn coordinator(&self) -> usize {
        self.cluster.coordinator as usize
    }

    fn pc_of(&self, step: usize) -> BarrierPc {
        BarrierPc::new(self.trace.steps[step].pc)
    }

    /// Runs to completion.
    pub fn run(mut self) -> MsgRunReport {
        for node in 0..self.trace.threads {
            let dur = self.trace.steps[0].compute[node];
            self.queue.schedule(dur, Event::ComputeDone { node });
        }
        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Event::ComputeDone { node } => self.on_compute_done(node, now),
                Event::ArriveAtCoordinator { episode } => self.on_arrive(episode, now),
                Event::ReleaseDelivered { node, episode } => {
                    self.on_release_delivered(node, episode, now)
                }
                Event::TimerFired { node, episode } => self.on_timer(node, episode, now),
                Event::TransitionDone { node } => self.on_transition_done(node, now),
            }
        }
        debug_assert!(self.nodes.iter().all(|n| n.state == NodeState::Done));
        let wall_time = self
            .nodes
            .iter()
            .map(|n| n.depart_time)
            .max()
            .unwrap_or(Cycles::ZERO);
        MsgRunReport {
            app: self.trace.app_name.clone(),
            nodes: self.trace.threads,
            wall_time,
            ledger: self.ledger,
            episodes: self.released.iter().filter(|&&r| r).count() as u64,
            sleeps_by_state: self.sleeps_by_state,
            polls: self.polls,
            internal_wakeups: self.internal_wakeups,
            external_wakeups: self.external_wakeups,
            prediction_error: self.prediction_error,
        }
    }

    fn on_compute_done(&mut self, node: usize, now: Cycles) {
        let step = self.nodes[node].step;
        // Charge the compute segment.
        let depart = self.nodes[node].depart_time;
        self.ledger.cpu_mut(node).record(
            EnergyCategory::Compute,
            now.saturating_sub(depart),
            self.p_compute,
        );
        // Send the arrival message (free for the coordinator itself).
        let delivered = self
            .cluster
            .delivery(node as u16, self.cluster.coordinator, now, 0);
        self.queue
            .schedule(delivered, Event::ArriveAtCoordinator { episode: step });
        if node == self.coordinator() {
            // The coordinator waits in a polling loop servicing arrivals;
            // its own barrier bookkeeping happens as arrivals land.
            self.nodes[node].state = NodeState::Polling { since: now };
            return;
        }
        // Early-arrival decision with the *unmodified* algorithm.
        let pc = self.pc_of(step);
        let decision = self.algo.on_early_arrival(ThreadId::new(node), pc, now);
        self.nodes[node].predicted_bit = decision.predicted_bit;
        match decision.choice {
            SleepChoice::Spin => {
                self.nodes[node].state = NodeState::Polling { since: now };
                self.polls += 1;
            }
            SleepChoice::Sleep { state, .. } => {
                // No caches to flush in a message-passing node.
                let st = self.algo.policy().state(state);
                let entry = st.transition_latency();
                let p_sleep = st.power_watts(self.power.tdp_max());
                self.ledger
                    .cpu_mut(node)
                    .record_transition(entry, self.p_compute, p_sleep);
                self.nodes[node].state = NodeState::EnteringSleep {
                    state,
                    wake_pending: false,
                };
                self.nodes[node].interrupt_armed = decision.wakeup.external;
                self.queue
                    .schedule(now + entry, Event::TransitionDone { node });
                if let Some(at) = decision.wakeup.internal_at {
                    let id = self.queue.schedule(
                        at.max(now),
                        Event::TimerFired {
                            node,
                            episode: step,
                        },
                    );
                    self.nodes[node].timer = Some(id);
                }
                self.sleeps_by_state[state.index()] += 1;
            }
        }
    }

    fn on_arrive(&mut self, episode: usize, now: Cycles) {
        self.arrivals[episode] += 1;
        if self.arrivals[episode] < self.trace.threads as u32 {
            return;
        }
        // All arrived: the coordinator measures the BIT against its own
        // previous-release timestamp and broadcasts the release.
        let coord = self.coordinator();
        let pc = self.pc_of(episode);
        let release = self.algo.on_last_arrival(ThreadId::new(coord), pc, now);
        self.released[episode] = true;
        self.episode_release[episode] = now;
        self.episode_bits[episode] = release.measured_bit;
        let mut index = 0u64;
        for node in 0..self.trace.threads {
            if node == coord {
                continue;
            }
            let delivered =
                self.cluster
                    .delivery(self.cluster.coordinator, node as u16, now, index);
            index += 1;
            self.queue
                .schedule(delivered, Event::ReleaseDelivered { node, episode });
        }
        // Coordinator's own stall was a poll from its check-in to now.
        if let NodeState::Polling { since } = self.nodes[coord].state {
            self.ledger.cpu_mut(coord).record(
                EnergyCategory::Spin,
                now.saturating_sub(since),
                self.p_spin,
            );
        }
        self.depart(coord, now, now);
    }

    fn on_release_delivered(&mut self, node: usize, episode: usize, now: Cycles) {
        if self.nodes[node].step != episode {
            return; // stale (cannot happen with one outstanding episode)
        }
        match self.nodes[node].state {
            NodeState::Polling { since } => {
                let seen = now + self.cluster.poll_grain;
                self.ledger.cpu_mut(node).record(
                    EnergyCategory::Spin,
                    seen.saturating_sub(since),
                    self.p_spin,
                );
                self.depart(node, seen, seen);
            }
            NodeState::Sleeping { state, since } => {
                if self.nodes[node].interrupt_armed {
                    self.begin_exit(node, state, since, now);
                    self.external_wakeups += 1;
                }
            }
            NodeState::EnteringSleep { state, .. } => {
                if self.nodes[node].interrupt_armed {
                    self.nodes[node].state = NodeState::EnteringSleep {
                        state,
                        wake_pending: true,
                    };
                    self.external_wakeups += 1;
                }
            }
            NodeState::ExitingSleep => {}
            NodeState::Computing | NodeState::Done => {
                unreachable!("release delivered to a non-waiting node")
            }
        }
    }

    fn on_timer(&mut self, node: usize, episode: usize, now: Cycles) {
        if self.nodes[node].step != episode {
            return;
        }
        self.nodes[node].timer = None;
        match self.nodes[node].state {
            NodeState::Sleeping { state, since } => {
                self.begin_exit(node, state, since, now);
                self.internal_wakeups += 1;
            }
            NodeState::EnteringSleep { state, .. } => {
                self.nodes[node].state = NodeState::EnteringSleep {
                    state,
                    wake_pending: true,
                };
                self.internal_wakeups += 1;
            }
            _ => {}
        }
    }

    fn begin_exit(&mut self, node: usize, state: SleepStateId, since: Cycles, at: Cycles) {
        if let Some(timer) = self.nodes[node].timer.take() {
            self.queue.cancel(timer);
        }
        let st = self.algo.policy().state(state);
        let p_sleep = st.power_watts(self.power.tdp_max());
        self.ledger
            .cpu_mut(node)
            .record(EnergyCategory::Sleep, at.saturating_sub(since), p_sleep);
        self.ledger.cpu_mut(node).record_transition(
            st.transition_latency(),
            p_sleep,
            self.p_compute,
        );
        self.nodes[node].state = NodeState::ExitingSleep;
        self.queue
            .schedule(at + st.transition_latency(), Event::TransitionDone { node });
    }

    fn on_transition_done(&mut self, node: usize, now: Cycles) {
        match self.nodes[node].state {
            NodeState::EnteringSleep {
                state,
                wake_pending,
            } => {
                if wake_pending {
                    self.begin_exit(node, state, now, now);
                } else {
                    self.nodes[node].state = NodeState::Sleeping { state, since: now };
                }
            }
            NodeState::ExitingSleep => {
                let step = self.nodes[node].step;
                // A release *message* is observable on arrival; if it has
                // already been delivered (we were woken by it, or the
                // timer raced it), the node departs; otherwise it polls
                // for it.
                if self.released[step]
                    && now >= self.episode_release[step] + self.cluster.msg_latency
                {
                    self.depart(node, now, now);
                } else {
                    self.nodes[node].state = NodeState::Polling { since: now };
                    if self.released[step] {
                        // Release in flight: poll until its delivery.
                        let at = (self.episode_release[step] + self.cluster.msg_latency).max(now);
                        self.queue.schedule(
                            at,
                            Event::ReleaseDelivered {
                                node,
                                episode: step,
                            },
                        );
                    }
                }
            }
            _ => unreachable!("TransitionDone in a non-transition state"),
        }
    }

    fn depart(&mut self, node: usize, wake_ts: Cycles, depart_time: Cycles) {
        let step = self.nodes[node].step;
        let pc = self.pc_of(step);
        self.algo.finish_barrier(ThreadId::new(node), pc, wake_ts);
        if let Some(predicted) = self.nodes[node].predicted_bit.take() {
            let actual = self.episode_bits[step].as_u64() as f64;
            if actual > 0.0 {
                self.prediction_error
                    .push((predicted.as_u64() as f64 - actual).abs() / actual);
            }
        }
        self.nodes[node].interrupt_armed = false;
        self.nodes[node].depart_time = depart_time;
        self.nodes[node].step += 1;
        if self.nodes[node].step < self.trace.steps.len() {
            self.nodes[node].state = NodeState::Computing;
            let dur = self.trace.steps[self.nodes[node].step].compute[node];
            self.queue
                .schedule(depart_time + dur, Event::ComputeDone { node });
        } else {
            self.nodes[node].state = NodeState::Done;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_workloads::{AppSpec, PhaseSpec, Variability};

    fn app(iterations: u32, base_us: u64, imbalance: f64) -> AppSpec {
        AppSpec {
            name: "MsgTest".into(),
            problem_size: "test".into(),
            target_imbalance: imbalance,
            setup_phases: vec![],
            loop_phases: vec![PhaseSpec::new(
                0x90,
                Cycles::from_micros(base_us),
                0,
                Variability::Stable { jitter: 0.0 },
            )],
            iterations,
            skew: 2.0,
        }
    }

    fn run(trace: &AppTrace, cfg: AlgorithmConfig) -> MsgRunReport {
        MsgSimulator::new(
            ClusterConfig::default_cluster(trace.threads as u16),
            trace.clone(),
            cfg,
        )
        .run()
    }

    #[test]
    fn baseline_completes_and_polls() {
        let trace = app(8, 2000, 0.25).generate(8, 1);
        let r = run(&trace, AlgorithmConfig::baseline());
        assert_eq!(r.episodes, 8);
        assert_eq!(r.total_sleeps(), 0);
        assert!(r.ledger.energy()[EnergyCategory::Spin] > 0.0);
        assert!(r.wall_time >= trace.ideal_duration());
    }

    #[test]
    fn thrifty_sleeps_and_saves_energy() {
        let trace = app(12, 4000, 0.30).generate(8, 2);
        let base = run(&trace, AlgorithmConfig::baseline());
        let thrifty = run(&trace, AlgorithmConfig::thrifty());
        assert!(thrifty.total_sleeps() > 0);
        assert!(
            thrifty.total_energy() < base.total_energy(),
            "thrifty {} vs base {}",
            thrifty.total_energy(),
            base.total_energy()
        );
        assert!(thrifty.slowdown_vs(&base) < 0.05);
    }

    #[test]
    fn release_message_carries_bit_for_brts_induction() {
        // Prediction accuracy implies the BIT piggybacking works: with a
        // stable workload, errors should be small after warm-up.
        let trace = app(15, 4000, 0.20).generate(16, 3);
        let r = run(&trace, AlgorithmConfig::thrifty());
        assert!(r.prediction_error.count() > 0);
        // The interval is a max-statistic over 16 draws, so last-value
        // prediction carries that sampling noise; it must still be far
        // below the direct-BST regime (50-85%).
        assert!(
            r.prediction_error.mean() < 0.15,
            "mean error {}",
            r.prediction_error.mean()
        );
    }

    #[test]
    fn coordinator_never_sleeps() {
        let trace = app(10, 4000, 0.30).generate(8, 4);
        let r = run(&trace, AlgorithmConfig::thrifty());
        // The coordinator's ledger has no sleep or transition energy.
        let coord = r.ledger.cpu(0);
        assert_eq!(coord.energy()[EnergyCategory::Sleep], 0.0);
        assert_eq!(coord.energy()[EnergyCategory::Transition], 0.0);
    }

    #[test]
    fn wakeups_balance_sleeps() {
        let trace = app(12, 4000, 0.30).generate(8, 5);
        let r = run(&trace, AlgorithmConfig::thrifty());
        assert_eq!(
            r.internal_wakeups + r.external_wakeups,
            r.total_sleeps(),
            "every sleep ends exactly once"
        );
    }

    #[test]
    fn deterministic() {
        let trace = app(6, 3000, 0.2).generate(8, 6);
        let a = run(&trace, AlgorithmConfig::thrifty());
        let b = run(&trace, AlgorithmConfig::thrifty());
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn message_latency_dominates_short_barriers() {
        // With 5 µs messages, each episode pays at least the release
        // broadcast (5 µs), plus the arrival message whenever the last
        // arriver is not the coordinator itself.
        let trace = app(10, 500, 0.10).generate(4, 7);
        let base = run(&trace, AlgorithmConfig::baseline());
        let overhead = base.wall_time.saturating_sub(trace.ideal_duration());
        assert!(
            overhead >= Cycles::from_micros(10 * 5),
            "per-episode message overhead missing: {overhead}"
        );
    }

    #[test]
    #[should_panic(expected = "cluster has")]
    fn undersized_cluster_rejected() {
        let trace = app(2, 100, 0.2).generate(8, 8);
        let _ = MsgSimulator::new(
            ClusterConfig::default_cluster(4),
            trace,
            AlgorithmConfig::baseline(),
        );
    }
}
