#![warn(missing_docs)]
//! The thrifty barrier on a **message-passing** machine — the environment
//! the paper names as the natural extension ("the idea is conceptually
//! viable in other environments such as message-passing machines", §1;
//! "extending this concept to other parallel computing environments, such
//! as message-passing systems", §7).
//!
//! The mapping is direct, and in one respect *simpler* than shared memory:
//!
//! | Shared-memory mechanism | Message-passing analog |
//! |---|---|
//! | barrier flag + spin | arrival message to a coordinator + NIC polling |
//! | flag invalidation = external wake-up | release-message delivery = NIC interrupt wake-up |
//! | shared BIT variable (§3.2.1) | the release message **carries** the measured BIT |
//! | cache-controller timer | NIC-local countdown timer |
//! | dirty-data flush before deep sleep | — (no coherent caches to flush) |
//!
//! [`cluster`] models the distributed machine (full crossbar with
//! configurable message latency and per-destination dispatch gap);
//! [`sim`] runs a workload trace under a conventional (polling) or
//! thrifty coordinator barrier, reusing the *identical*
//! [`tb_core::BarrierAlgorithm`] that drives the shared-memory machine —
//! the strongest form of the paper's portability claim.
//!
//! # Examples
//!
//! ```
//! use tb_msg::{ClusterConfig, MsgSimulator};
//! use tb_core::AlgorithmConfig;
//! use tb_workloads::AppSpec;
//!
//! let trace = AppSpec::by_name("FMM").unwrap().generate(16, 7);
//! let base = MsgSimulator::new(ClusterConfig::default_cluster(16),
//!                              trace.clone(), AlgorithmConfig::baseline()).run();
//! let thrifty = MsgSimulator::new(ClusterConfig::default_cluster(16),
//!                                 trace, AlgorithmConfig::thrifty()).run();
//! assert!(thrifty.total_energy() < base.total_energy());
//! ```

pub mod cluster;
pub mod sim;

pub use cluster::ClusterConfig;
pub use sim::{MsgRunReport, MsgSimulator};
