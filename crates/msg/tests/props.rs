//! Property-based tests of the message-passing executor.

use proptest::prelude::*;
use tb_core::AlgorithmConfig;
use tb_energy::EnergyCategory;
use tb_msg::{ClusterConfig, MsgSimulator};
use tb_sim::Cycles;
use tb_workloads::{AppSpec, PhaseSpec, Variability};

fn arb_app() -> impl Strategy<Value = AppSpec> {
    (1usize..3, 2u32..8, 1_000u64..8_000, 0.05f64..0.35).prop_map(
        |(phases, iterations, base_us, target)| AppSpec {
            name: "MsgProp".into(),
            problem_size: "prop".into(),
            target_imbalance: target,
            setup_phases: vec![],
            loop_phases: (0..phases)
                .map(|i| {
                    PhaseSpec::new(
                        0x600 + i as u64,
                        Cycles::from_micros(base_us + 500 * i as u64),
                        0,
                        Variability::Stable { jitter: 0.02 },
                    )
                })
                .collect(),
            iterations,
            skew: 2.0,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every run completes all episodes, accounts energy in every category
    /// it uses, and is deterministic.
    #[test]
    fn msg_runs_complete_and_are_deterministic(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let mk = || {
            MsgSimulator::new(
                ClusterConfig::default_cluster(8),
                trace.clone(),
                AlgorithmConfig::thrifty(),
            )
            .run()
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.episodes as usize, trace.len());
        prop_assert_eq!(a.wall_time, b.wall_time);
        prop_assert!((a.total_energy() - b.total_energy()).abs() < 1e-12);
        prop_assert_eq!(
            a.internal_wakeups + a.external_wakeups,
            a.total_sleeps()
        );
    }

    /// The thrifty cluster never burns more energy than the polling one
    /// (beyond a small misprediction guard), and never slows down much.
    #[test]
    fn msg_thrifty_bounded_by_polling(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let base = MsgSimulator::new(
            ClusterConfig::default_cluster(8),
            trace.clone(),
            AlgorithmConfig::baseline(),
        )
        .run();
        let thrifty = MsgSimulator::new(
            ClusterConfig::default_cluster(8),
            trace,
            AlgorithmConfig::thrifty(),
        )
        .run();
        prop_assert!(thrifty.total_energy() <= base.total_energy() * 1.05);
        prop_assert!(thrifty.slowdown_vs(&base) < 0.05);
        // Polling cluster never sleeps or transitions.
        prop_assert_eq!(base.total_sleeps(), 0);
        prop_assert_eq!(base.ledger.energy()[EnergyCategory::Transition], 0.0);
    }

    /// Wall-clock per episode includes at least the release broadcast.
    #[test]
    fn msg_overheads_are_causal(app in arb_app(), seed in any::<u64>()) {
        let trace = app.generate(8, seed);
        let cluster = ClusterConfig::default_cluster(8);
        let latency = cluster.msg_latency;
        let base = MsgSimulator::new(cluster, trace.clone(), AlgorithmConfig::baseline()).run();
        prop_assert!(
            base.wall_time >= trace.ideal_duration() + latency.scale(trace.len() as f64 * 0.5),
            "release messages must cost wall-clock"
        );
    }
}
