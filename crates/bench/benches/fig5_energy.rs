//! E5 + E7 — Figure 5: normalized energy consumption for the ten SPLASH-2
//! applications under the five configurations (B, H, O, T, I), broken into
//! Compute / Spin / Transition / Sleep, normalized to each application's
//! Baseline; plus the §5.1 headline averages over the target applications.

use tb_bench::{banner, breakdown_row, full_matrix, target_summary};

fn main() {
    banner(
        "Figure 5",
        "normalized energy consumption, 10 apps x {B,H,O,T,I}",
    );
    let matrix = full_matrix();
    for (app, reports) in &matrix {
        let base = &reports[0];
        println!(
            "\n-- {} (baseline imbalance {:.2}%, baseline energy {:.2} J)",
            app.name,
            base.barrier_imbalance() * 100.0,
            base.total_energy()
        );
        for r in reports {
            println!(
                "{}",
                breakdown_row(&r.config, &r.energy_normalized_to(base))
            );
        }
    }
    let summary = target_summary(&matrix);
    println!("\n== §5.1 headline (mean over the five target applications)");
    for (name, s) in ["Thrifty-Halt", "Oracle-Halt", "Thrifty", "Ideal"]
        .iter()
        .zip(summary.savings)
    {
        println!("  {name:<13} energy savings {:>5.1}%", s * 100.0);
    }
    println!(
        "  paper: Thrifty ~17%, Thrifty-Halt ~11% \
         (\"unable to accrue energy savings beyond 11%\")"
    );
}
