//! E4 — Figure 3: variability of BIT and BST for the three main-loop
//! barriers of FMM, as observed by one randomly picked thread (the same
//! thread in all twelve instances), over four consecutive iterations.
//! Values are normalized to the average BIT across all shown instances.

use tb_bench::{banner, bench_nodes, bench_seed};
use tb_core::SystemConfig;
use tb_machine::run::run_app;
use tb_sim::OnlineStats;
use tb_workloads::AppSpec;

/// FMM's three loop-barrier PCs (apps.rs: base 0x3200).
const FMM_LOOP_PCS: [u64; 3] = [0x3200, 0x3201, 0x3202];
/// First of the four consecutive main-loop iterations shown.
const FIRST_ITERATION: u64 = 10;

fn main() {
    banner(
        "Figure 3",
        "BIT/BST variability, FMM main-loop barriers 1-3, 4 consecutive iterations",
    );
    let app = AppSpec::by_name("FMM").expect("FMM is in Table 2");
    let report = run_app(&app, bench_nodes(), bench_seed(), SystemConfig::Baseline);

    // Collect the 12 shown instances: (iteration, barrier) in loop order.
    let mut shown = Vec::new();
    for iter in FIRST_ITERATION..FIRST_ITERATION + 4 {
        for (b, &pc) in FMM_LOOP_PCS.iter().enumerate() {
            let inst = report
                .instances
                .iter()
                .find(|i| i.pc == pc && i.site_instance == iter)
                .expect("instance exists");
            shown.push((iter, b + 1, inst));
        }
    }
    let avg_bit = shown
        .iter()
        .map(|(_, _, i)| i.bit.as_u64() as f64)
        .sum::<f64>()
        / shown.len() as f64;

    println!(
        "observed thread: t{} — each bar = Compute + BST, normalized to mean BIT\n",
        report.observed_thread
    );
    println!(
        "{:<11} {:<8} {:>9} {:>9} {:>9}   bar",
        "iteration", "barrier", "BIT", "Compute", "BST"
    );
    for (iter, barrier, inst) in &shown {
        let bit = inst.bit.as_u64() as f64 / avg_bit;
        let compute = inst.observed_compute.as_u64() as f64 / avg_bit;
        let bst = inst.observed_bst.as_u64() as f64 / avg_bit;
        let c_blocks = (compute * 20.0).round() as usize;
        let s_blocks = (bst * 20.0).round() as usize;
        println!(
            "i+{:<10} {:<8} {:>8.2} {:>9.2} {:>9.2}   {}{}",
            iter - FIRST_ITERATION,
            barrier,
            bit,
            compute,
            bst,
            "#".repeat(c_blocks),
            "-".repeat(s_blocks),
        );
    }

    // The figure's argument, quantified: per-site BIT varies far less than
    // the same thread's per-site BST.
    println!("\ncoefficient of variation across ALL instances of each barrier:");
    println!(
        "{:<9} {:>9} {:>12} {:>9}",
        "barrier", "CV(BIT)", "CV(BST)", "ratio"
    );
    for (b, &pc) in FMM_LOOP_PCS.iter().enumerate() {
        let mut bit = OnlineStats::new();
        let mut bst = OnlineStats::new();
        for i in report.instances.iter().filter(|i| i.pc == pc) {
            bit.push(i.bit.as_u64() as f64);
            bst.push(i.observed_bst.as_u64() as f64);
        }
        println!(
            "{:<9} {:>9.3} {:>12.3} {:>8.1}x",
            b + 1,
            bit.cv(),
            bst.cv(),
            bst.cv() / bit.cv().max(1e-9),
        );
    }
    println!(
        "\npaper: \"both BIT and BST vary rather significantly across barriers. Much \
         less variability\nis observed across invocations of the same barrier … It is \
         in BIT, a thread-independent\nmetric, that we obtain a significantly more \
         predictable behavior.\""
    );
}
