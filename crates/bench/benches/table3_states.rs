//! E3 — Table 3: the low-power sleep states used in the study.

use tb_bench::banner;
use tb_energy::{PowerModel, SleepTable};

fn main() {
    banner(
        "Table 3",
        "low-power sleep states (savings relative to TDPmax)",
    );
    let table = SleepTable::paper();
    let power = PowerModel::paper();
    println!(
        "{:<14} {:>10} {:>12} {:>7} {:>13} {:>12}",
        "state", "savings", "transition", "snoop?", "V-reduction?", "residency W"
    );
    for s in &table {
        println!(
            "{:<14} {:>9.1}% {:>12} {:>7} {:>13} {:>11.2}W",
            s.name(),
            s.power_savings() * 100.0,
            s.transition_latency().to_string(),
            if s.snoops() { "yes" } else { "no" },
            if s.voltage_reduction() { "yes" } else { "no" },
            s.power_watts(power.tdp_max()),
        );
    }
    println!(
        "\npaper Table 3: Sleep1 (Halt) 70.2%/10us/snoop, Sleep2 79.2%/15us, \
         Sleep3 97.8%/35us with voltage reduction"
    );
}
