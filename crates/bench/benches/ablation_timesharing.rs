//! A6 — the §3.4.1 alternative: time-sharing (spin-then-yield to another
//! process) versus the thrifty barrier.
//!
//! Time-sharing also stops the energy waste (the core does another
//! process's useful work), but "unless scheduling is carefully planned,
//! time-sharing may hurt performance significantly": a yielded thread
//! resumes only at a scheduling-quantum boundary after the release, and
//! with OS-scale quanta that lag lands on the critical path of the next
//! barrier. "In contrast, the thrifty barrier tries to achieve lower
//! energy consumption while at the same time striving for maintaining the
//! same level of performance."

use tb_bench::{banner, bench_nodes, bench_seed};
use tb_core::{AlgorithmConfig, SystemConfig};
use tb_machine::run::run_trace;
use tb_machine::sim::{simulate, SimulatorConfig, TimeSharing};
use tb_sim::Cycles;
use tb_workloads::AppSpec;

fn main() {
    banner(
        "A6 (time-sharing)",
        "spin-then-yield vs the thrifty barrier (§3.4.1)",
    );
    let nodes = bench_nodes();
    println!(
        "{:<11} {:<24} {:>9} {:>10}",
        "app", "policy", "energy", "slowdown"
    );
    println!("{}", "-".repeat(58));
    for name in ["Volrend", "FMM", "Water-Nsq"] {
        let app = AppSpec::by_name(name).expect("known app");
        let trace = app.generate(nodes as usize, bench_seed());
        let base = run_trace(&trace, nodes, SystemConfig::Baseline);
        let thrifty = run_trace(&trace, nodes, SystemConfig::Thrifty);
        println!(
            "{:<11} {:<24} {:>8.1}% {:>+9.2}%",
            app.name,
            "thrifty",
            thrifty.energy_normalized_to(&base).total() * 100.0,
            thrifty.slowdown_vs(&base) * 100.0
        );
        for quantum_ms in [1u64, 10] {
            let mut cfg = SimulatorConfig::paper_with_nodes("TimeSharing", nodes);
            cfg.time_sharing = Some(TimeSharing {
                spin_before_yield: Cycles::from_micros(50),
                quantum: Cycles::from_millis(quantum_ms),
            });
            let ts = simulate(cfg, &trace, AlgorithmConfig::baseline(), None);
            println!(
                "{:<11} {:<24} {:>8.1}% {:>+9.2}%",
                app.name,
                format!("yield (quantum {quantum_ms} ms)"),
                ts.energy_normalized_to(&base).total() * 100.0,
                ts.slowdown_vs(&base) * 100.0
            );
        }
        println!();
    }
    println!(
        "expected shape: time-sharing shows larger *apparent* energy savings (another \
         process\npays for the core) but significant slowdowns at OS-scale quanta; \
         thrifty keeps the\nperformance"
    );
}
