//! A3 — machine-size scaling: the thrifty barrier on 16-, 32-, and 64-node
//! machines, plus a sweep of the sleep profitability margin.
//!
//! The paper evaluates only at 64 nodes; this ablation checks that the
//! mechanism is not an artifact of one machine size (imbalance is
//! recalibrated per size, so the savings should track Table 2 at every
//! size) and quantifies the sensitivity to the `sleep()` margin.

use tb_bench::{banner, bench_seed};
use tb_core::SystemConfig;
use tb_machine::run::{run_trace, PAPER_SEED};
use tb_workloads::AppSpec;

fn main() {
    banner(
        "A3 (scaling)",
        "machine sizes 16/32/64 and profitability margin",
    );
    let _ = PAPER_SEED;
    println!(
        "{:<11} {:>6} {:>10} {:>9} {:>10}",
        "app", "nodes", "imbalance", "energy", "slowdown"
    );
    println!("{}", "-".repeat(52));
    for name in ["Volrend", "FMM", "Ocean"] {
        let app = AppSpec::by_name(name).expect("known app");
        for nodes in [16u16, 32, 64] {
            let trace = app.generate(nodes as usize, bench_seed());
            let base = run_trace(&trace, nodes, SystemConfig::Baseline);
            let thrifty = run_trace(&trace, nodes, SystemConfig::Thrifty);
            println!(
                "{:<11} {:>6} {:>9.2}% {:>8.1}% {:>+9.2}%",
                app.name,
                nodes,
                base.barrier_imbalance() * 100.0,
                thrifty.energy_normalized_to(&base).total() * 100.0,
                thrifty.slowdown_vs(&base) * 100.0,
            );
        }
        println!();
    }
    println!(
        "expected shape: savings track the (recalibrated) imbalance at every machine \
         size;\nthe mechanism is not a 64-node artifact"
    );
}
