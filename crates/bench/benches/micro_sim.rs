//! Criterion micro-benchmarks of the simulation substrates: event-queue
//! throughput, coherent-access latency, and a small end-to-end machine
//! run, so substrate regressions are caught independently of the paper
//! figures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tb_core::{AlgorithmConfig, BarrierAlgorithm};
use tb_machine::{Simulator, SimulatorConfig};
use tb_mem::{MachineConfig, MemorySystem, NodeId};
use tb_sim::{Cycles, EventQueue};
use tb_workloads::{AppSpec, PhaseSpec, Variability};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(Cycles::new((i * 7919) % 10_000 + 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        });
    });
}

fn bench_memory_system(c: &mut Criterion) {
    c.bench_function("coherent_read_write_mix", |b| {
        let mut mem = MemorySystem::new(MachineConfig::table1_with_nodes(16));
        let mut t = Cycles::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            t += Cycles::from_nanos(100);
            let node = NodeId::new((i % 16) as u16);
            let addr = mem.layout().shared_addr(10 + (i % 32), (i % 64) * 64);
            if i.is_multiple_of(3) {
                black_box(mem.write(node, addr, t).completion)
            } else {
                black_box(mem.read(node, addr, t).completion)
            }
        });
    });
}

fn bench_machine_run(c: &mut Criterion) {
    let app = AppSpec {
        name: "Bench".into(),
        problem_size: "micro".into(),
        target_imbalance: 0.20,
        setup_phases: vec![],
        loop_phases: vec![PhaseSpec::new(
            0x77,
            Cycles::from_millis(2),
            32,
            Variability::Stable { jitter: 0.02 },
        )],
        iterations: 10,
        skew: 2.0,
    };
    let trace = app.generate(16, 1);
    c.bench_function("machine_run_16p_10_barriers", |b| {
        b.iter(|| {
            let cfg = SimulatorConfig {
                machine: MachineConfig::table1_with_nodes(16),
                observed_thread: 0,
                ..SimulatorConfig::paper("Thrifty")
            };
            let algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 16);
            black_box(Simulator::new(cfg, trace.clone(), algo).run().wall_time)
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_memory_system,
    bench_machine_run
);
criterion_main!(benches);
