//! BENCH_sim: the simulator macro-benchmark — wall-clock throughput of the
//! full paper sweep (`AppSpec::splash2()` × `SystemConfig::ALL`), the same
//! work as `thrifty-barrier sweep`.
//!
//! Two modes:
//!
//! * **Full** (default): runs the sweep at [`tb_bench::bench_nodes`] nodes,
//!   prints a summary, and writes `BENCH_sim.json` at the workspace root
//!   (override with `TB_BENCH_OUT`) with episodes/sec, events/sec, peak
//!   RSS, the FNV-1a digest of the report JSON, and the speedup against the
//!   committed pre-optimization baseline.
//! * **Quick** (`TB_BENCH_QUICK=1`): runs an 8-node sweep and compares the
//!   report-JSON digest against the committed fixture
//!   (`tests/golden/sweep_n8_json.digest`), exiting non-zero on drift.
//!   This is the CI smoke: it fails on *behavioral* drift, never on timing.
//!
//! Knobs: `TB_BENCH_NODES`, `TB_BENCH_SEED`, `TB_BENCH_JOBS` (see
//! `tb_bench`), `TB_BENCH_OUT`.

use std::time::Instant;
use tb_core::SystemConfig;
use tb_machine::harness::Harness;
use tb_machine::run::PAPER_SEED;
use tb_machine::RunReport;
use tb_sim::digest::fnv1a64_hex;
use tb_workloads::AppSpec;

/// Throughput of the parent commit (df3f326) measured on the same
/// workload (64-node paper sweep, paper seed): 3315 episodes in 1.238 s.
const BASELINE_COMMIT: &str = "df3f326";
const BASELINE_EPISODES_PER_SEC: f64 = 2678.5;
const BASELINE_WALL_SECS: f64 = 1.238;

fn workspace_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two up.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Barrier-level event total across reports: everything the simulator
/// delivered through its event queue that the reports record (arrivals,
/// spins, sleeps, flushes, wake-ups).
fn total_events(reports: &[RunReport]) -> u64 {
    reports
        .iter()
        .map(|r| {
            let c = &r.counts;
            c.episodes
                + c.early_arrivals
                + c.spins
                + c.sleeps_by_state.iter().sum::<u64>()
                + c.flushes
                + c.internal_wakeups
                + c.external_wakeups
                + c.false_wakeups
        })
        .sum()
}

fn run_sweep(nodes: u16, seed: u64, jobs: usize) -> (Vec<RunReport>, f64) {
    let harness = Harness::new(jobs);
    let t0 = Instant::now();
    let reports: Vec<RunReport> = harness
        .run_matrix(&AppSpec::splash2(), &SystemConfig::ALL, nodes, &[seed])
        .expect("benchmark cells are fault-free")
        .into_iter()
        .flat_map(|m| m.into_flat_reports())
        .collect();
    (reports, t0.elapsed().as_secs_f64())
}

fn main() {
    let quick = std::env::var_os("TB_BENCH_QUICK").is_some();
    let seed = tb_bench::bench_seed();
    let jobs = tb_bench::bench_jobs();
    let nodes = if quick { 8 } else { tb_bench::bench_nodes() };

    // Not `tb_bench::banner`: quick mode pins the machine to 8 nodes, and
    // the shared banner would re-read `TB_BENCH_NODES` and print 64.
    println!("==============================================================================");
    println!(
        "BENCH_sim: simulator macro-benchmark ({})",
        if quick {
            "quick: digest drift check"
        } else {
            "paper sweep throughput"
        }
    );
    println!("machine: {nodes} nodes (Table 1), seed {seed:#x}");
    println!("==============================================================================");

    let (reports, wall) = run_sweep(nodes, seed, jobs);
    let json = serde::json::to_string(&reports);
    let digest = fnv1a64_hex(json.as_bytes());
    let episodes: u64 = reports.iter().map(|r| r.counts.episodes).sum();
    let events = total_events(&reports);
    println!(
        "nodes {nodes}  seed {seed:#x}  wall {wall:.3}s  episodes {episodes}  \
         events {events}  digest {digest}"
    );

    if quick {
        // Digest drift gate: the committed fixture is the 8-node paper-seed
        // sweep. Only comparable when the knobs are at their defaults.
        if seed != PAPER_SEED {
            println!("quick mode with a custom seed: digest check skipped");
            return;
        }
        let fixture_path = workspace_root().join("tests/golden/sweep_n8_json.digest");
        let fixture = std::fs::read_to_string(&fixture_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", fixture_path.display()));
        let fixture = fixture.trim();
        if digest != fixture {
            eprintln!(
                "DIGEST DRIFT: sweep --nodes 8 JSON digest {digest} != committed {fixture}\n\
                 The simulator's observable behavior changed. If intentional, regenerate\n\
                 the fixtures (see EXPERIMENTS.md, \"Performance methodology\")."
            );
            std::process::exit(1);
        }
        println!("digest matches committed fixture ({fixture}) — no behavioral drift");
        return;
    }

    let episodes_per_sec = episodes as f64 / wall;
    let events_per_sec = events as f64 / wall;
    let rss = peak_rss_bytes();
    let speedup = episodes_per_sec / BASELINE_EPISODES_PER_SEC;
    println!(
        "throughput: {episodes_per_sec:.1} episodes/s, {events_per_sec:.0} events/s, \
         peak RSS {:.1} MiB",
        rss as f64 / (1024.0 * 1024.0)
    );
    println!(
        "baseline {BASELINE_COMMIT}: {BASELINE_EPISODES_PER_SEC:.1} episodes/s \
         ({BASELINE_WALL_SECS:.3}s) -> speedup {speedup:.2}x"
    );

    // Hand-rendered JSON: the report is flat and the vendored serializer
    // has no float formatting controls worth fighting here.
    let out = format!(
        "{{\n  \"benchmark\": \"BENCH_sim\",\n  \"workload\": \"splash2 x all-configs sweep\",\n  \
         \"nodes\": {nodes},\n  \"seed\": {seed},\n  \"jobs\": {jobs},\n  \
         \"wall_secs\": {wall:.3},\n  \"episodes\": {episodes},\n  \
         \"episodes_per_sec\": {episodes_per_sec:.1},\n  \"events\": {events},\n  \
         \"events_per_sec\": {events_per_sec:.0},\n  \"peak_rss_bytes\": {rss},\n  \
         \"report_digest_fnv1a64\": \"{digest}\",\n  \
         \"baseline\": {{\n    \"commit\": \"{BASELINE_COMMIT}\",\n    \
         \"episodes_per_sec\": {BASELINE_EPISODES_PER_SEC},\n    \
         \"wall_secs\": {BASELINE_WALL_SECS}\n  }},\n  \
         \"speedup_vs_baseline\": {speedup:.2}\n}}\n"
    );
    let path = std::env::var("TB_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| workspace_root().join("BENCH_sim.json"));
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}
