//! E2 — Table 2: applications and their measured baseline barrier
//! imbalance on the simulated machine.

use tb_bench::{banner, bench_nodes, bench_seed};
use tb_core::SystemConfig;
use tb_machine::run::run_app;
use tb_workloads::AppSpec;

fn main() {
    banner(
        "Table 2",
        "SPLASH-2 applications, descending baseline barrier imbalance",
    );
    println!(
        "{:<11} {:<36} {:>10} {:>10}",
        "app", "problem size", "paper", "measured"
    );
    println!("{}", "-".repeat(72));
    for app in AppSpec::splash2() {
        let r = run_app(&app, bench_nodes(), bench_seed(), SystemConfig::Baseline);
        println!(
            "{:<11} {:<36} {:>9.2}% {:>9.2}%",
            app.name,
            app.problem_size,
            app.target_imbalance * 100.0,
            r.barrier_imbalance() * 100.0,
        );
    }
    println!(
        "\ntarget applications (imbalance >= 10%): {}",
        AppSpec::targets()
            .iter()
            .map(|a| a.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
