//! X1 — the message-passing extension (paper §1/§7): the unmodified
//! thrifty-barrier algorithm on a distributed-memory cluster, where the
//! release message both wakes sleepers (external wake-up) and carries the
//! measured BIT (the "shared BIT variable").

use tb_bench::{banner, bench_seed};
use tb_core::AlgorithmConfig;
use tb_msg::{ClusterConfig, MsgSimulator};
use tb_workloads::AppSpec;

fn main() {
    banner(
        "X1 (message passing)",
        "thrifty coordinator barrier on a 5 µs-latency cluster",
    );
    let nodes = 64u16;
    println!(
        "{:<11} {:>10} {:>9} {:>10} {:>8} {:>8} {:>9}",
        "app", "imbalance", "energy", "slowdown", "sleeps", "polls", "pred err"
    );
    println!("{}", "-".repeat(72));
    let mut apps = AppSpec::targets();
    apps.push(AppSpec::by_name("Ocean").expect("Ocean is in Table 2"));
    apps.push(AppSpec::by_name("Radiosity").expect("Radiosity is in Table 2"));
    for app in apps {
        let trace = app.generate(nodes as usize, bench_seed());
        let base = MsgSimulator::new(
            ClusterConfig::default_cluster(nodes),
            trace.clone(),
            AlgorithmConfig::baseline(),
        )
        .run();
        let thrifty = MsgSimulator::new(
            ClusterConfig::default_cluster(nodes),
            trace.clone(),
            AlgorithmConfig::thrifty(),
        )
        .run();
        println!(
            "{:<11} {:>9.2}% {:>8.1}% {:>+9.2}% {:>8} {:>8} {:>8.1}%",
            app.name,
            trace.analytic_imbalance() * 100.0,
            (1.0 - thrifty.energy_savings_vs(&base)) * 100.0,
            thrifty.slowdown_vs(&base) * 100.0,
            thrifty.total_sleeps(),
            thrifty.polls,
            thrifty.prediction_error.mean() * 100.0,
        );
    }
    println!(
        "\nexpected shape: the same savings ordering as the shared-memory machine — the \
         algorithm\nis substrate-agnostic (paper §1: \"conceptually viable in other \
         environments such as\nmessage-passing machines\")"
    );
}
