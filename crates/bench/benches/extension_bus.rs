//! X2 — the thrifty barrier on a snooping-bus SMP vs the paper's
//! directory CC-NUMA.
//!
//! The paper's related work (Jetty, serial snooping) lives on bus-based
//! SMPs; this harness shows the external wake-up mechanism carries over:
//! on a bus the flag-flip's invalidation is one *broadcast*, so every
//! sleeper observes it simultaneously, while the directory staggers
//! point-to-point deliveries.

use tb_bench::{banner, bench_seed};
use tb_core::{AlgorithmConfig, SystemConfig};
use tb_machine::run::run_trace;
use tb_machine::sim::{simulate, SimulatorConfig};
use tb_mem::BusConfig;
use tb_workloads::AppSpec;

fn main() {
    banner(
        "X2 (snooping bus)",
        "thrifty barrier on a 16-processor bus SMP",
    );
    let nodes = 16u16; // bus SMPs are small machines
    println!(
        "{:<11} {:<11} {:>9} {:>10} {:>9} {:>9}",
        "app", "substrate", "energy", "slowdown", "sleeps", "spins"
    );
    println!("{}", "-".repeat(64));
    for name in ["Volrend", "FMM", "Water-Nsq", "Ocean"] {
        let app = AppSpec::by_name(name).expect("known app");
        let trace = app.generate(nodes as usize, bench_seed());

        // Directory machine (the paper's), downscaled to 16 nodes.
        let dir_base = run_trace(&trace, nodes, SystemConfig::Baseline);
        let dir_thrifty = run_trace(&trace, nodes, SystemConfig::Thrifty);
        println!(
            "{:<11} {:<11} {:>8.1}% {:>+9.2}% {:>9} {:>9}",
            app.name,
            "directory",
            dir_thrifty.energy_normalized_to(&dir_base).total() * 100.0,
            dir_thrifty.slowdown_vs(&dir_base) * 100.0,
            dir_thrifty.counts.total_sleeps(),
            dir_thrifty.counts.spins,
        );

        // Bus SMP.
        let mut bus_cfg = SimulatorConfig::paper_with_nodes("Baseline", nodes);
        bus_cfg.bus = Some(BusConfig::smp(nodes));
        let bus_base = simulate(bus_cfg.clone(), &trace, AlgorithmConfig::baseline(), None);
        bus_cfg.config_name = "Thrifty".into();
        let bus_thrifty = simulate(bus_cfg, &trace, AlgorithmConfig::thrifty(), None);
        println!(
            "{:<11} {:<11} {:>8.1}% {:>+9.2}% {:>9} {:>9}",
            app.name,
            "bus",
            bus_thrifty.energy_normalized_to(&bus_base).total() * 100.0,
            bus_thrifty.slowdown_vs(&bus_base) * 100.0,
            bus_thrifty.counts.total_sleeps(),
            bus_thrifty.counts.spins,
        );
        println!();
    }
    println!(
        "expected shape: savings and slowdowns track the directory machine — the \
         external\nwake-up works on broadcast snooping exactly as on point-to-point \
         invalidations"
    );
}
