//! A2 — predictor ablation (§3.2): the paper's PC-indexed last-value BIT
//! prediction against an EWMA variant, the *direct* per-thread BST
//! strawman the paper argues against, and the recorded oracle.
//!
//! The interesting column is the mean relative prediction error: BIT is a
//! thread-independent quantity and predicts well; per-thread BST shifts
//! across instances and predicts poorly, which is the core insight of the
//! paper.

use tb_bench::{banner, bench_nodes, bench_seed};
use tb_core::{AlgorithmConfig, PredictorChoice, SystemConfig};
use tb_machine::run::{oracle_from_baseline, run_trace, run_trace_with};
use tb_workloads::AppSpec;

fn main() {
    banner(
        "A2 (predictor ablation)",
        "last-value BIT vs EWMA BIT vs direct BST vs oracle",
    );
    let nodes = bench_nodes();
    println!(
        "{:<11} {:<16} {:>10} {:>9} {:>10} {:>9}",
        "app", "predictor", "pred err", "energy", "slowdown", "disables"
    );
    println!("{}", "-".repeat(72));
    for name in ["Volrend", "FMM", "Barnes", "Ocean"] {
        let app = AppSpec::by_name(name).expect("known app");
        let trace = app.generate(nodes as usize, bench_seed());
        let base = run_trace(&trace, nodes, SystemConfig::Baseline);
        let oracle = oracle_from_baseline(&base);
        let variants: [(&str, PredictorChoice); 5] = [
            ("last-value", PredictorChoice::LastValue),
            ("ewma(0.5)", PredictorChoice::Averaging(0.5)),
            ("confidence(10%)", PredictorChoice::Confidence(0.10)),
            ("direct-bst", PredictorChoice::DirectBst),
            ("oracle", PredictorChoice::Oracle),
        ];
        for (label, predictor) in variants {
            let cfg = AlgorithmConfig::thrifty().with_predictor(predictor);
            let oracle_arg = matches!(predictor, PredictorChoice::Oracle).then(|| oracle.clone());
            let r = run_trace_with(&trace, nodes, label, cfg, oracle_arg);
            println!(
                "{:<11} {:<16} {:>9.1}% {:>8.1}% {:>+9.2}% {:>9}",
                app.name,
                label,
                r.prediction_error.mean() * 100.0,
                r.energy_normalized_to(&base).total() * 100.0,
                r.slowdown_vs(&base) * 100.0,
                r.counts.cutoff_disables,
            );
        }
        println!();
    }
    println!(
        "expected shape: last-value BIT ~ EWMA on stable apps, both far better than \
         direct BST;\nOcean defeats all history predictors; the oracle lower-bounds \
         everything"
    );
}
