//! Criterion micro-benchmarks of the four flattened hot paths: event-queue
//! churn (slab + packed-key heap), cache write hits (flat way array),
//! directory upgrades (dense two-tier directory), and deep-sleep flushes
//! (scratch-buffer dirty-line collection). These isolate the data
//! structures the macro benchmark (`bench_sim`) exercises end-to-end, so a
//! regression in one shows up by name.
//!
//! The directory benches honor `TB_BENCH_NODES` (machine size).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tb_mem::{Cache, CacheConfig, LineState, MachineConfig, MemorySystem, NodeId};
use tb_sim::{Cycles, EventQueue};

/// Steady-state churn at a realistic pending population (64 events, the
/// paper machine's thread count): every iteration pops the earliest event,
/// reschedules it, and cancels/reschedules a second one — the hybrid
/// wake-up pattern (timer vs. invalidation) that motivates the queue.
fn event_queue_churn(c: &mut Criterion) {
    c.bench_function("event_queue_churn", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng % 97
        };
        let mut shadow = Vec::new();
        for i in 0..64u64 {
            shadow.push(q.schedule(Cycles::new(1 + step()), i));
        }
        b.iter(|| {
            let (now, ev) = q.pop().expect("queue stays populated");
            q.schedule(now + Cycles::new(1 + step()), ev);
            // Cancel-and-replace a shadow timer, like a spinner whose
            // external wake-up beat its internal timer.
            let idx = (step() % shadow.len() as u64) as usize;
            q.cancel(shadow[idx]);
            shadow[idx] = q.schedule(now + Cycles::new(1 + step()), ev);
            black_box(now)
        });
    });
}

/// L1 write hits on a resident working set: the compute-phase rewrite's
/// inner operation (single tag scan, silent M/E upgrade in the same pass).
fn cache_access_hit(c: &mut Criterion) {
    c.bench_function("cache_access_hit", |b| {
        let mut cache = Cache::new(CacheConfig::table1_l1());
        let layout = tb_mem::MemLayout::new(64);
        let lines: Vec<_> = (0..128u64)
            .map(|i| layout.shared_addr(i / 64, (i % 64) * 64).line())
            .collect();
        for &l in &lines {
            cache.insert(l, LineState::Modified);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % lines.len();
            black_box(cache.write_access(lines[i]))
        });
    });
}

/// The post-flush rewrite transaction: a sole sharer re-acquiring write
/// permission (Shared at the writer -> directory upgrade, no remote
/// invalidations). Each iteration flushes 64 dirty lines and rewrites
/// them, so the upgrade dominates the loop.
fn directory_upgrade(c: &mut Criterion) {
    c.bench_function("directory_upgrade", |b| {
        let nodes = tb_bench::bench_nodes();
        let mut m = MemorySystem::new(MachineConfig::table1_with_nodes(nodes));
        let node = NodeId::new(nodes / 2);
        let base = m.layout().shared_addr(3, 0);
        let mut t = m.write_line_run(node, base, 64, Cycles::ZERO);
        b.iter(|| {
            let f = m.flush_dirty_shared(node, t);
            t += f.duration;
            t = m.write_line_run(node, base, 64, t);
            black_box(t)
        });
    });
}

/// The deep-sleep entry cost: collecting and downgrading a node's dirty
/// shared lines (scratch-buffer collection, no allocation after warm-up).
/// Each iteration re-dirties the set with silent writes first, so the
/// flush always has 64 lines to do.
fn flush_dirty_lines(c: &mut Criterion) {
    c.bench_function("flush_dirty_lines", |b| {
        let nodes = tb_bench::bench_nodes();
        let mut m = MemorySystem::new(MachineConfig::table1_with_nodes(nodes));
        let node = NodeId::new(1);
        let base = m.layout().shared_addr(3, 0);
        let mut t = m.write_line_run(node, base, 64, Cycles::ZERO);
        b.iter(|| {
            t = m.write_line_run(node, base, 64, t);
            let f = m.flush_dirty_shared(node, t);
            t += f.duration;
            black_box(f.lines)
        });
    });
}

criterion_group!(
    hotpaths,
    event_queue_churn,
    cache_access_hit,
    directory_upgrade,
    flush_dirty_lines
);
criterion_main!(hotpaths);
