//! E1 — Table 1: the architecture modeled in the simulations.

use tb_bench::{banner, bench_nodes};
use tb_energy::PowerModel;
use tb_mem::MachineConfig;

fn main() {
    banner("Table 1", "architecture modeled in the simulations");
    let cfg = MachineConfig::table1_with_nodes(bench_nodes());
    println!("{cfg}");
    let power = PowerModel::paper();
    println!("power model        {power}");
    println!(
        "\npaper Table 1: 1GHz 6-issue dynamic CPUs, 16kB/2-way L1 (RT 2ns), \
         64kB/8-way L2 (RT 12ns),\n64B lines, 250MHz 16B bus, 60ns row miss, \
         hypercube with 16ns pin-to-pin and 16ns (un)marshaling, 64 nodes"
    );
}
