//! A5 — internal-timer anticipation sweep (§3.3.2).
//!
//! The paper says the internal timer should "initiate the transition out
//! of the low-power sleep state before the barrier is released (at the
//! risk of incurring early wake-up)". Our implementation realizes that
//! with an explicit anticipation margin subtracted from the timer target.
//! This sweep quantifies the trade-off: zero margin pushes half the
//! wake-ups onto the external path (full exit latency on the critical
//! path); a huge margin converts sleep residency into residual spinning.

use tb_bench::{banner, bench_nodes, bench_seed};
use tb_core::{AlgorithmConfig, SystemConfig};
use tb_machine::run::{run_trace, run_trace_with};
use tb_sim::Cycles;
use tb_workloads::AppSpec;

fn main() {
    banner(
        "A5 (anticipation)",
        "internal-timer anticipation margin sweep",
    );
    let nodes = bench_nodes();
    println!(
        "{:<11} {:>12} {:>9} {:>10} {:>9} {:>9} {:>7}",
        "app", "margin", "energy", "slowdown", "internal", "external", "early"
    );
    println!("{}", "-".repeat(74));
    for name in ["Volrend", "FMM"] {
        let app = AppSpec::by_name(name).expect("known app");
        let trace = app.generate(nodes as usize, bench_seed());
        let base = run_trace(&trace, nodes, SystemConfig::Baseline);
        for margin_us in [0u64, 1, 3, 10, 50, 200] {
            let cfg = AlgorithmConfig {
                wakeup_anticipation: Cycles::from_micros(margin_us),
                ..AlgorithmConfig::thrifty()
            };
            let r = run_trace_with(&trace, nodes, "Thrifty", cfg, None);
            println!(
                "{:<11} {:>10}us {:>8.1}% {:>+9.2}% {:>9} {:>9} {:>7}",
                app.name,
                margin_us,
                r.energy_normalized_to(&base).total() * 100.0,
                r.slowdown_vs(&base) * 100.0,
                r.counts.internal_wakeups,
                r.counts.external_wakeups,
                r.counts.early_wakeups,
            );
        }
        println!();
    }
    println!(
        "expected shape: larger margins shift wake-ups from external to internal and \
         grow the\nresidual-spin (early wake-up) count; the few-µs default sits where \
         neither cost dominates"
    );
}
