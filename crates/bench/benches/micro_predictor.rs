//! Criterion micro-benchmarks of the prediction path: the paper argues the
//! added barrier logic is lightweight (§6 cites Kumar et al.: lightweight
//! control algorithms in synchronization constructs have little impact).
//! These benches quantify "lightweight" for our implementation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tb_core::{
    AlgorithmConfig, BarrierAlgorithm, BarrierPc, BitPredictor, LastValuePredictor, ThreadId,
};
use tb_sim::Cycles;

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.bench_function("last_value_predict", |b| {
        let mut p = LastValuePredictor::with_defaults(64);
        for i in 0..64u64 {
            p.update(BarrierPc::new(i), 0, Cycles::from_micros(100 + i));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(p.predict(BarrierPc::new(i), 1, ThreadId::new((i % 64) as usize)))
        });
    });
    g.bench_function("last_value_update", |b| {
        let mut p = LastValuePredictor::with_defaults(64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(p.update(BarrierPc::new(i % 64), i, Cycles::from_micros(100)))
        });
    });
    g.finish();
}

fn bench_barrier_algorithm(c: &mut Criterion) {
    // One full barrier episode of algorithm bookkeeping for 64 threads —
    // the per-barrier software cost the thrifty barrier adds.
    c.bench_function("algorithm_episode_64_threads", |b| {
        let pc = BarrierPc::new(0x1000);
        b.iter_batched(
            || {
                let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 64);
                // Warm-up instance so predictions exist.
                for t in 0..63 {
                    algo.on_early_arrival(ThreadId::new(t), pc, Cycles::from_micros(10));
                }
                let rel = algo.on_last_arrival(ThreadId::new(63), pc, Cycles::from_millis(1));
                for t in 0..64 {
                    algo.finish_barrier(ThreadId::new(t), pc, rel.release_estimate);
                }
                algo
            },
            |mut algo| {
                for t in 0..63 {
                    black_box(algo.on_early_arrival(
                        ThreadId::new(t),
                        pc,
                        Cycles::from_micros(1100),
                    ));
                }
                let rel = algo.on_last_arrival(ThreadId::new(63), pc, Cycles::from_millis(2));
                for t in 0..64 {
                    black_box(algo.finish_barrier(ThreadId::new(t), pc, rel.release_estimate));
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_predictor, bench_barrier_algorithm);
criterion_main!(benches);
