//! A1 — wake-up mechanism ablation (§3.3): external-only vs internal-only
//! vs hybrid, on the five target applications plus Ocean.
//!
//! External-only guarantees late wake-ups (the exit transition lands on
//! the critical path at every barrier); internal-only has unbounded late
//! wake-ups under overprediction ("the performance of some applications
//! may be penalized significantly by even a few severe late wake-ups");
//! hybrid bounds the one with the other.

use tb_bench::{banner, bench_nodes, bench_seed};
use tb_core::{AlgorithmConfig, SystemConfig, WakeupMode};
use tb_machine::run::{run_trace, run_trace_with};
use tb_workloads::AppSpec;

fn main() {
    banner(
        "A1 (wake-up ablation)",
        "external-only vs internal-only vs hybrid",
    );
    let nodes = bench_nodes();
    println!(
        "{:<11} {:<15} {:>9} {:>10} {:>9} {:>9} {:>7}",
        "app", "wakeup", "energy", "slowdown", "internal", "external", "early"
    );
    println!("{}", "-".repeat(76));
    let mut apps = AppSpec::targets();
    apps.push(AppSpec::by_name("Ocean").expect("Ocean is in Table 2"));
    for app in apps {
        let trace = app.generate(nodes as usize, bench_seed());
        let base = run_trace(&trace, nodes, SystemConfig::Baseline);
        for mode in [
            WakeupMode::ExternalOnly,
            WakeupMode::InternalOnly,
            WakeupMode::Hybrid,
        ] {
            let cfg = AlgorithmConfig::thrifty().with_wakeup(mode);
            let r = run_trace_with(&trace, nodes, &mode.to_string(), cfg, None);
            println!(
                "{:<11} {:<15} {:>8.1}% {:>+9.2}% {:>9} {:>9} {:>7}",
                app.name,
                mode.to_string(),
                r.energy_normalized_to(&base).total() * 100.0,
                r.slowdown_vs(&base) * 100.0,
                r.counts.internal_wakeups,
                r.counts.external_wakeups,
                r.counts.early_wakeups,
            );
        }
        println!();
    }
    println!(
        "expected shape: hybrid matches the better of the two everywhere; \
         internal-only suffers\non swinging intervals (Ocean); external-only \
         pays the exit latency at every barrier"
    );
}
