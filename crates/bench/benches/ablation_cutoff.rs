//! E8 — the Ocean rescue (§3.3.3 / §5.2): sweep of the overprediction
//! cut-off threshold on Ocean, whose swinging interval times defeat
//! last-value prediction. Without the cut-off the exposed exit transitions
//! and flush costs accumulate into a large slowdown; the paper's 10 %
//! threshold contains it.

use tb_bench::{banner, bench_nodes, bench_seed};
use tb_core::{AlgorithmConfig, SystemConfig};
use tb_machine::run::{run_trace, run_trace_with};
use tb_workloads::AppSpec;

fn main() {
    banner(
        "E8 (Ocean cut-off)",
        "overprediction threshold sweep on Ocean",
    );
    let nodes = bench_nodes();
    let app = AppSpec::by_name("Ocean").expect("Ocean is in Table 2");
    let trace = app.generate(nodes as usize, bench_seed());
    let base = run_trace(&trace, nodes, SystemConfig::Baseline);

    println!(
        "{:<22} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "threshold", "energy", "slowdown", "disables", "sleeps", "spins"
    );
    let mut rows: Vec<(String, Option<f64>)> = vec![("none (cut-off off)".into(), None)];
    for th in [0.02, 0.05, 0.10, 0.20, 0.50] {
        rows.push((format!("{:.0}% of BIT", th * 100.0), Some(th)));
    }
    for (label, threshold) in rows {
        let cfg = AlgorithmConfig::thrifty().with_overprediction_threshold(threshold);
        let r = run_trace_with(&trace, nodes, "Thrifty", cfg, None);
        println!(
            "{:<22} {:>8.1}% {:>+9.2}% {:>10} {:>8} {:>8}",
            label,
            r.energy_normalized_to(&base).total() * 100.0,
            r.slowdown_vs(&base) * 100.0,
            r.counts.cutoff_disables,
            r.counts.total_sleeps(),
            r.counts.spins,
        );
    }
    // For contrast: a stable application should barely react to the knob.
    let fmm = AppSpec::by_name("FMM").expect("FMM is in Table 2");
    let fmm_trace = fmm.generate(nodes as usize, bench_seed());
    let fmm_base = run_trace(&fmm_trace, nodes, SystemConfig::Baseline);
    println!("\ncontrol: FMM (stable intervals) under the same sweep");
    for threshold in [None, Some(0.10)] {
        let cfg = AlgorithmConfig::thrifty().with_overprediction_threshold(threshold);
        let r = run_trace_with(&fmm_trace, nodes, "Thrifty", cfg, None);
        println!(
            "{:<22} {:>8.1}% {:>+9.2}% {:>10}",
            match threshold {
                None => "none (cut-off off)".to_string(),
                Some(t) => format!("{:.0}% of BIT", t * 100.0),
            },
            r.energy_normalized_to(&fmm_base).total() * 100.0,
            r.slowdown_vs(&fmm_base) * 100.0,
            r.counts.cutoff_disables,
        );
    }
    println!(
        "\npaper: Ocean \"could degrade in performance by as much as 12% over Baseline\" \
         without the\ncut-off; \"our cut-off provision is very effective here, containing \
         losses in Thrifty\nwithin 3.5% of Baseline\"; \"Ocean ends up spinning quite a \
         bit at these barriers\""
    );
}
