//! R1 — Criterion benchmark of the real-threads barriers: conventional
//! spin vs thrifty (yield/park) on a balanced fork-join loop. The thrifty
//! barrier's decision logic must not make the barrier itself meaningfully
//! slower when everyone spins (balanced case).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tb_core::{AlgorithmConfig, BarrierPc};
use tb_runtime::{RuntimeSleepLevels, SpinBarrier, ThriftyRuntimeBarrier};

const THREADS: usize = 4;
const EPISODES: usize = 64;

fn bench_spin_barrier(c: &mut Criterion) {
    c.bench_function("spin_barrier_4t_64ep", |b| {
        b.iter(|| {
            let barrier = Arc::new(SpinBarrier::new(THREADS));
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let b = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        for _ in 0..EPISODES {
                            b.wait();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    });
}

fn bench_thrifty_barrier(c: &mut Criterion) {
    c.bench_function("thrifty_barrier_4t_64ep", |b| {
        let pc = BarrierPc::new(0x1);
        b.iter(|| {
            let cfg = AlgorithmConfig {
                sleep_table: RuntimeSleepLevels::table(),
                ..AlgorithmConfig::thrifty()
            };
            let barrier = Arc::new(ThriftyRuntimeBarrier::with_config(THREADS, cfg));
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let b = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        for _ in 0..EPISODES {
                            b.wait(t, pc);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    });
}

criterion_group!(benches, bench_spin_barrier, bench_thrifty_barrier);
criterion_main!(benches);
