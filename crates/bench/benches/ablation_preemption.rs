//! A4 — context switches and I/O (§3.4.2): inject preemption-length
//! disturbances into FMM and compare the underprediction filter on vs off.
//!
//! A preempted thread inflates one barrier interval enormously; if the
//! last arriver installs that interval in the prediction table, every
//! thread oversleeps the *next* instance. The filter refuses inordinate
//! measurements, so "the next time around, threads will once again use the
//! older, shorter barrier interval time as their prediction".

use tb_bench::{banner, bench_nodes, bench_seed};
use tb_core::{AlgorithmConfig, SystemConfig};
use tb_machine::run::{run_trace, run_trace_with};
use tb_sim::Cycles;
use tb_workloads::AppSpec;

fn main() {
    banner(
        "A4 (preemption)",
        "underprediction filter under injected context switches",
    );
    let nodes = bench_nodes();
    let app = AppSpec::by_name("FMM").expect("FMM is in Table 2");
    let clean = app.generate(nodes as usize, bench_seed());
    // 10% of episodes lose one thread to a 100 ms preemption (an OS
    // scheduling quantum against ~10 ms intervals).
    let disturbed = clean.with_disturbance(bench_seed() ^ 0xD157, 0.10, Cycles::from_millis(100));

    println!(
        "{:<26} {:>9} {:>10} {:>9} {:>9}",
        "configuration", "energy", "slowdown", "skipped", "pred err"
    );
    println!("{}", "-".repeat(68));
    let base_clean = run_trace(&clean, nodes, SystemConfig::Baseline);
    let thrifty_clean = run_trace(&clean, nodes, SystemConfig::Thrifty);
    println!(
        "{:<26} {:>8.1}% {:>+9.2}% {:>9} {:>8.1}%",
        "clean trace, filter on",
        thrifty_clean.energy_normalized_to(&base_clean).total() * 100.0,
        thrifty_clean.slowdown_vs(&base_clean) * 100.0,
        thrifty_clean.counts.updates_skipped,
        thrifty_clean.prediction_error.mean() * 100.0,
    );

    let base_dist = run_trace(&disturbed, nodes, SystemConfig::Baseline);
    for (label, factor) in [
        ("disturbed, filter on", Some(8.0)),
        ("disturbed, filter OFF", None),
    ] {
        let cfg = AlgorithmConfig {
            underprediction_factor: factor,
            ..AlgorithmConfig::thrifty()
        };
        let r = run_trace_with(&disturbed, nodes, label, cfg, None);
        println!(
            "{:<26} {:>8.1}% {:>+9.2}% {:>9} {:>8.1}%",
            label,
            r.energy_normalized_to(&base_dist).total() * 100.0,
            r.slowdown_vs(&base_dist) * 100.0,
            r.counts.updates_skipped,
            r.prediction_error.mean() * 100.0,
        );
    }
    println!(
        "\nexpected shape: with the filter, inflated intervals are not installed \
         (skipped > 0) and\nprediction error stays near the clean trace; without it, \
         each preemption poisons the\nnext instance's prediction"
    );
}
