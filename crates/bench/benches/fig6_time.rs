//! E6 + E7 — Figure 6: normalized execution time for the ten SPLASH-2
//! applications under the five configurations (B, H, O, T, I), broken into
//! Compute / Spin / Transition / Sleep, normalized to each application's
//! Baseline wall-clock; plus the §5.1 mean Thrifty slowdown over the
//! target applications.

use tb_bench::{banner, breakdown_row, full_matrix, target_summary};

fn main() {
    banner(
        "Figure 6",
        "normalized execution time, 10 apps x {B,H,O,T,I}",
    );
    let matrix = full_matrix();
    for (app, reports) in &matrix {
        let base = &reports[0];
        println!("\n-- {} (baseline wall clock {})", app.name, base.wall_time);
        for r in reports {
            println!(
                "{}  (slowdown {:+.2}%)",
                breakdown_row(&r.config, &r.time_normalized_to(base)),
                r.slowdown_vs(base) * 100.0
            );
        }
    }
    let summary = target_summary(&matrix);
    println!(
        "\n== §5.1 headline: mean Thrifty slowdown over target apps {:+.2}% \
         (paper: ~2%, \"well bounded\")",
        summary.thrifty_slowdown * 100.0
    );
}
