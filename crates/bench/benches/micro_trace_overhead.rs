//! R2 — Trace-instrumentation overhead on the real-threads thrifty
//! barrier. Three variants of the same balanced fork-join loop:
//!
//! * `untraced` — barrier built without a sink (the `SinkHandle` is the
//!   disabled variant; every emit is a single branch on a `None`);
//! * `traced` — per-thread lock-free SPSC rings capturing every event;
//! * and, for reference, the raw per-event cost of a ring push.
//!
//! The disabled-sink variant is the one that matters for the "tracing is
//! free when off" claim: compare `trace_overhead/untraced` against
//! `micro_runtime_barrier`'s `thrifty_barrier_4t_64ep` (same workload) —
//! they should be within noise of each other (<2 %).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tb_core::{AlgorithmConfig, BarrierPc};
use tb_runtime::{RuntimeSleepLevels, ThriftyRuntimeBarrier};
use tb_sim::Cycles;
use tb_trace::{SpscRing, TraceEvent, TraceEventKind};

const THREADS: usize = 4;
const EPISODES: usize = 64;

fn run_episodes(barrier: Arc<ThriftyRuntimeBarrier>) {
    let pc = BarrierPc::new(0x1);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for _ in 0..EPISODES {
                    b.wait(t, pc);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn runtime_cfg() -> AlgorithmConfig {
    AlgorithmConfig {
        sleep_table: RuntimeSleepLevels::table(),
        ..AlgorithmConfig::thrifty()
    }
}

fn bench_untraced(c: &mut Criterion) {
    c.bench_function("trace_overhead/untraced_4t_64ep", |b| {
        b.iter(|| {
            run_episodes(Arc::new(ThriftyRuntimeBarrier::with_config(
                THREADS,
                runtime_cfg(),
            )))
        });
    });
}

fn bench_traced(c: &mut Criterion) {
    c.bench_function("trace_overhead/traced_4t_64ep", |b| {
        b.iter(|| {
            let barrier = Arc::new(ThriftyRuntimeBarrier::with_trace(
                THREADS,
                runtime_cfg(),
                8192,
            ));
            run_episodes(Arc::clone(&barrier));
            barrier.drain_trace().unwrap().len()
        });
    });
}

fn bench_ring_push(c: &mut Criterion) {
    c.bench_function("trace_overhead/spsc_push_pop", |b| {
        let ring = SpscRing::new(1024);
        let ev = TraceEvent::new(
            Cycles::new(7),
            0,
            TraceEventKind::SpinStart { episode: 1, pc: 2 },
        );
        b.iter(|| {
            ring.push(ev);
            ring.pop()
        });
    });
}

criterion_group!(benches, bench_untraced, bench_traced, bench_ring_push);
criterion_main!(benches);
