//! The `sleep()` decision (§3.1): spin, or pick a sleep state.
//!
//! The paper encapsulates sleep-state selection in a run-time library call
//! that scans a table for the deepest state usable within the estimated
//! stall time, returning immediately (the thread then spins) when not even
//! the shallowest state fits. [`SleepPolicy`] is that call, with the
//! profitability margin and the §3.3.3 overprediction threshold as explicit
//! knobs so the evaluation can sweep them.

use serde::{Deserialize, Serialize};
use std::fmt;
use tb_energy::{SleepState, SleepStateId, SleepTable};
use tb_sim::Cycles;

/// What an early-arriving thread decided to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SleepChoice {
    /// Spin on the barrier flag, the conventional way.
    Spin,
    /// Enter the given sleep state.
    Sleep {
        /// The chosen state (an index into the policy's table).
        state: SleepStateId,
        /// Whether dirty shared data must be flushed first (the state's
        /// cache cannot service coherence requests).
        needs_flush: bool,
    },
}

impl SleepChoice {
    /// `true` when the thread spins.
    pub fn is_spin(&self) -> bool {
        matches!(self, SleepChoice::Spin)
    }

    /// `true` when the thread sleeps.
    pub fn is_sleep(&self) -> bool {
        matches!(self, SleepChoice::Sleep { .. })
    }

    /// The chosen state, if sleeping.
    pub fn state(&self) -> Option<SleepStateId> {
        match self {
            SleepChoice::Sleep { state, .. } => Some(*state),
            SleepChoice::Spin => None,
        }
    }
}

impl fmt::Display for SleepChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SleepChoice::Spin => write!(f, "spin"),
            SleepChoice::Sleep { state, needs_flush } => {
                write!(
                    f,
                    "sleep({state}{})",
                    if *needs_flush { ", flush" } else { "" }
                )
            }
        }
    }
}

/// The sleep-selection policy: a sleep-state table plus the two thresholds
/// the paper discusses.
#[derive(Debug, Clone)]
pub struct SleepPolicy {
    table: SleepTable,
    min_stall_multiple: f64,
    overprediction_threshold: Option<f64>,
}

impl SleepPolicy {
    /// Creates a policy over `table`.
    ///
    /// * `min_stall_multiple` — how many round-trip transition latencies of
    ///   predicted stall must lie ahead for a state to be considered
    ///   (≥ 1.0; 2.0 by default elsewhere).
    /// * `overprediction_threshold` — the §3.3.3 cut-off: a wake-up later
    ///   than `threshold × BIT` disables prediction for that (thread,
    ///   barrier). The paper found 10 % to work well; `None` disables the
    ///   cut-off (the Ocean ablation).
    ///
    /// # Panics
    ///
    /// Panics if `min_stall_multiple < 1.0` or the threshold is not
    /// positive.
    pub fn new(
        table: SleepTable,
        min_stall_multiple: f64,
        overprediction_threshold: Option<f64>,
    ) -> Self {
        assert!(
            min_stall_multiple >= 1.0,
            "min stall multiple must be >= 1.0, got {min_stall_multiple}"
        );
        if let Some(th) = overprediction_threshold {
            assert!(
                th > 0.0,
                "overprediction threshold must be positive, got {th}"
            );
        }
        SleepPolicy {
            table,
            min_stall_multiple,
            overprediction_threshold,
        }
    }

    /// The paper's configuration: Table 3 states, 2× profitability margin,
    /// 10 % overprediction threshold.
    pub fn paper() -> Self {
        SleepPolicy::new(SleepTable::paper(), 2.0, Some(0.10))
    }

    /// The sleep-state table.
    pub fn table(&self) -> &SleepTable {
        &self.table
    }

    /// The profitability margin.
    pub fn min_stall_multiple(&self) -> f64 {
        self.min_stall_multiple
    }

    /// The §3.3.3 cut-off threshold (fraction of BIT), if enabled.
    pub fn overprediction_threshold(&self) -> Option<f64> {
        self.overprediction_threshold
    }

    /// The `sleep()` call: given the predicted stall (or `None` when no
    /// prediction is available), choose a state or spin.
    pub fn decide(&self, predicted_stall: Option<Cycles>) -> SleepChoice {
        let Some(stall) = predicted_stall else {
            return SleepChoice::Spin;
        };
        match self.table.best_fit(stall, self.min_stall_multiple) {
            Some(id) => SleepChoice::Sleep {
                state: id,
                needs_flush: !self.table.state(id).snoops(),
            },
            None => SleepChoice::Spin,
        }
    }

    /// The state behind a choice made by this policy.
    ///
    /// # Panics
    ///
    /// Panics if the id came from a different (larger) table.
    pub fn state(&self, id: SleepStateId) -> &SleepState {
        self.table.state(id)
    }

    /// Whether a measured overprediction `penalty` on a barrier whose
    /// interval was `bit` trips the §3.3.3 cut-off.
    pub fn penalty_trips_cutoff(&self, penalty: Cycles, bit: Cycles) -> bool {
        match self.overprediction_threshold {
            Some(th) => penalty > bit.scale(th),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prediction_means_spin() {
        let p = SleepPolicy::paper();
        assert_eq!(p.decide(None), SleepChoice::Spin);
    }

    #[test]
    fn short_stall_means_spin() {
        let p = SleepPolicy::paper();
        // Halt round-trip is 20µs; with 2x margin anything under 40µs spins.
        assert!(p.decide(Some(Cycles::from_micros(30))).is_spin());
    }

    #[test]
    fn deep_stall_picks_sleep3_with_flush() {
        let p = SleepPolicy::paper();
        match p.decide(Some(Cycles::from_millis(5))) {
            SleepChoice::Sleep { state, needs_flush } => {
                assert_eq!(p.state(state).name(), "Sleep3");
                assert!(needs_flush, "Sleep3 cannot snoop");
            }
            SleepChoice::Spin => panic!("expected sleep"),
        }
    }

    #[test]
    fn halt_needs_no_flush() {
        let p = SleepPolicy::paper();
        match p.decide(Some(Cycles::from_micros(50))) {
            SleepChoice::Sleep { state, needs_flush } => {
                assert_eq!(p.state(state).name(), "Sleep1 (Halt)");
                assert!(!needs_flush, "Halt keeps snooping");
            }
            SleepChoice::Spin => panic!("expected sleep"),
        }
    }

    #[test]
    fn intermediate_stall_picks_sleep2() {
        let p = SleepPolicy::paper();
        // Sleep2 RT 30µs (needs 60µs at 2x); Sleep3 RT 70µs (needs 140µs).
        let c = p.decide(Some(Cycles::from_micros(100)));
        assert_eq!(p.state(c.state().unwrap()).name(), "Sleep2");
    }

    #[test]
    fn cutoff_uses_fraction_of_bit() {
        let p = SleepPolicy::paper(); // 10%
        let bit = Cycles::from_micros(1000);
        assert!(
            !p.penalty_trips_cutoff(Cycles::from_micros(100), bit),
            "at threshold: no trip"
        );
        assert!(p.penalty_trips_cutoff(Cycles::from_micros(101), bit));
        assert!(!p.penalty_trips_cutoff(Cycles::ZERO, bit));
    }

    #[test]
    fn disabled_cutoff_never_trips() {
        let p = SleepPolicy::new(SleepTable::paper(), 2.0, None);
        assert!(!p.penalty_trips_cutoff(Cycles::from_secs(1), Cycles::from_micros(1)));
        assert_eq!(p.overprediction_threshold(), None);
    }

    #[test]
    fn choice_accessors() {
        let p = SleepPolicy::paper();
        let c = p.decide(Some(Cycles::from_millis(1)));
        assert!(c.is_sleep());
        assert!(!c.is_spin());
        assert!(c.state().is_some());
        assert_eq!(SleepChoice::Spin.state(), None);
        assert!(c.to_string().starts_with("sleep("));
        assert_eq!(SleepChoice::Spin.to_string(), "spin");
    }

    #[test]
    #[should_panic(expected = "min stall multiple")]
    fn margin_below_one_rejected() {
        let _ = SleepPolicy::new(SleepTable::paper(), 0.9, None);
    }

    #[test]
    #[should_panic(expected = "overprediction threshold")]
    fn zero_threshold_rejected() {
        let _ = SleepPolicy::new(SleepTable::paper(), 2.0, Some(0.0));
    }
}
