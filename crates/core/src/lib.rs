#![warn(missing_docs)]
//! The thrifty barrier algorithm — the primary contribution of
//! *"The Thrifty Barrier: Energy-Aware Synchronization in Shared-Memory
//! Multiprocessors"* (Li, Martínez, Huang; HPCA 2004).
//!
//! A thread arriving early at a thrifty barrier does not spin. It
//!
//! 1. predicts the **barrier interval time** (BIT) for this barrier site
//!    with PC-indexed last-value prediction ([`predictor`]),
//! 2. subtracts its own compute time — known at arrival — to derive its
//!    **barrier stall time** (BST), using the global-clock-free timestamp
//!    induction of §3.2.1 ([`timing`]),
//! 3. asks the sleep policy for the deepest low-power state whose
//!    transitions fit in the predicted stall ([`policy`]),
//! 4. arms a **hybrid wake-up**: an internal timer targeting the predicted
//!    release minus the exit latency, bounded by the **external** wake-up
//!    raised when the barrier flag's invalidation arrives ([`wakeup`]), and
//! 5. after waking, measures its overprediction penalty and disables
//!    prediction for this (thread, barrier) pair if the penalty exceeded
//!    the threshold — the cut-off that rescues Ocean (§3.3.3).
//!
//! [`barrier`] ties the pieces into a [`BarrierAlgorithm`] driven by an
//! executor (the cycle-level machine in `tb-machine`, or real threads in
//! `tb-runtime`); [`config`] names the five system configurations of the
//! paper's evaluation.
//!
//! This crate is pure algorithm: it owns no clock, no threads, and no
//! memory system. Executors feed it timestamps and act on its decisions.
//!
//! # Examples
//!
//! ```
//! use tb_core::{AlgorithmConfig, BarrierAlgorithm, BarrierPc, ThreadId};
//! use tb_sim::Cycles;
//!
//! // Two threads; thread 0 arrives early, thread 1 releases.
//! let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
//! let pc = BarrierPc::new(0x400200);
//!
//! // First instance is warm-up: no history, so the early thread spins.
//! let d = algo.on_early_arrival(ThreadId::new(0), pc, Cycles::from_micros(50));
//! assert!(d.choice.is_spin());
//! let rel = algo.on_last_arrival(ThreadId::new(1), pc, Cycles::from_micros(400));
//! algo.finish_barrier(ThreadId::new(0), pc, rel.release_estimate);
//! algo.finish_barrier(ThreadId::new(1), pc, rel.release_estimate);
//!
//! // Second instance: history exists, so a long predicted stall sleeps.
//! let d = algo.on_early_arrival(ThreadId::new(0), pc, Cycles::from_micros(450));
//! assert!(d.choice.is_sleep());
//! ```

pub mod barrier;
pub mod config;
pub mod policy;
pub mod predictor;
pub mod timing;
pub mod wakeup;

pub use barrier::{ArrivalDecision, BarrierAlgorithm, ReleaseInfo, ThreadId};
pub use config::{AlgorithmConfig, FaultPlan, PredictorChoice, QuarantineConfig, SystemConfig};
pub use policy::{SleepChoice, SleepPolicy};
pub use predictor::{
    AveragingPredictor, BarrierPc, BitPredictor, ConfidencePredictor, DirectBstPredictor,
    LastValuePredictor, RecordedBitOracle, UpdateOutcome,
};
pub use timing::ThreadTiming;
pub use wakeup::{TimerSkew, WakeupMode, WakeupPlan};
