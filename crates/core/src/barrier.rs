//! The barrier algorithm state machine, shared by the cycle-level machine
//! (`tb-machine`) and the real-threads runtime (`tb-runtime`).
//!
//! [`BarrierAlgorithm`] owns the predictor, per-thread timing state, and
//! per-site bookkeeping, and exposes the three call points of the paper's
//! barrier macro:
//!
//! 1. [`BarrierAlgorithm::on_early_arrival`] — a thread checked in and the
//!    count says others are still computing: predict, decide, plan wake-up.
//! 2. [`BarrierAlgorithm::on_last_arrival`] — the count reached the total:
//!    measure the true BIT, update the predictor (subject to the §3.4.2
//!    filter), publish the BIT, and flip the flag.
//! 3. [`BarrierAlgorithm::finish_barrier`] — a thread is awake *and* the
//!    barrier is released (in either order): advance its BRTS by the
//!    published BIT, measure the overprediction penalty, and set the
//!    §3.3.3 disable bit if it tripped the threshold.
//!
//! The executor owns the count, the flag, and all physical effects (memory
//! traffic, transitions, energy); this type is the paper's "prediction code
//! + sleep() library" in one object.

use crate::config::{AlgorithmConfig, PredictorChoice};
use crate::policy::{SleepChoice, SleepPolicy};
use crate::predictor::{
    AveragingPredictor, BarrierPc, BitPredictor, ConfidencePredictor, DirectBstPredictor,
    LastValuePredictor, RecordedBitOracle, UpdateOutcome,
};
use crate::timing::ThreadTiming;
use crate::wakeup::WakeupPlan;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use tb_sim::Cycles;
use tb_trace::{SinkHandle, TraceEvent, TraceEventKind};

/// Index of a thread participating in the barrier (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThreadId(usize);

impl ThreadId {
    /// Creates a thread id.
    pub const fn new(index: usize) -> Self {
        ThreadId(index)
    }

    /// The thread's index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[derive(Debug, Clone)]
enum PredictorImpl {
    LastValue(LastValuePredictor),
    Averaging(AveragingPredictor),
    DirectBst(DirectBstPredictor),
    Confidence(ConfidencePredictor),
    Oracle(RecordedBitOracle),
}

impl PredictorImpl {
    fn as_dyn(&self) -> &dyn BitPredictor {
        match self {
            PredictorImpl::LastValue(p) => p,
            PredictorImpl::Averaging(p) => p,
            PredictorImpl::DirectBst(p) => p,
            PredictorImpl::Confidence(p) => p,
            PredictorImpl::Oracle(p) => p,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn BitPredictor {
        match self {
            PredictorImpl::LastValue(p) => p,
            PredictorImpl::Averaging(p) => p,
            PredictorImpl::DirectBst(p) => p,
            PredictorImpl::Confidence(p) => p,
            PredictorImpl::Oracle(p) => p,
        }
    }
}

/// Per-site quarantine bookkeeping (fault hardening): tracks consecutive
/// gross mispredictions and, while quarantined, a 2-bit confidence counter
/// over shadow predictions (the `ConfidencePredictor` mechanism applied at
/// the site level).
#[derive(Debug, Clone, Copy, Default)]
struct QuarantineState {
    /// Gross mispredictions in a row (reset by any accurate one).
    consecutive_bad: u32,
    /// Whether predictions are currently suppressed at this site.
    quarantined: bool,
    /// 2-bit saturating confidence counter, advanced by accurate shadow
    /// predictions while quarantined; ≥ 2 releases the site.
    confidence: u8,
}

#[derive(Debug, Clone, Default)]
struct SiteState {
    /// Dynamic instance counter: the index of the *next* instance to
    /// release at this site. All arrivals of the current instance observe
    /// the same value.
    next_instance: u64,
    /// The published BIT of the most recently released instance — the
    /// "shared BIT variable" of §3.2.1 (always the *measured* value, even
    /// when the predictor skipped the update).
    published_bit: Cycles,
    /// The first (shadow) prediction recorded for the in-flight instance,
    /// compared against the measured BIT at release for quarantine
    /// accounting. Only maintained when quarantine is configured.
    pending_prediction: Option<(u64, Cycles)>,
    /// Quarantine bookkeeping (inactive unless configured).
    quarantine: QuarantineState,
}

/// What an early-arriving thread was told to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalDecision {
    /// The per-site dynamic instance index of this barrier episode.
    pub instance: u64,
    /// The thread's compute time since the previous release.
    pub compute_time: Cycles,
    /// The predicted BIT, if a usable prediction existed.
    pub predicted_bit: Option<Cycles>,
    /// The derived predicted stall (BST), if predicted.
    pub predicted_stall: Option<Cycles>,
    /// The estimated absolute release time, if predicted.
    pub estimated_release: Option<Cycles>,
    /// Spin or sleep (+state).
    pub choice: SleepChoice,
    /// Wake-up plan (meaningful only when sleeping).
    pub wakeup: WakeupPlan,
}

/// What the last-arriving thread produced when it released the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseInfo {
    /// The per-site dynamic instance index just released.
    pub instance: u64,
    /// The measured BIT (release-to-release).
    pub measured_bit: Cycles,
    /// Whether the predictor accepted the measurement (§3.4.2).
    pub update: UpdateOutcome,
    /// The releasing thread's local timestamp of the release — equal to
    /// every thread's new BRTS after [`BarrierAlgorithm::finish_barrier`].
    pub release_estimate: Cycles,
    /// Quarantine transition at this release, if any: `Some(true)` when
    /// the site entered quarantine, `Some(false)` when it left.
    pub quarantine: Option<bool>,
}

/// The outcome of a thread's post-barrier bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishInfo {
    /// The thread's new BRTS (local timestamp of the just-released
    /// barrier).
    pub new_brts: Cycles,
    /// How much later than the release the thread woke (zero if on time or
    /// early).
    pub penalty: Cycles,
    /// Whether the §3.3.3 cut-off fired and disabled future prediction for
    /// this (thread, site).
    pub disabled: bool,
}

/// The thrifty barrier algorithm object (or a conventional barrier when
/// configured with `thrifty: false`).
#[derive(Debug)]
pub struct BarrierAlgorithm {
    cfg: AlgorithmConfig,
    predictor: PredictorImpl,
    policy: SleepPolicy,
    timings: Vec<ThreadTiming>,
    arrivals: Vec<Cycles>,
    sites: HashMap<BarrierPc, SiteState>,
    /// Semantic-event trace sink (disabled by default). The algorithm emits
    /// `prediction`, `release`, and `cutoff_disable` events — the kinds
    /// only it can observe — stamped with per-site instance numbering.
    trace: SinkHandle,
}

impl BarrierAlgorithm {
    /// Creates the algorithm for `threads` participants.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(cfg: AlgorithmConfig, threads: usize) -> Self {
        assert!(threads > 0, "a barrier needs at least one thread");
        let predictor = match cfg.predictor {
            PredictorChoice::LastValue => PredictorImpl::LastValue(LastValuePredictor::new(
                threads,
                cfg.underprediction_factor,
            )),
            PredictorChoice::Averaging(alpha) => {
                PredictorImpl::Averaging(AveragingPredictor::new(threads, alpha))
            }
            PredictorChoice::DirectBst => PredictorImpl::DirectBst(DirectBstPredictor::new()),
            PredictorChoice::Confidence(tol) => {
                PredictorImpl::Confidence(ConfidencePredictor::new(threads, tol))
            }
            PredictorChoice::Oracle => PredictorImpl::Oracle(RecordedBitOracle::new()),
        };
        let policy = SleepPolicy::new(
            cfg.sleep_table.clone(),
            cfg.min_stall_multiple,
            cfg.overprediction_threshold,
        );
        BarrierAlgorithm {
            predictor,
            policy,
            timings: vec![ThreadTiming::new(); threads],
            arrivals: vec![Cycles::ZERO; threads],
            sites: HashMap::new(),
            cfg,
            trace: SinkHandle::disabled(),
        }
    }

    /// Attaches (or detaches, with a disabled handle) the trace sink the
    /// algorithm emits its semantic events to. Events are attributed to the
    /// calling thread, so with per-thread sink storage the single-producer
    /// invariant holds as long as each `ThreadId` maps to one OS thread.
    pub fn set_trace(&mut self, trace: SinkHandle) {
        self.trace = trace;
    }

    /// The number of participating threads.
    pub fn threads(&self) -> usize {
        self.timings.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &AlgorithmConfig {
        &self.cfg
    }

    /// The sleep policy (table + thresholds).
    pub fn policy(&self) -> &SleepPolicy {
        &self.policy
    }

    /// A thread's current BRTS (for tests and reports).
    pub fn brts(&self, thread: ThreadId) -> Cycles {
        self.timings[thread.index()].brts()
    }

    /// Installs a recorded oracle trace (Oracle-Halt / Ideal).
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not use the oracle predictor.
    pub fn install_oracle(&mut self, oracle: RecordedBitOracle) {
        match &mut self.predictor {
            PredictorImpl::Oracle(slot) => *slot = oracle,
            other => panic!("config uses {other:?}, not the oracle predictor"),
        }
    }

    /// Call point 1: `thread` checked in at local time `now` and was not
    /// the last. Returns the sleep/spin decision.
    pub fn on_early_arrival(
        &mut self,
        thread: ThreadId,
        pc: BarrierPc,
        now: Cycles,
    ) -> ArrivalDecision {
        self.arrivals[thread.index()] = now;
        let instance = self.site(pc).next_instance;
        let timing = self.timings[thread.index()];
        let compute_time = timing.compute_time(now);
        if !self.cfg.thrifty {
            return ArrivalDecision {
                instance,
                compute_time,
                predicted_bit: None,
                predicted_stall: None,
                estimated_release: None,
                choice: SleepChoice::Spin,
                wakeup: WakeupPlan {
                    external: false,
                    internal_at: None,
                },
            };
        }
        let predicted = self.predictor.as_dyn().predict(pc, instance, thread);
        // Quarantine (fault hardening): record the first prediction of the
        // instance as a *shadow* — it is observed against the measured BIT
        // at release even while suppressed — then, if the site is
        // quarantined, withhold it so the thread falls back to spinning.
        let predicted = if self.cfg.quarantine.is_some() {
            let site = self.site(pc);
            if let Some(bit) = predicted {
                if site.pending_prediction.is_none_or(|(i, _)| i != instance) {
                    site.pending_prediction = Some((instance, bit));
                }
            }
            if site.quarantine.quarantined {
                None
            } else {
                predicted
            }
        } else {
            predicted
        };
        let estimate = predicted.map(|p| {
            if matches!(self.cfg.predictor, PredictorChoice::DirectBst) {
                timing.estimate_direct_stall(now, p)
            } else {
                timing.estimate(now, p)
            }
        });
        let choice = self.policy.decide(estimate.map(|e| e.predicted_stall));
        let wakeup = match choice {
            SleepChoice::Sleep { state, .. } => {
                let exit = self.policy.state(state).transition_latency();
                let est = estimate.expect("sleeping requires an estimate");
                WakeupPlan::new(
                    self.cfg.wakeup,
                    now,
                    est.estimated_release,
                    exit,
                    self.cfg.wakeup_anticipation,
                )
            }
            SleepChoice::Spin => WakeupPlan {
                external: false,
                internal_at: None,
            },
        };
        if let (Some(bit), Some(est)) = (predicted, estimate) {
            self.trace.emit(TraceEvent::new(
                now,
                thread.index(),
                TraceEventKind::Prediction {
                    episode: instance,
                    pc: pc.as_u64(),
                    predicted_bit: bit,
                    predicted_stall: est.predicted_stall,
                },
            ));
        }
        ArrivalDecision {
            instance,
            compute_time,
            predicted_bit: predicted,
            predicted_stall: estimate.map(|e| e.predicted_stall),
            estimated_release: estimate.map(|e| e.estimated_release),
            choice,
            wakeup,
        }
    }

    /// Call point 2: `thread` checked in at local time `now` and the count
    /// reached the total. Measures and publishes the BIT, updates the
    /// predictor, and logically flips the flag (the executor performs the
    /// actual write).
    pub fn on_last_arrival(&mut self, thread: ThreadId, pc: BarrierPc, now: Cycles) -> ReleaseInfo {
        self.arrivals[thread.index()] = now;
        let measured_bit = self.timings[thread.index()].measure_bit(now);
        let q_cfg = self.cfg.quarantine;
        let site = self.site(pc);
        let instance = site.next_instance;
        site.next_instance += 1;
        site.published_bit = measured_bit;
        // Quarantine accounting: compare the shadow prediction with the
        // measurement; K gross misses in a row enter quarantine, two
        // accurate shadows in a row leave it.
        let mut quarantine = None;
        if let Some(q) = q_cfg {
            let pending = site.pending_prediction.take();
            if let Some((inst, predicted)) = pending {
                if inst == instance && measured_bit > Cycles::ZERO {
                    let rel_err = (predicted.as_u64() as f64 - measured_bit.as_u64() as f64).abs()
                        / measured_bit.as_u64() as f64;
                    let gross = rel_err > q.tolerance;
                    let qs = &mut site.quarantine;
                    if qs.quarantined {
                        if gross {
                            qs.confidence = 0;
                        } else {
                            qs.confidence = (qs.confidence + 1).min(3);
                            if qs.confidence >= 2 {
                                *qs = QuarantineState::default();
                                quarantine = Some(false);
                            }
                        }
                    } else if gross {
                        qs.consecutive_bad += 1;
                        if qs.consecutive_bad >= q.consecutive {
                            qs.quarantined = true;
                            qs.confidence = 0;
                            quarantine = Some(true);
                        }
                    } else {
                        qs.consecutive_bad = 0;
                    }
                }
            }
        }
        let update = if self.cfg.thrifty {
            self.predictor
                .as_dyn_mut()
                .update(pc, instance, measured_bit)
        } else {
            UpdateOutcome::Applied
        };
        self.trace.emit(TraceEvent::new(
            now,
            thread.index(),
            TraceEventKind::Release {
                episode: instance,
                pc: pc.as_u64(),
                measured_bit,
                update_skipped: update == UpdateOutcome::SkippedInordinate,
            },
        ));
        if let Some(entered) = quarantine {
            self.trace.emit(TraceEvent::new(
                now,
                thread.index(),
                TraceEventKind::Quarantine {
                    episode: instance,
                    pc: pc.as_u64(),
                    entered,
                },
            ));
        }
        ReleaseInfo {
            instance,
            measured_bit,
            update,
            release_estimate: now,
            quarantine,
        }
    }

    /// Whether the site at `pc` is currently in predictor quarantine.
    pub fn is_quarantined(&self, pc: BarrierPc) -> bool {
        self.sites
            .get(&pc)
            .is_some_and(|s| s.quarantine.quarantined)
    }

    /// Call point 3: `thread` is awake and past the residual spin for the
    /// barrier at `pc`; `wakeup_timestamp` is when it came back up (for a
    /// spinner, the time it observed the flipped flag).
    ///
    /// Advances the thread's BRTS by the published BIT, evaluates the
    /// §3.3.3 cut-off, and feeds the direct-BST predictor when configured.
    pub fn finish_barrier(
        &mut self,
        thread: ThreadId,
        pc: BarrierPc,
        wakeup_timestamp: Cycles,
    ) -> FinishInfo {
        let published = self
            .sites
            .get(&pc)
            .expect("finish_barrier before any release at this site")
            .published_bit;
        let timing = &mut self.timings[thread.index()];
        let new_brts = timing.advance(published);
        let penalty = timing.overprediction_penalty(wakeup_timestamp);
        let mut disabled = false;
        if self.cfg.thrifty {
            if self.policy.penalty_trips_cutoff(penalty, published) {
                self.predictor.as_dyn_mut().disable(pc, thread);
                disabled = true;
                let instance = self
                    .sites
                    .get(&pc)
                    .map(|s| s.next_instance.saturating_sub(1))
                    .unwrap_or(0);
                self.trace.emit(TraceEvent::new(
                    wakeup_timestamp,
                    thread.index(),
                    TraceEventKind::CutoffDisable {
                        episode: instance,
                        pc: pc.as_u64(),
                        penalty,
                    },
                ));
            }
            let actual_stall = new_brts.saturating_sub(self.arrivals[thread.index()]);
            self.predictor
                .as_dyn_mut()
                .update_bst(pc, thread, actual_stall);
        }
        FinishInfo {
            new_brts,
            penalty,
            disabled,
        }
    }

    /// Whether prediction is currently disabled for `(thread, pc)`.
    pub fn is_disabled(&self, pc: BarrierPc, thread: ThreadId) -> bool {
        self.predictor.as_dyn().is_disabled(pc, thread)
    }

    fn site(&mut self, pc: BarrierPc) -> &mut SiteState {
        self.sites.entry(pc).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wakeup::WakeupMode;

    const PC: BarrierPc = BarrierPc::new(0x42);

    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }

    fn us(v: u64) -> Cycles {
        Cycles::from_micros(v)
    }

    /// Runs one full barrier episode for a 2-thread algorithm where thread
    /// 0 arrives at `t0` and thread 1 (the releaser) at `t1`, waking both
    /// at the release. Returns thread 0's decision.
    fn episode(algo: &mut BarrierAlgorithm, t0: Cycles, t1: Cycles) -> ArrivalDecision {
        let d = algo.on_early_arrival(t(0), PC, t0);
        let rel = algo.on_last_arrival(t(1), PC, t1);
        algo.finish_barrier(t(0), PC, rel.release_estimate);
        algo.finish_barrier(t(1), PC, rel.release_estimate);
        d
    }

    #[test]
    fn baseline_always_spins() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::baseline(), 2);
        for i in 1..5u64 {
            let d = episode(&mut algo, us(100 * i), us(100 * i + 50));
            assert!(d.choice.is_spin());
            assert_eq!(d.predicted_bit, None);
        }
    }

    #[test]
    fn warmup_instance_spins_then_prediction_kicks_in() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        // Instance 0: no history.
        let d0 = episode(&mut algo, us(100), us(1000));
        assert!(d0.choice.is_spin(), "warm-up spins");
        // Instance 1: history says BIT = 1000µs; thread 0 computes 100µs,
        // so predicted stall = 900µs -> deep sleep.
        let d1 = episode(&mut algo, us(1100), us(2000));
        assert_eq!(d1.predicted_bit, Some(us(1000)));
        assert_eq!(d1.predicted_stall, Some(us(900)));
        assert!(d1.choice.is_sleep());
    }

    #[test]
    fn bit_and_brts_induction_across_instances() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        let rel1 = {
            algo.on_early_arrival(t(0), PC, us(10));
            algo.on_last_arrival(t(1), PC, us(100))
        };
        assert_eq!(rel1.measured_bit, us(100));
        assert_eq!(rel1.instance, 0);
        let f0 = algo.finish_barrier(t(0), PC, us(100));
        algo.finish_barrier(t(1), PC, us(100));
        assert_eq!(f0.new_brts, us(100));
        assert_eq!(algo.brts(t(0)), algo.brts(t(1)));

        algo.on_early_arrival(t(0), PC, us(150));
        let rel2 = algo.on_last_arrival(t(1), PC, us(260));
        assert_eq!(
            rel2.measured_bit,
            us(160),
            "BIT measured from previous release"
        );
        assert_eq!(rel2.instance, 1);
    }

    #[test]
    fn estimated_release_matches_brts_plus_bit() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        episode(&mut algo, us(100), us(1000)); // publishes BIT=1000µs, BRTS=1000µs
        let d = algo.on_early_arrival(t(0), PC, us(1400));
        assert_eq!(d.estimated_release, Some(us(2000)));
        assert_eq!(d.compute_time, us(400));
    }

    #[test]
    fn short_predicted_stall_spins() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        episode(&mut algo, us(10), us(30)); // BIT = 30µs
                                            // Next instance: predicted stall ~ (30µs - compute) < Halt's 40µs
                                            // profitability bound -> spin.
        let d = algo.on_early_arrival(t(0), PC, us(40));
        assert_eq!(d.predicted_stall, Some(us(20)));
        assert!(d.choice.is_spin());
    }

    #[test]
    fn hybrid_wakeup_plan_targets_release_minus_exit() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        episode(&mut algo, us(100), us(1000));
        let d = algo.on_early_arrival(t(0), PC, us(1100));
        let state = d.choice.state().expect("sleeps");
        let exit = algo.policy().state(state).transition_latency();
        assert!(d.wakeup.external);
        let anticipation = algo.config().wakeup_anticipation;
        assert_eq!(d.wakeup.internal_at, Some(us(2000) - exit - anticipation));
    }

    #[test]
    fn external_only_mode_has_no_timer() {
        let cfg = AlgorithmConfig::thrifty().with_wakeup(WakeupMode::ExternalOnly);
        let mut algo = BarrierAlgorithm::new(cfg, 2);
        episode(&mut algo, us(100), us(1000));
        let d = algo.on_early_arrival(t(0), PC, us(1100));
        assert!(d.choice.is_sleep());
        assert!(d.wakeup.external);
        assert_eq!(d.wakeup.internal_at, None);
    }

    #[test]
    fn overprediction_cutoff_disables_thread_site() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        episode(&mut algo, us(100), us(1000)); // BRTS = 1000, BIT = 1000
        algo.on_early_arrival(t(0), PC, us(1100));
        let rel = algo.on_last_arrival(t(1), PC, us(1500)); // BIT = 500µs
                                                            // Thread 0 overslept: woke 200µs after the 1500µs release; the
                                                            // penalty (200µs) exceeds 10% of BIT (50µs).
        let f = algo.finish_barrier(t(0), PC, us(1700));
        assert_eq!(f.penalty, us(200));
        assert!(f.disabled);
        assert!(algo.is_disabled(PC, t(0)));
        assert!(!algo.is_disabled(PC, t(1)));
        algo.finish_barrier(t(1), PC, rel.release_estimate);
        // Next instance: thread 0 gets no prediction -> spins.
        let d = algo.on_early_arrival(t(0), PC, us(1800));
        assert_eq!(d.predicted_bit, None);
        assert!(d.choice.is_spin());
    }

    #[test]
    fn small_penalty_does_not_trip_cutoff() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        episode(&mut algo, us(100), us(1000));
        algo.on_early_arrival(t(0), PC, us(1100));
        algo.on_last_arrival(t(1), PC, us(2000)); // BIT = 1000µs
                                                  // Woke 50µs late; 10% of BIT is 100µs -> fine.
        let f = algo.finish_barrier(t(0), PC, us(2050));
        assert_eq!(f.penalty, us(50));
        assert!(!f.disabled);
    }

    #[test]
    fn cutoff_disabled_never_disables() {
        let cfg = AlgorithmConfig::thrifty().with_overprediction_threshold(None);
        let mut algo = BarrierAlgorithm::new(cfg, 2);
        episode(&mut algo, us(100), us(1000));
        algo.on_early_arrival(t(0), PC, us(1100));
        algo.on_last_arrival(t(1), PC, us(1500));
        let f = algo.finish_barrier(t(0), PC, us(9000));
        assert!(!f.disabled, "no cut-off configured");
    }

    #[test]
    fn oracle_predicts_exact_instances() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::ideal(), 2);
        let mut oracle = RecordedBitOracle::new();
        oracle.record(PC, 0, us(500));
        oracle.record(PC, 1, us(700));
        algo.install_oracle(oracle);
        let d0 = algo.on_early_arrival(t(0), PC, us(100));
        assert_eq!(d0.predicted_bit, Some(us(500)));
        assert!(d0.choice.is_sleep(), "oracle sleeps even on instance 0");
        let rel = algo.on_last_arrival(t(1), PC, us(500));
        algo.finish_barrier(t(0), PC, rel.release_estimate);
        algo.finish_barrier(t(1), PC, rel.release_estimate);
        let d1 = algo.on_early_arrival(t(0), PC, us(600));
        assert_eq!(d1.predicted_bit, Some(us(700)));
    }

    #[test]
    #[should_panic(expected = "not the oracle predictor")]
    fn installing_oracle_on_last_value_panics() {
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        algo.install_oracle(RecordedBitOracle::new());
    }

    #[test]
    fn direct_bst_uses_stall_not_interval() {
        let cfg = AlgorithmConfig::thrifty().with_predictor(PredictorChoice::DirectBst);
        let mut algo = BarrierAlgorithm::new(cfg, 2);
        // Episode 1: thread 0 arrives at 100µs, release at 1000µs ->
        // thread 0's actual BST = 900µs.
        episode(&mut algo, us(100), us(1000));
        // Episode 2: prediction = last BST (900µs), used directly as stall.
        let d = algo.on_early_arrival(t(0), PC, us(1200));
        assert_eq!(d.predicted_stall, Some(us(900)));
        assert_eq!(d.estimated_release, Some(us(2100)));
    }

    #[test]
    fn sites_have_independent_instances() {
        let pc2 = BarrierPc::new(0x99);
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        algo.on_early_arrival(t(0), PC, us(10));
        let r1 = algo.on_last_arrival(t(1), PC, us(100));
        algo.finish_barrier(t(0), PC, us(100));
        algo.finish_barrier(t(1), PC, us(100));
        algo.on_early_arrival(t(0), pc2, us(150));
        let r2 = algo.on_last_arrival(t(1), pc2, us(300));
        assert_eq!(r1.instance, 0);
        assert_eq!(r2.instance, 0, "first instance at the second site");
        assert_eq!(
            r2.measured_bit,
            us(200),
            "interval spans sites (global BRTS)"
        );
    }

    #[test]
    fn semantic_events_reach_the_trace_sink() {
        use std::sync::Arc;
        use tb_trace::{MemorySink, TraceKindCounts};

        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 2);
        let sink = Arc::new(MemorySink::new(2, 256));
        algo.set_trace(SinkHandle::new(sink.clone()));

        // Warm-up episode (no prediction), then a predicted episode, then a
        // badly overpredicted one that trips the §3.3.3 cut-off.
        episode(&mut algo, us(100), us(1000));
        episode(&mut algo, us(1100), us(2000));
        algo.on_early_arrival(t(0), PC, us(2100));
        let rel = algo.on_last_arrival(t(1), PC, us(2500)); // BIT = 500µs
        let f = algo.finish_barrier(t(0), PC, us(2700)); // 200µs late
        assert!(f.disabled);
        algo.finish_barrier(t(1), PC, rel.release_estimate);

        let events = sink.drain_sorted();
        let c = TraceKindCounts::from_events(&events);
        assert_eq!(c.releases, 3);
        assert_eq!(c.predictions, 2, "episodes 1 and 2 had history");
        assert_eq!(c.cutoff_disables, 1);
        // Physical kinds are the executor's job; the algorithm emits none.
        assert_eq!(c.arrivals + c.last_arrivals + c.sleep_starts + c.departs, 0);
        // The cut-off event carries the measured penalty and the episode it
        // tripped on.
        let cutoff = events
            .iter()
            .find_map(|e| match e.kind {
                TraceEventKind::CutoffDisable {
                    episode, penalty, ..
                } => Some((episode, penalty)),
                _ => None,
            })
            .unwrap();
        assert_eq!(cutoff, (2, us(200)));
    }

    #[test]
    fn quarantine_enters_after_k_gross_misses_and_rebuilds() {
        use crate::config::QuarantineConfig;
        use std::sync::Arc;
        use tb_trace::{MemorySink, SinkHandle, TraceKindCounts};

        let cfg = AlgorithmConfig::thrifty().with_quarantine(Some(QuarantineConfig {
            consecutive: 3,
            tolerance: 0.5,
        }));
        let mut algo = BarrierAlgorithm::new(cfg, 2);
        let sink = Arc::new(MemorySink::new(2, 256));
        algo.set_trace(SinkHandle::new(sink.clone()));

        // Releases at these absolute times give measured BITs of 1000,
        // 400, 160, 64, 64, 64, 64 µs: the last-value predictor overshoots
        // by 2.5× on episodes 1–3 (gross at tolerance 0.5), then the BIT
        // stabilizes so shadow predictions become exact.
        let releases = [1000u64, 1400, 1560, 1624, 1688, 1752, 1816];
        let mut transitions = Vec::new();
        let mut suppressed = Vec::new();
        let mut prev = 0u64;
        for (i, &r) in releases.iter().enumerate() {
            let d = algo.on_early_arrival(t(0), PC, us(prev + 10));
            suppressed.push(i > 0 && d.predicted_bit.is_none());
            let rel = algo.on_last_arrival(t(1), PC, us(r));
            if let Some(entered) = rel.quarantine {
                transitions.push((i, entered));
            }
            algo.finish_barrier(t(0), PC, rel.release_estimate);
            algo.finish_barrier(t(1), PC, rel.release_estimate);
            prev = r;
        }
        // Gross misses on episodes 1, 2, 3 → enter at 3; exact shadows on
        // 4 and 5 rebuild confidence → leave at 5.
        assert_eq!(transitions, vec![(3, true), (5, false)]);
        // Predictions were withheld while quarantined (episodes 4, 5) and
        // offered again after release (episode 6).
        assert_eq!(
            suppressed,
            vec![false, false, false, false, true, true, false]
        );
        assert!(!algo.is_quarantined(PC));
        let c = TraceKindCounts::from_events(&sink.drain_sorted());
        assert_eq!(c.quarantine_enters, 1);
        assert_eq!(c.quarantine_leaves, 1);
    }

    #[test]
    fn threads_accessor() {
        let algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 7);
        assert_eq!(algo.threads(), 7);
        assert!(algo.config().thrifty);
        assert_eq!(ThreadId::new(3).to_string(), "t3");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), 0);
    }
}
