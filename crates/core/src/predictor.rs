//! Barrier interval time (BIT) prediction (§3.2 of the paper).
//!
//! The key insight of the paper is *indirect* stall-time estimation: the
//! per-thread barrier stall time (BST) is noisy, but the barrier interval
//! time — release-to-release, a thread-independent quantity — is highly
//! stable when indexed by the barrier's program counter. Simple last-value
//! prediction of PC-indexed BIT then suffices, and each thread derives its
//! own BST by subtracting its (known) compute time.
//!
//! This module provides the paper's predictor ([`LastValuePredictor`]) plus
//! the variants exercised by the ablation studies: an exponentially-weighted
//! averaging predictor, a *direct* per-thread BST predictor (to demonstrate
//! why the paper's indirection wins), and a recorded-trace oracle used for
//! the Oracle-Halt and Ideal configurations.
//!
//! Two guard mechanisms from the paper are built in:
//!
//! * **Overprediction cut-off (§3.3.3)** — when a thread's wake-up lands
//!   more than a threshold fraction of the BIT after the release, a per-
//!   (thread, barrier) disable bit is set and that thread stops sleeping at
//!   that barrier.
//! * **Underprediction filter (§3.4.2)** — when the measured BIT is
//!   inordinately larger than the table entry (context switch, I/O), the
//!   entry is left unchanged so one outlier does not poison prediction.

use crate::barrier::ThreadId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use tb_sim::Cycles;

/// The program counter identifying a static barrier site.
///
/// In SPMD codes the PC of the barrier call identifies the computation
/// phase ending at it (§3.2); non-SPMD codes would use the barrier
/// structure's address instead — any stable `u64` works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BarrierPc(u64);

impl BarrierPc {
    /// Creates a site identifier.
    pub const fn new(pc: u64) -> Self {
        BarrierPc(pc)
    }

    /// The raw identifier.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BarrierPc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

/// What happened when the last-arriving thread offered a measured BIT to
/// the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateOutcome {
    /// The table entry was updated.
    Applied,
    /// The measurement was inordinately large (preemption / I/O, §3.4.2)
    /// and was ignored.
    SkippedInordinate,
}

/// A barrier interval time predictor.
///
/// `instance` is the per-site dynamic instance counter (0 for the first
/// execution of the site); history predictors ignore it, the oracle keys
/// on it.
pub trait BitPredictor: fmt::Debug {
    /// Predicts the BIT for the upcoming instance of `pc` as observed by
    /// `thread`, or `None` when no usable history exists or prediction is
    /// disabled for this (thread, site).
    fn predict(&self, pc: BarrierPc, instance: u64, thread: ThreadId) -> Option<Cycles>;

    /// Offers the measured BIT of the just-released instance (called by the
    /// last-arriving thread). Returns whether the table accepted it.
    fn update(&mut self, pc: BarrierPc, instance: u64, measured: Cycles) -> UpdateOutcome;

    /// Offers a thread's measured BST for the just-released instance.
    /// Only direct-BST predictors use this; the default ignores it.
    fn update_bst(&mut self, _pc: BarrierPc, _thread: ThreadId, _measured: Cycles) {}

    /// Sets the per-(thread, site) disable bit (§3.3.3).
    fn disable(&mut self, pc: BarrierPc, thread: ThreadId);

    /// Whether prediction is disabled for this (thread, site).
    fn is_disabled(&self, pc: BarrierPc, thread: ThreadId) -> bool;
}

#[derive(Debug, Clone, Default)]
struct SiteEntry {
    last_bit: Option<Cycles>,
    disabled: Vec<bool>,
}

/// The paper's predictor: PC-indexed last-value prediction with per-thread
/// disable bits and the underprediction filter.
#[derive(Debug, Clone)]
pub struct LastValuePredictor {
    entries: HashMap<BarrierPc, SiteEntry>,
    threads: usize,
    /// Measurements larger than `underprediction_factor ×` the current
    /// entry are treated as inordinate and skipped. `None` disables the
    /// filter.
    underprediction_factor: Option<f64>,
}

impl LastValuePredictor {
    /// Creates a predictor for `threads` threads with the underprediction
    /// filter at the given factor (the paper tunes this per system; 8× is
    /// our default — an interval eight times longer than the previous one
    /// for the *same* barrier almost certainly contains a preemption).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the factor is not greater than 1.
    pub fn new(threads: usize, underprediction_factor: Option<f64>) -> Self {
        assert!(threads > 0, "need at least one thread");
        if let Some(f) = underprediction_factor {
            assert!(f > 1.0, "underprediction factor must exceed 1, got {f}");
        }
        LastValuePredictor {
            entries: HashMap::new(),
            threads,
            underprediction_factor,
        }
    }

    /// The default configuration used by the evaluation.
    pub fn with_defaults(threads: usize) -> Self {
        LastValuePredictor::new(threads, Some(8.0))
    }

    /// The site's current table entry, ignoring the per-thread disable
    /// bits (which gate *prediction*, not the table's existence).
    pub fn last_bit(&self, pc: BarrierPc) -> Option<Cycles> {
        self.entries.get(&pc).and_then(|e| e.last_bit)
    }

    fn entry_mut(&mut self, pc: BarrierPc) -> &mut SiteEntry {
        let threads = self.threads;
        self.entries.entry(pc).or_insert_with(|| SiteEntry {
            last_bit: None,
            disabled: vec![false; threads],
        })
    }
}

impl BitPredictor for LastValuePredictor {
    fn predict(&self, pc: BarrierPc, _instance: u64, thread: ThreadId) -> Option<Cycles> {
        let e = self.entries.get(&pc)?;
        if *e.disabled.get(thread.index())? {
            return None;
        }
        e.last_bit
    }

    fn update(&mut self, pc: BarrierPc, _instance: u64, measured: Cycles) -> UpdateOutcome {
        let factor = self.underprediction_factor;
        let e = self.entry_mut(pc);
        if let (Some(f), Some(prev)) = (factor, e.last_bit) {
            if prev > Cycles::ZERO && measured.as_u64() as f64 > prev.as_u64() as f64 * f {
                return UpdateOutcome::SkippedInordinate;
            }
        }
        e.last_bit = Some(measured);
        UpdateOutcome::Applied
    }

    fn disable(&mut self, pc: BarrierPc, thread: ThreadId) {
        let e = self.entry_mut(pc);
        if let Some(slot) = e.disabled.get_mut(thread.index()) {
            *slot = true;
        }
    }

    fn is_disabled(&self, pc: BarrierPc, thread: ThreadId) -> bool {
        self.entries
            .get(&pc)
            .and_then(|e| e.disabled.get(thread.index()).copied())
            .unwrap_or(false)
    }
}

/// Ablation variant: exponentially-weighted moving average of PC-indexed
/// BIT instead of last-value.
#[derive(Debug, Clone)]
pub struct AveragingPredictor {
    inner: LastValuePredictor,
    averages: HashMap<BarrierPc, f64>,
    alpha: f64,
}

impl AveragingPredictor {
    /// Creates an EWMA predictor with smoothing factor `alpha` (weight of
    /// the newest sample).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(threads: usize, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        AveragingPredictor {
            inner: LastValuePredictor::new(threads, Some(8.0)),
            averages: HashMap::new(),
            alpha,
        }
    }
}

impl BitPredictor for AveragingPredictor {
    fn predict(&self, pc: BarrierPc, instance: u64, thread: ThreadId) -> Option<Cycles> {
        // Reuse the disable bits and history-existence logic of the inner
        // predictor, then substitute the average.
        self.inner.predict(pc, instance, thread)?;
        self.averages
            .get(&pc)
            .map(|&a| Cycles::new(a.round() as u64))
    }

    fn update(&mut self, pc: BarrierPc, instance: u64, measured: Cycles) -> UpdateOutcome {
        let outcome = self.inner.update(pc, instance, measured);
        if outcome == UpdateOutcome::Applied {
            let a = self.alpha;
            self.averages
                .entry(pc)
                .and_modify(|avg| *avg = (1.0 - a) * *avg + a * measured.as_u64() as f64)
                .or_insert(measured.as_u64() as f64);
        }
        outcome
    }

    fn disable(&mut self, pc: BarrierPc, thread: ThreadId) {
        self.inner.disable(pc, thread);
    }

    fn is_disabled(&self, pc: BarrierPc, thread: ThreadId) -> bool {
        self.inner.is_disabled(pc, thread)
    }
}

/// Ablation variant: *direct* last-value prediction of each thread's BST,
/// the strawman §3.2 argues against. Thread-dependent and therefore noisy
/// when work shifts among threads across instances.
#[derive(Debug, Clone)]
pub struct DirectBstPredictor {
    last_bst: HashMap<(BarrierPc, ThreadId), Cycles>,
    disabled: HashMap<(BarrierPc, ThreadId), bool>,
}

impl DirectBstPredictor {
    /// Creates an empty direct-BST predictor.
    pub fn new() -> Self {
        DirectBstPredictor {
            last_bst: HashMap::new(),
            disabled: HashMap::new(),
        }
    }
}

impl Default for DirectBstPredictor {
    fn default() -> Self {
        DirectBstPredictor::new()
    }
}

impl BitPredictor for DirectBstPredictor {
    fn predict(&self, pc: BarrierPc, _instance: u64, thread: ThreadId) -> Option<Cycles> {
        if self.is_disabled(pc, thread) {
            return None;
        }
        // NOTE: callers treat the returned value as a BIT and subtract
        // compute time; the executor using this variant must call
        // `predicts_stall_directly` and skip the subtraction.
        self.last_bst.get(&(pc, thread)).copied()
    }

    fn update(&mut self, _pc: BarrierPc, _instance: u64, _measured: Cycles) -> UpdateOutcome {
        UpdateOutcome::Applied
    }

    fn update_bst(&mut self, pc: BarrierPc, thread: ThreadId, measured: Cycles) {
        self.last_bst.insert((pc, thread), measured);
    }

    fn disable(&mut self, pc: BarrierPc, thread: ThreadId) {
        self.disabled.insert((pc, thread), true);
    }

    fn is_disabled(&self, pc: BarrierPc, thread: ThreadId) -> bool {
        self.disabled.get(&(pc, thread)).copied().unwrap_or(false)
    }
}

/// Extension variant (§3.3.3 hints at "sophisticated predictors and/or
/// confidence estimators"): last-value prediction gated by a saturating
/// two-bit confidence counter per site.
///
/// The counter increments when a new measurement lands within `tolerance`
/// (relative) of the table entry and decrements otherwise; prediction is
/// offered only at confidence ≥ 2. Unlike the paper's permanent per-thread
/// disable bit, confidence *recovers* once a site stabilizes again — the
/// trade-off the ablation quantifies.
#[derive(Debug, Clone)]
pub struct ConfidencePredictor {
    inner: LastValuePredictor,
    confidence: HashMap<BarrierPc, u8>,
    tolerance: f64,
}

impl ConfidencePredictor {
    /// Creates a confidence-gated predictor.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive.
    pub fn new(threads: usize, tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0,
            "tolerance must be positive, got {tolerance}"
        );
        ConfidencePredictor {
            inner: LastValuePredictor::new(threads, Some(8.0)),
            confidence: HashMap::new(),
            tolerance,
        }
    }

    /// Current confidence (0..=3) for a site.
    pub fn confidence(&self, pc: BarrierPc) -> u8 {
        self.confidence.get(&pc).copied().unwrap_or(0)
    }
}

impl BitPredictor for ConfidencePredictor {
    fn predict(&self, pc: BarrierPc, instance: u64, thread: ThreadId) -> Option<Cycles> {
        if self.confidence(pc) < 2 {
            return None;
        }
        self.inner.predict(pc, instance, thread)
    }

    fn update(&mut self, pc: BarrierPc, instance: u64, measured: Cycles) -> UpdateOutcome {
        // Compare against the site's raw table entry, not a thread-filtered
        // prediction: going through `predict` with an arbitrary thread
        // would return `None` forever once that thread's disable bit is
        // set, permanently resetting confidence to 1 for *every* thread.
        let prev = self.inner.last_bit(pc).filter(|p| *p > Cycles::ZERO);
        let outcome = self.inner.update(pc, instance, measured);
        let slot = self.confidence.entry(pc).or_insert(0);
        match prev {
            Some(prev) => {
                let rel =
                    (measured.as_u64() as f64 - prev.as_u64() as f64).abs() / prev.as_u64() as f64;
                if rel <= self.tolerance {
                    *slot = (*slot + 1).min(3);
                } else {
                    *slot = slot.saturating_sub(1);
                }
            }
            None => {
                // First measurement: history exists now, but it has not yet
                // proven stable.
                *slot = 1;
            }
        }
        outcome
    }

    fn disable(&mut self, pc: BarrierPc, thread: ThreadId) {
        self.inner.disable(pc, thread);
    }

    fn is_disabled(&self, pc: BarrierPc, thread: ThreadId) -> bool {
        self.inner.is_disabled(pc, thread)
    }
}

/// Perfect BIT prediction from a recorded trace — the Oracle-Halt and Ideal
/// configurations of §5.1.
///
/// The table is keyed by `(site, per-site instance index)` and is filled
/// from a prior Baseline run of the same deterministic workload (in which
/// barrier timing is identical because nobody sleeps).
#[derive(Debug, Clone, Default)]
pub struct RecordedBitOracle {
    table: HashMap<(BarrierPc, u64), Cycles>,
}

impl RecordedBitOracle {
    /// Creates an empty oracle (predicts nothing until fed).
    pub fn new() -> Self {
        RecordedBitOracle::default()
    }

    /// Records the true BIT of one barrier instance.
    pub fn record(&mut self, pc: BarrierPc, instance: u64, bit: Cycles) {
        self.table.insert((pc, instance), bit);
    }

    /// Number of recorded instances.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl BitPredictor for RecordedBitOracle {
    fn predict(&self, pc: BarrierPc, instance: u64, _thread: ThreadId) -> Option<Cycles> {
        self.table.get(&(pc, instance)).copied()
    }

    fn update(&mut self, _pc: BarrierPc, _instance: u64, _measured: Cycles) -> UpdateOutcome {
        UpdateOutcome::Applied
    }

    fn disable(&mut self, _pc: BarrierPc, _thread: ThreadId) {
        // An oracle never mispredicts, so the cut-off never fires; ignore.
    }

    fn is_disabled(&self, _pc: BarrierPc, _thread: ThreadId) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }

    const PC: BarrierPc = BarrierPc::new(0x1000);
    const PC2: BarrierPc = BarrierPc::new(0x2000);

    #[test]
    fn no_history_predicts_none() {
        let p = LastValuePredictor::with_defaults(4);
        assert_eq!(p.predict(PC, 0, t(0)), None);
    }

    #[test]
    fn last_value_roundtrip() {
        let mut p = LastValuePredictor::with_defaults(4);
        assert_eq!(
            p.update(PC, 0, Cycles::from_micros(100)),
            UpdateOutcome::Applied
        );
        assert_eq!(p.predict(PC, 1, t(2)), Some(Cycles::from_micros(100)));
        p.update(PC, 1, Cycles::from_micros(150));
        assert_eq!(p.predict(PC, 2, t(2)), Some(Cycles::from_micros(150)));
    }

    #[test]
    fn sites_are_independent() {
        let mut p = LastValuePredictor::with_defaults(2);
        p.update(PC, 0, Cycles::from_micros(100));
        p.update(PC2, 0, Cycles::from_micros(900));
        assert_eq!(p.predict(PC, 1, t(0)), Some(Cycles::from_micros(100)));
        assert_eq!(p.predict(PC2, 1, t(0)), Some(Cycles::from_micros(900)));
    }

    #[test]
    fn disable_bit_is_per_thread_per_site() {
        let mut p = LastValuePredictor::with_defaults(4);
        p.update(PC, 0, Cycles::from_micros(100));
        p.update(PC2, 0, Cycles::from_micros(100));
        p.disable(PC, t(1));
        assert!(p.is_disabled(PC, t(1)));
        assert_eq!(p.predict(PC, 1, t(1)), None, "disabled thread gets None");
        assert!(p.predict(PC, 1, t(0)).is_some(), "other threads unaffected");
        assert!(p.predict(PC2, 1, t(1)).is_some(), "other sites unaffected");
    }

    #[test]
    fn underprediction_filter_skips_inordinate_bit() {
        let mut p = LastValuePredictor::new(2, Some(4.0));
        p.update(PC, 0, Cycles::from_micros(100));
        // 10x the entry: a preemption happened; must be skipped.
        assert_eq!(
            p.update(PC, 1, Cycles::from_millis(1)),
            UpdateOutcome::SkippedInordinate
        );
        assert_eq!(
            p.predict(PC, 2, t(0)),
            Some(Cycles::from_micros(100)),
            "older, shorter interval is used again (§3.4.2)"
        );
        // Just below the factor: accepted.
        assert_eq!(
            p.update(PC, 2, Cycles::from_micros(399)),
            UpdateOutcome::Applied
        );
    }

    #[test]
    fn filter_disabled_accepts_everything() {
        let mut p = LastValuePredictor::new(2, None);
        p.update(PC, 0, Cycles::from_micros(10));
        assert_eq!(
            p.update(PC, 1, Cycles::from_secs(10)),
            UpdateOutcome::Applied
        );
    }

    #[test]
    fn first_measurement_never_filtered() {
        let mut p = LastValuePredictor::new(2, Some(2.0));
        assert_eq!(
            p.update(PC, 0, Cycles::from_secs(100)),
            UpdateOutcome::Applied
        );
    }

    #[test]
    fn averaging_predictor_smooths() {
        let mut p = AveragingPredictor::new(2, 0.5);
        p.update(PC, 0, Cycles::from_micros(100));
        p.update(PC, 1, Cycles::from_micros(200));
        // EWMA: 100, then 0.5*100 + 0.5*200 = 150.
        assert_eq!(p.predict(PC, 2, t(0)), Some(Cycles::from_micros(150)));
    }

    #[test]
    fn averaging_alpha_one_is_last_value() {
        let mut p = AveragingPredictor::new(2, 1.0);
        p.update(PC, 0, Cycles::from_micros(100));
        p.update(PC, 1, Cycles::from_micros(250));
        assert_eq!(p.predict(PC, 2, t(0)), Some(Cycles::from_micros(250)));
    }

    #[test]
    fn averaging_respects_disable() {
        let mut p = AveragingPredictor::new(2, 0.5);
        p.update(PC, 0, Cycles::from_micros(100));
        p.disable(PC, t(0));
        assert_eq!(p.predict(PC, 1, t(0)), None);
        assert!(p.is_disabled(PC, t(0)));
    }

    #[test]
    fn direct_bst_is_per_thread() {
        let mut p = DirectBstPredictor::new();
        p.update_bst(PC, t(0), Cycles::from_micros(30));
        p.update_bst(PC, t(1), Cycles::from_micros(70));
        assert_eq!(p.predict(PC, 5, t(0)), Some(Cycles::from_micros(30)));
        assert_eq!(p.predict(PC, 5, t(1)), Some(Cycles::from_micros(70)));
        assert_eq!(p.predict(PC, 5, t(2)), None);
        p.disable(PC, t(1));
        assert_eq!(p.predict(PC, 6, t(1)), None);
    }

    #[test]
    fn oracle_returns_exact_instances() {
        let mut o = RecordedBitOracle::new();
        assert!(o.is_empty());
        o.record(PC, 0, Cycles::from_micros(100));
        o.record(PC, 1, Cycles::from_micros(170));
        assert_eq!(o.len(), 2);
        assert_eq!(o.predict(PC, 0, t(3)), Some(Cycles::from_micros(100)));
        assert_eq!(o.predict(PC, 1, t(0)), Some(Cycles::from_micros(170)));
        assert_eq!(o.predict(PC, 2, t(0)), None);
        o.disable(PC, t(0)); // no-op
        assert!(!o.is_disabled(PC, t(0)));
    }

    #[test]
    fn confidence_gates_until_stable() {
        let mut p = ConfidencePredictor::new(2, 0.10);
        assert_eq!(p.confidence(PC), 0);
        p.update(PC, 0, Cycles::from_micros(100));
        assert_eq!(p.confidence(PC), 1);
        assert_eq!(p.predict(PC, 1, t(0)), None, "one sample is not confidence");
        p.update(PC, 1, Cycles::from_micros(105)); // within 10%
        assert_eq!(p.confidence(PC), 2);
        assert_eq!(p.predict(PC, 2, t(0)), Some(Cycles::from_micros(105)));
    }

    #[test]
    fn confidence_drops_on_swings_and_recovers() {
        let mut p = ConfidencePredictor::new(2, 0.10);
        for i in 0..3 {
            p.update(PC, i, Cycles::from_micros(100));
        }
        assert_eq!(p.confidence(PC), 3, "saturates at 3");
        assert!(p.predict(PC, 3, t(0)).is_some());
        // Two wild swings drop confidence below the prediction gate.
        p.update(PC, 3, Cycles::from_micros(500));
        p.update(PC, 4, Cycles::from_micros(90));
        assert_eq!(p.confidence(PC), 1);
        assert_eq!(p.predict(PC, 5, t(0)), None);
        // Stability restores prediction — unlike the permanent disable bit.
        p.update(PC, 5, Cycles::from_micros(92));
        assert!(p.predict(PC, 6, t(0)).is_some());
    }

    #[test]
    fn confidence_respects_disable_bits() {
        let mut p = ConfidencePredictor::new(2, 0.10);
        for i in 0..3 {
            p.update(PC, i, Cycles::from_micros(100));
        }
        p.disable(PC, t(1));
        assert!(p.is_disabled(PC, t(1)));
        assert_eq!(p.predict(PC, 3, t(1)), None);
        assert!(p.predict(PC, 3, t(0)).is_some());
    }

    #[test]
    fn confidence_survives_thread0_disable() {
        // Regression: `update` used to probe history through
        // `predict(pc, _, ThreadId::new(0))`, so setting thread 0's disable
        // bit made `prev` permanently `None`, pinning confidence at 1 and
        // silently disabling prediction for every thread at the site.
        let mut p = ConfidencePredictor::new(4, 0.10);
        p.update(PC, 0, Cycles::from_micros(100));
        p.disable(PC, t(0));
        p.update(PC, 1, Cycles::from_micros(102));
        p.update(PC, 2, Cycles::from_micros(101));
        assert!(
            p.confidence(PC) >= 2,
            "stable history must build confidence even with thread 0 disabled (got {})",
            p.confidence(PC)
        );
        assert_eq!(p.predict(PC, 3, t(0)), None, "thread 0 stays disabled");
        assert_eq!(
            p.predict(PC, 3, t(1)),
            Some(Cycles::from_micros(101)),
            "other threads keep predicting"
        );
    }

    #[test]
    fn last_bit_ignores_disable_bits() {
        let mut p = LastValuePredictor::with_defaults(2);
        assert_eq!(p.last_bit(PC), None);
        p.update(PC, 0, Cycles::from_micros(100));
        p.disable(PC, t(0));
        p.disable(PC, t(1));
        assert_eq!(p.last_bit(PC), Some(Cycles::from_micros(100)));
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn confidence_rejects_bad_tolerance() {
        let _ = ConfidencePredictor::new(2, 0.0);
    }

    #[test]
    #[should_panic(expected = "underprediction factor")]
    fn bad_filter_factor_rejected() {
        let _ = LastValuePredictor::new(2, Some(1.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = AveragingPredictor::new(2, 0.0);
    }

    #[test]
    fn pc_display() {
        assert_eq!(BarrierPc::new(0x40).to_string(), "pc:0x40");
        assert_eq!(BarrierPc::new(0x40).as_u64(), 0x40);
    }
}
