//! Wake-up planning (§3.3): external, internal, and hybrid.
//!
//! * **External** wake-up turns the invalidation of the barrier flag —
//!   sent by the coherence protocol when the last thread flips it — into a
//!   wake-up signal via a small cache-controller extension. It is exact but
//!   *late by construction*: the exit transition starts only at release, so
//!   the full exit latency lands on the critical path.
//! * **Internal** wake-up programs a countdown timer in the cache
//!   controller with the predicted stall, *minus the exit latency*, so the
//!   CPU is (ideally) awake right at the release. It risks both early
//!   wake-up (residual spin energy) and unbounded late wake-up.
//! * **Hybrid** arms both; the first to fire cancels the other, so the
//!   external signal bounds any overprediction while the timer provides
//!   timeliness.

use serde::{Deserialize, Serialize};
use std::fmt;
use tb_sim::Cycles;

/// Which wake-up mechanisms are armed for a sleeping CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WakeupMode {
    /// Only the flag-invalidation signal (§3.3.1).
    ExternalOnly,
    /// Only the programmed timer (§3.3.2); unbounded if overpredicted.
    InternalOnly,
    /// Both, first-wins (the paper's choice).
    Hybrid,
}

impl fmt::Display for WakeupMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WakeupMode::ExternalOnly => "external-only",
            WakeupMode::InternalOnly => "internal-only",
            WakeupMode::Hybrid => "hybrid",
        };
        f.write_str(s)
    }
}

/// A concrete wake-up plan for one sleep episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WakeupPlan {
    /// Arm the flag-watch in the cache controller?
    pub external: bool,
    /// Absolute time at which the internal timer starts the exit
    /// transition, if armed.
    pub internal_at: Option<Cycles>,
}

impl WakeupPlan {
    /// Builds the plan for a thread that goes to sleep at `now` expecting
    /// the barrier release at `estimated_release`, in a state whose exit
    /// takes `exit_latency`.
    ///
    /// The internal timer targets `estimated_release − exit_latency −
    /// anticipation`, clamped to `now` (the transition cannot start in the
    /// past). The anticipation margin implements §3.3.2's "initiate the
    /// transition … *before* the barrier is released (at the risk of
    /// incurring early wake-up)": without it, an exactly-correct prediction
    /// ties with the release and the external path — which puts the whole
    /// exit latency on the critical path — wins half the time.
    pub fn new(
        mode: WakeupMode,
        now: Cycles,
        estimated_release: Cycles,
        exit_latency: Cycles,
        anticipation: Cycles,
    ) -> Self {
        let timer = estimated_release
            .saturating_sub(exit_latency)
            .saturating_sub(anticipation)
            .max(now);
        match mode {
            WakeupMode::ExternalOnly => WakeupPlan {
                external: true,
                internal_at: None,
            },
            WakeupMode::InternalOnly => WakeupPlan {
                external: false,
                internal_at: Some(timer),
            },
            WakeupMode::Hybrid => WakeupPlan {
                external: true,
                internal_at: Some(timer),
            },
        }
    }
}

/// A perturbation of the armed internal countdown timer (fault modeling,
/// `tb-faults`). The randomness — whether a skew happens and how large it
/// is — comes from the injector; this type is the pure arithmetic applied
/// to a [`WakeupPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimerSkew {
    /// The timer drifts: it fires this much *after* its programmed target,
    /// risking unbounded oversleep under internal-only wake-up.
    DriftLate(Cycles),
    /// The timer fires spuriously this much *before* its programmed
    /// target; the residual spin absorbs the early wake-up.
    SpuriousEarly(Cycles),
}

impl WakeupPlan {
    /// Returns the plan with `skew` applied to the armed internal timer,
    /// clamping the fire time to `now` (a timer cannot fire in the past).
    /// A plan without an internal timer is returned unchanged — the
    /// external path has no timer to skew.
    pub fn with_skew(self, now: Cycles, skew: TimerSkew) -> Self {
        let Some(at) = self.internal_at else {
            return self;
        };
        let skewed = match skew {
            TimerSkew::DriftLate(delta) => at + delta,
            TimerSkew::SpuriousEarly(delta) => at.saturating_sub(delta),
        };
        WakeupPlan {
            internal_at: Some(skewed.max(now)),
            ..self
        }
    }
}

impl fmt::Display for WakeupPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.external, self.internal_at) {
            (true, Some(t)) => write!(f, "hybrid(timer@{t})"),
            (true, None) => write!(f, "external"),
            (false, Some(t)) => write!(f, "internal(timer@{t})"),
            (false, None) => write!(f, "none"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: Cycles = Cycles::new(1_000_000);

    #[test]
    fn hybrid_arms_both() {
        let p = WakeupPlan::new(
            WakeupMode::Hybrid,
            NOW,
            Cycles::new(2_000_000),
            Cycles::from_micros(10),
            Cycles::ZERO,
        );
        assert!(p.external);
        assert_eq!(p.internal_at, Some(Cycles::new(1_990_000)));
    }

    #[test]
    fn external_only_has_no_timer() {
        let p = WakeupPlan::new(
            WakeupMode::ExternalOnly,
            NOW,
            Cycles::new(2_000_000),
            Cycles::from_micros(10),
            Cycles::ZERO,
        );
        assert!(p.external);
        assert_eq!(p.internal_at, None);
    }

    #[test]
    fn internal_only_disarms_external() {
        let p = WakeupPlan::new(
            WakeupMode::InternalOnly,
            NOW,
            Cycles::new(2_000_000),
            Cycles::from_micros(10),
            Cycles::ZERO,
        );
        assert!(!p.external);
        assert!(p.internal_at.is_some());
    }

    #[test]
    fn timer_anticipates_exit_latency() {
        // The whole point of internal wake-up: start the exit transition
        // exit_latency before the predicted release.
        let release = Cycles::from_millis(10);
        let exit = Cycles::from_micros(35);
        let p = WakeupPlan::new(WakeupMode::Hybrid, NOW, release, exit, Cycles::ZERO);
        assert_eq!(p.internal_at, Some(release - exit));
        let guard = Cycles::from_micros(3);
        let p = WakeupPlan::new(WakeupMode::Hybrid, NOW, release, exit, guard);
        assert_eq!(
            p.internal_at,
            Some(release - exit - guard),
            "anticipation subtracts"
        );
    }

    #[test]
    fn timer_clamped_to_now() {
        // Predicted release so close that the exit can't finish in time:
        // start immediately rather than in the past.
        let p = WakeupPlan::new(
            WakeupMode::Hybrid,
            NOW,
            NOW + Cycles::from_micros(1),
            Cycles::from_micros(10),
            Cycles::ZERO,
        );
        assert_eq!(p.internal_at, Some(NOW));
    }

    #[test]
    fn skew_moves_the_timer_and_clamps_to_now() {
        let p = WakeupPlan::new(
            WakeupMode::Hybrid,
            NOW,
            Cycles::new(2_000_000),
            Cycles::from_micros(10),
            Cycles::ZERO,
        );
        let at = p.internal_at.unwrap();
        let late = p.with_skew(NOW, TimerSkew::DriftLate(Cycles::new(500)));
        assert_eq!(late.internal_at, Some(at + Cycles::new(500)));
        assert!(late.external, "skew does not touch the external arm");
        let early = p.with_skew(NOW, TimerSkew::SpuriousEarly(Cycles::new(500)));
        assert_eq!(early.internal_at, Some(at - Cycles::new(500)));
        // A skew past `now` clamps: timers cannot fire in the past.
        let clamped = p.with_skew(NOW, TimerSkew::SpuriousEarly(Cycles::from_secs(10)));
        assert_eq!(clamped.internal_at, Some(NOW));
        // External-only plans have no timer to skew.
        let ext = WakeupPlan::new(
            WakeupMode::ExternalOnly,
            NOW,
            Cycles::new(2_000_000),
            Cycles::from_micros(10),
            Cycles::ZERO,
        );
        assert_eq!(
            ext.with_skew(NOW, TimerSkew::DriftLate(Cycles::new(5))),
            ext
        );
    }

    #[test]
    fn displays() {
        assert_eq!(WakeupMode::Hybrid.to_string(), "hybrid");
        assert_eq!(WakeupMode::ExternalOnly.to_string(), "external-only");
        let p = WakeupPlan::new(
            WakeupMode::ExternalOnly,
            NOW,
            NOW,
            Cycles::new(1),
            Cycles::ZERO,
        );
        assert_eq!(p.to_string(), "external");
        let p = WakeupPlan::new(
            WakeupMode::InternalOnly,
            NOW,
            NOW,
            Cycles::new(1),
            Cycles::ZERO,
        );
        assert!(p.to_string().starts_with("internal"));
    }
}
