//! Per-thread timing bookkeeping without a global clock (§3.2.1).
//!
//! The paper maintains, per thread, a *local* release timestamp of the
//! previous barrier instance (BRTS). The induction works as follows:
//!
//! * On arrival at barrier `b` at local time `now`, the thread's compute
//!   time for the interval is `now − BRTS(b−1)`, and its estimated wake-up
//!   time is `BRTS(b−1) + predicted BIT(b)`. Subtracting `now` yields the
//!   predicted stall time (BST).
//! * The last-arriving thread measures the true `BIT(b)` as
//!   `now − its own BRTS(b−1)` and publishes it.
//! * Once awake and past the barrier, every thread advances its BRTS by the
//!   *published* `BIT(b)` — not by its own wake-up time — keeping all BRTS
//!   values consistent without any global clock.
//!
//! The only assumptions are the paper's: all processors share a nominal
//! clock frequency, and flag-propagation time is negligible against the
//! interval time.

use serde::{Deserialize, Serialize};
use std::fmt;
use tb_sim::Cycles;

/// A thread's barrier timing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ThreadTiming {
    /// Local release timestamp of the previous barrier instance
    /// (zero denotes the beginning of the program, as in the paper).
    brts: Cycles,
}

/// The quantities derived at arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalEstimate {
    /// Compute time since the previous release: `now − BRTS`.
    pub compute_time: Cycles,
    /// Estimated absolute wake-up (release) time: `BRTS + predicted BIT`.
    pub estimated_release: Cycles,
    /// Predicted stall ahead: `estimated_release − now`, saturating to zero
    /// when the prediction says the release should already have happened.
    pub predicted_stall: Cycles,
}

impl ThreadTiming {
    /// Fresh state: BRTS at time zero (program start).
    pub fn new() -> Self {
        ThreadTiming::default()
    }

    /// The local release timestamp of the previous barrier instance.
    pub fn brts(&self) -> Cycles {
        self.brts
    }

    /// Compute time accumulated since the previous release.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the recorded BRTS (the executor fed
    /// timestamps out of order).
    pub fn compute_time(&self, now: Cycles) -> Cycles {
        now.checked_sub(self.brts)
            .expect("arrival before the previous release: executor clock bug")
    }

    /// Derives the arrival-time estimates from a predicted BIT (§3.2.1).
    pub fn estimate(&self, now: Cycles, predicted_bit: Cycles) -> ArrivalEstimate {
        let compute_time = self.compute_time(now);
        let estimated_release = self.brts + predicted_bit;
        ArrivalEstimate {
            compute_time,
            estimated_release,
            predicted_stall: estimated_release.saturating_sub(now),
        }
    }

    /// Derives the estimate when the predictor produced a *stall* directly
    /// (the direct-BST ablation): no subtraction is performed.
    pub fn estimate_direct_stall(&self, now: Cycles, predicted_stall: Cycles) -> ArrivalEstimate {
        ArrivalEstimate {
            compute_time: self.compute_time(now),
            estimated_release: now + predicted_stall,
            predicted_stall,
        }
    }

    /// The measured BIT as observed by the *last-arriving* thread flipping
    /// the flag at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the recorded BRTS.
    pub fn measure_bit(&self, now: Cycles) -> Cycles {
        self.compute_time(now)
    }

    /// Advances BRTS past a released barrier using the published BIT,
    /// returning the new local release timestamp.
    pub fn advance(&mut self, published_bit: Cycles) -> Cycles {
        self.brts += published_bit;
        self.brts
    }

    /// The overprediction penalty of §3.3.3: how much later than the
    /// (derived) release this thread woke up. Zero when the wake-up was
    /// early or on time.
    pub fn overprediction_penalty(&self, wakeup_timestamp: Cycles) -> Cycles {
        wakeup_timestamp.delta(self.brts).late_by()
    }
}

impl fmt::Display for ThreadTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BRTS={}", self.brts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_starts_at_zero() {
        let t = ThreadTiming::new();
        assert_eq!(t.brts(), Cycles::ZERO);
        assert_eq!(
            t.compute_time(Cycles::from_micros(5)),
            Cycles::from_micros(5)
        );
    }

    #[test]
    fn estimate_decomposes_interval() {
        let mut t = ThreadTiming::new();
        t.advance(Cycles::from_micros(100)); // previous barrier released at 100µs
                                             // Thread computes 40µs then arrives; BIT predicted 100µs.
        let e = t.estimate(Cycles::from_micros(140), Cycles::from_micros(100));
        assert_eq!(e.compute_time, Cycles::from_micros(40));
        assert_eq!(e.estimated_release, Cycles::from_micros(200));
        assert_eq!(e.predicted_stall, Cycles::from_micros(60));
    }

    #[test]
    fn late_arrival_predicts_zero_stall() {
        let t = ThreadTiming::new();
        // Predicted BIT 50µs but the thread only arrives at 80µs: the
        // prediction says the barrier should already be released.
        let e = t.estimate(Cycles::from_micros(80), Cycles::from_micros(50));
        assert_eq!(e.predicted_stall, Cycles::ZERO);
    }

    #[test]
    fn induction_tracks_releases_exactly() {
        // Two threads; thread A always arrives early, thread B releases.
        let mut a = ThreadTiming::new();
        let mut b = ThreadTiming::new();
        let mut true_release = Cycles::ZERO;
        for i in 1..=5u64 {
            let bit = Cycles::from_micros(100 + 10 * i);
            true_release += bit;
            // B arrives last exactly at the release instant.
            assert_eq!(b.measure_bit(true_release), bit);
            a.advance(bit);
            b.advance(bit);
            assert_eq!(a.brts(), true_release, "BRTS matches true release");
            assert_eq!(
                a.brts(),
                b.brts(),
                "all threads agree without a global clock"
            );
        }
    }

    #[test]
    fn direct_stall_estimate_skips_subtraction() {
        let t = ThreadTiming::new();
        let e = t.estimate_direct_stall(Cycles::from_micros(70), Cycles::from_micros(25));
        assert_eq!(e.predicted_stall, Cycles::from_micros(25));
        assert_eq!(e.estimated_release, Cycles::from_micros(95));
        assert_eq!(e.compute_time, Cycles::from_micros(70));
    }

    #[test]
    fn overprediction_penalty_definition() {
        let mut t = ThreadTiming::new();
        t.advance(Cycles::from_micros(200)); // barrier released at 200µs
                                             // Woke at 230µs: 30µs late.
        assert_eq!(
            t.overprediction_penalty(Cycles::from_micros(230)),
            Cycles::from_micros(30)
        );
        // Woke at 190µs (early): no penalty.
        assert_eq!(
            t.overprediction_penalty(Cycles::from_micros(190)),
            Cycles::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "executor clock bug")]
    fn arrival_before_release_panics() {
        let mut t = ThreadTiming::new();
        t.advance(Cycles::from_micros(100));
        t.compute_time(Cycles::from_micros(50));
    }

    #[test]
    fn display_shows_brts() {
        let mut t = ThreadTiming::new();
        t.advance(Cycles::from_micros(3));
        assert!(t.to_string().contains("BRTS"));
    }
}
