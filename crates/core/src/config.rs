//! The five system configurations of the paper's evaluation (§5.1) and the
//! algorithm-level knobs behind them.
//!
//! | Config | Bar | Sleep states | Prediction | Flush overhead |
//! |---|---|---|---|---|
//! | Baseline | B | — (spin) | — | — |
//! | Thrifty-Halt | H | Halt only | last-value | n/a (Halt snoops) |
//! | Oracle-Halt | O | Halt only | perfect BIT | n/a |
//! | Thrifty | T | Table 3 (all three) | last-value | charged |
//! | Ideal | I | Table 3 | perfect BIT | waived |

use crate::wakeup::WakeupMode;
use serde::{Deserialize, Serialize};
use std::fmt;
use tb_energy::SleepTable;

/// Which BIT predictor the algorithm uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorChoice {
    /// PC-indexed last-value prediction (the paper's).
    LastValue,
    /// EWMA of PC-indexed BIT with the given smoothing factor (ablation).
    Averaging(f64),
    /// Direct per-thread BST last-value prediction (ablation strawman).
    DirectBst,
    /// Confidence-gated last-value prediction: a 2-bit counter per site
    /// must saturate before predictions are offered (extension ablation).
    Confidence(f64),
    /// Perfect per-instance BIT from a recorded trace (Oracle/Ideal).
    Oracle,
}

impl fmt::Display for PredictorChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorChoice::LastValue => write!(f, "last-value"),
            PredictorChoice::Averaging(a) => write!(f, "ewma(alpha={a})"),
            PredictorChoice::DirectBst => write!(f, "direct-bst"),
            PredictorChoice::Confidence(t) => write!(f, "confidence(tol={t})"),
            PredictorChoice::Oracle => write!(f, "oracle"),
        }
    }
}

/// Predictor-quarantine thresholds (fault hardening): after
/// `consecutive` gross mispredictions in a row at one barrier PC — each
/// off by more than `tolerance` relative error — the site stops offering
/// predictions (falls back to plain spinning) until the 2-bit confidence
/// counter saturates again on accurate measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuarantineConfig {
    /// Consecutive gross mispredictions before the site is quarantined.
    pub consecutive: u32,
    /// Relative error `|predicted − measured| / measured` above which a
    /// prediction counts as gross.
    pub tolerance: f64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            consecutive: 3,
            tolerance: 0.5,
        }
    }
}

/// A deterministic fault-injection plan (see `tb-faults`).
///
/// Every field is a per-opportunity probability (or a mean magnitude for
/// the delay-type faults); all randomness is drawn from splittable
/// `tb-sim::SimRng` streams derived from `seed`, so a plan replays
/// identically at any `--jobs` level. [`FaultPlan::none`] is the disabled
/// plan: all probabilities zero, and injection layers treat it as absent,
/// which keeps fault plumbing provably zero-cost on clean runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed of every derived fault stream.
    pub seed: u64,
    /// P(drop a barrier-flag invalidation wake-up signal).
    pub lose_wakeup: f64,
    /// P(delay a barrier-flag invalidation wake-up signal).
    pub delay_wakeup: f64,
    /// Mean of the exponential wake-up delay, in nanoseconds.
    pub delay_wakeup_mean_ns: f64,
    /// P(an armed countdown timer drifts late).
    pub timer_drift: f64,
    /// Max drift as a fraction of the programmed countdown.
    pub timer_drift_frac: f64,
    /// P(an armed countdown timer fires spuriously early).
    pub spurious_fire: f64,
    /// P(a sleep-state exit transition stalls past its rated latency).
    pub oversleep: f64,
    /// Mean of the exponential oversleep stall, in nanoseconds.
    pub oversleep_mean_ns: f64,
    /// P(a real-threads unpark analog is delayed).
    pub delay_unpark: f64,
    /// Mean of the exponential unpark delay, in nanoseconds.
    pub delay_unpark_mean_ns: f64,
    /// P(a firing guard timer wedges permanently instead of rescuing its
    /// thread). A wedged guard removes the last recovery path for a lost
    /// wake-up, so the episode can never complete — this is the class the
    /// harness-level livelock watchdog exists to catch.
    pub wedge_guard: f64,
}

impl FaultPlan {
    /// The disabled plan: nothing is ever injected.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            lose_wakeup: 0.0,
            delay_wakeup: 0.0,
            delay_wakeup_mean_ns: 0.0,
            timer_drift: 0.0,
            timer_drift_frac: 0.0,
            spurious_fire: 0.0,
            oversleep: 0.0,
            oversleep_mean_ns: 0.0,
            delay_unpark: 0.0,
            delay_unpark_mean_ns: 0.0,
            wedge_guard: 0.0,
        }
    }

    /// Whether any fault class can fire under this plan.
    pub fn enabled(&self) -> bool {
        [
            self.lose_wakeup,
            self.delay_wakeup,
            self.timer_drift,
            self.spurious_fire,
            self.oversleep,
            self.delay_unpark,
            self.wedge_guard,
        ]
        .iter()
        .any(|&p| p > 0.0)
    }

    /// The named scenarios of the fault-matrix sweep, in table order.
    pub fn scenario_names() -> &'static [&'static str] {
        &[
            "none",
            "lost-wakeup",
            "late-wakeup",
            "timer-drift",
            "spurious-timer",
            "oversleep",
            "storm",
            "hang",
        ]
    }

    /// Looks up a named scenario (case-insensitive), seeding its streams
    /// from `seed`.
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        let base = FaultPlan {
            seed,
            ..FaultPlan::none()
        };
        let plan = match name.to_ascii_lowercase().as_str() {
            "none" => FaultPlan::none(),
            "lost-wakeup" => FaultPlan {
                lose_wakeup: 0.25,
                ..base
            },
            "late-wakeup" => FaultPlan {
                delay_wakeup: 0.5,
                delay_wakeup_mean_ns: 50_000.0,
                ..base
            },
            "timer-drift" => FaultPlan {
                timer_drift: 0.5,
                timer_drift_frac: 0.5,
                ..base
            },
            "spurious-timer" => FaultPlan {
                spurious_fire: 0.25,
                ..base
            },
            "oversleep" => FaultPlan {
                oversleep: 0.25,
                oversleep_mean_ns: 50_000.0,
                ..base
            },
            "storm" => FaultPlan {
                lose_wakeup: 0.15,
                delay_wakeup: 0.25,
                delay_wakeup_mean_ns: 50_000.0,
                timer_drift: 0.25,
                timer_drift_frac: 0.5,
                spurious_fire: 0.15,
                oversleep: 0.15,
                oversleep_mean_ns: 50_000.0,
                delay_unpark: 0.25,
                delay_unpark_mean_ns: 50_000.0,
                ..base
            },
            // Adversarial liveness scenario: lost wake-ups force threads
            // onto the guard-timer path, and every firing guard wedges, so
            // the first lost wake-up livelocks the cell. Exists to exercise
            // the harness watchdog, not the barrier's own hardening.
            "hang" => FaultPlan {
                lose_wakeup: 0.35,
                wedge_guard: 1.0,
                ..base
            },
            _ => return None,
        };
        Some(plan)
    }
}

/// Everything that parameterizes the thrifty-barrier algorithm.
#[derive(Debug, Clone)]
pub struct AlgorithmConfig {
    /// `false` = conventional spin barrier (Baseline).
    pub thrifty: bool,
    /// Predictor variant.
    pub predictor: PredictorChoice,
    /// Available sleep states.
    pub sleep_table: SleepTable,
    /// Wake-up mechanism.
    pub wakeup: WakeupMode,
    /// Profitability margin: predicted stall must exceed this multiple of
    /// a state's round-trip transition latency.
    pub min_stall_multiple: f64,
    /// §3.3.3 cut-off as a fraction of BIT; `None` disables it.
    pub overprediction_threshold: Option<f64>,
    /// §3.4.2 filter: measured BITs larger than this factor × the table
    /// entry are not installed; `None` disables it.
    pub underprediction_factor: Option<f64>,
    /// Whether deep-sleep cache flushes cost time/energy (`false` only for
    /// Ideal).
    pub flush_overhead: bool,
    /// Internal-timer anticipation margin (§3.3.2): the timer starts the
    /// exit transition this much *before* `predicted release − exit
    /// latency`, trading a little residual spin for keeping the exit
    /// latency off the critical path when the prediction is exact.
    pub wakeup_anticipation: tb_sim::Cycles,
    /// Predictor quarantine (fault hardening): `None` disables it, which
    /// is the default so clean runs are untouched.
    pub quarantine: Option<QuarantineConfig>,
}

impl AlgorithmConfig {
    /// Conventional sense-reversal spin barrier.
    pub fn baseline() -> Self {
        AlgorithmConfig {
            thrifty: false,
            predictor: PredictorChoice::LastValue,
            sleep_table: SleepTable::paper(),
            wakeup: WakeupMode::Hybrid,
            min_stall_multiple: 2.0,
            overprediction_threshold: Some(0.10),
            underprediction_factor: Some(8.0),
            flush_overhead: true,
            wakeup_anticipation: tb_sim::Cycles::from_micros(3),
            quarantine: None,
        }
    }

    /// The full thrifty barrier: all of Table 3, last-value prediction,
    /// hybrid wake-up, 10 % cut-off.
    pub fn thrifty() -> Self {
        AlgorithmConfig {
            thrifty: true,
            ..AlgorithmConfig::baseline()
        }
    }

    /// Thrifty with Halt as the only sleep state.
    pub fn thrifty_halt() -> Self {
        AlgorithmConfig {
            sleep_table: SleepTable::halt_only(),
            ..AlgorithmConfig::thrifty()
        }
    }

    /// Thrifty-Halt with perfect BIT prediction.
    pub fn oracle_halt() -> Self {
        AlgorithmConfig {
            predictor: PredictorChoice::Oracle,
            ..AlgorithmConfig::thrifty_halt()
        }
    }

    /// Perfect prediction, all sleep states, and no flushing overhead.
    pub fn ideal() -> Self {
        AlgorithmConfig {
            predictor: PredictorChoice::Oracle,
            flush_overhead: false,
            ..AlgorithmConfig::thrifty()
        }
    }

    /// Returns a copy with a different wake-up mode (ablation A1).
    pub fn with_wakeup(mut self, mode: WakeupMode) -> Self {
        self.wakeup = mode;
        self
    }

    /// Returns a copy with a different (or disabled) overprediction
    /// cut-off (experiment E8).
    pub fn with_overprediction_threshold(mut self, threshold: Option<f64>) -> Self {
        self.overprediction_threshold = threshold;
        self
    }

    /// Returns a copy with a different predictor (ablation A2).
    pub fn with_predictor(mut self, predictor: PredictorChoice) -> Self {
        self.predictor = predictor;
        self
    }

    /// Returns a copy with predictor quarantine enabled (fault hardening).
    pub fn with_quarantine(mut self, quarantine: Option<QuarantineConfig>) -> Self {
        self.quarantine = quarantine;
        self
    }
}

/// The five named configurations of Figures 5 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemConfig {
    /// Conventional barriers.
    Baseline,
    /// Thrifty with Halt only.
    ThriftyHalt,
    /// Thrifty-Halt with perfect BIT prediction.
    OracleHalt,
    /// The full thrifty barrier.
    Thrifty,
    /// Perfect prediction and free flushes (lower bound).
    Ideal,
}

impl SystemConfig {
    /// All five, in the figures' bar order.
    pub const ALL: [SystemConfig; 5] = [
        SystemConfig::Baseline,
        SystemConfig::ThriftyHalt,
        SystemConfig::OracleHalt,
        SystemConfig::Thrifty,
        SystemConfig::Ideal,
    ];

    /// The single-letter label used in the figures (B, H, O, T, I).
    pub fn letter(self) -> char {
        match self {
            SystemConfig::Baseline => 'B',
            SystemConfig::ThriftyHalt => 'H',
            SystemConfig::OracleHalt => 'O',
            SystemConfig::Thrifty => 'T',
            SystemConfig::Ideal => 'I',
        }
    }

    /// Full name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            SystemConfig::Baseline => "Baseline",
            SystemConfig::ThriftyHalt => "Thrifty-Halt",
            SystemConfig::OracleHalt => "Oracle-Halt",
            SystemConfig::Thrifty => "Thrifty",
            SystemConfig::Ideal => "Ideal",
        }
    }

    /// Whether this configuration needs a recorded oracle trace.
    pub fn needs_oracle(self) -> bool {
        matches!(self, SystemConfig::OracleHalt | SystemConfig::Ideal)
    }

    /// The algorithm configuration implementing this system.
    pub fn algorithm_config(self) -> AlgorithmConfig {
        match self {
            SystemConfig::Baseline => AlgorithmConfig::baseline(),
            SystemConfig::ThriftyHalt => AlgorithmConfig::thrifty_halt(),
            SystemConfig::OracleHalt => AlgorithmConfig::oracle_halt(),
            SystemConfig::Thrifty => AlgorithmConfig::thrifty(),
            SystemConfig::Ideal => AlgorithmConfig::ideal(),
        }
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_match_figures() {
        let letters: String = SystemConfig::ALL.iter().map(|c| c.letter()).collect();
        assert_eq!(letters, "BHOTI");
    }

    #[test]
    fn baseline_is_not_thrifty() {
        assert!(!AlgorithmConfig::baseline().thrifty);
        assert!(AlgorithmConfig::thrifty().thrifty);
    }

    #[test]
    fn halt_configs_have_one_state() {
        assert_eq!(
            SystemConfig::ThriftyHalt
                .algorithm_config()
                .sleep_table
                .len(),
            1
        );
        assert_eq!(
            SystemConfig::OracleHalt
                .algorithm_config()
                .sleep_table
                .len(),
            1
        );
        assert_eq!(
            SystemConfig::Thrifty.algorithm_config().sleep_table.len(),
            3
        );
    }

    #[test]
    fn oracle_flags() {
        assert!(SystemConfig::OracleHalt.needs_oracle());
        assert!(SystemConfig::Ideal.needs_oracle());
        assert!(!SystemConfig::Thrifty.needs_oracle());
        assert_eq!(
            SystemConfig::Ideal.algorithm_config().predictor,
            PredictorChoice::Oracle
        );
    }

    #[test]
    fn ideal_waives_flush_overhead() {
        assert!(!SystemConfig::Ideal.algorithm_config().flush_overhead);
        assert!(SystemConfig::Thrifty.algorithm_config().flush_overhead);
    }

    #[test]
    fn builder_knobs() {
        let c = AlgorithmConfig::thrifty()
            .with_wakeup(WakeupMode::ExternalOnly)
            .with_overprediction_threshold(None)
            .with_predictor(PredictorChoice::Averaging(0.5));
        assert_eq!(c.wakeup, WakeupMode::ExternalOnly);
        assert_eq!(c.overprediction_threshold, None);
        assert!(matches!(c.predictor, PredictorChoice::Averaging(_)));
    }

    #[test]
    fn fault_plan_scenarios_resolve() {
        assert!(!FaultPlan::none().enabled());
        for &name in FaultPlan::scenario_names() {
            let plan = FaultPlan::by_name(name, 42).unwrap_or_else(|| panic!("{name} resolves"));
            assert_eq!(plan.enabled(), name != "none", "{name}");
        }
        assert!(
            FaultPlan::by_name("LOST-WAKEUP", 1).is_some(),
            "case-insensitive"
        );
        assert!(FaultPlan::by_name("no-such-scenario", 1).is_none());
        let storm = FaultPlan::by_name("storm", 7).unwrap();
        assert_eq!(storm.seed, 7);
        assert!(storm.lose_wakeup > 0.0 && storm.oversleep > 0.0 && storm.delay_unpark > 0.0);
    }

    #[test]
    fn quarantine_defaults() {
        assert!(AlgorithmConfig::thrifty().quarantine.is_none());
        let q = QuarantineConfig::default();
        assert_eq!(q.consecutive, 3);
        let c = AlgorithmConfig::thrifty().with_quarantine(Some(q));
        assert_eq!(c.quarantine, Some(q));
    }

    #[test]
    fn names_and_display() {
        assert_eq!(SystemConfig::Thrifty.to_string(), "Thrifty");
        assert_eq!(SystemConfig::OracleHalt.name(), "Oracle-Halt");
        assert_eq!(PredictorChoice::LastValue.to_string(), "last-value");
        assert!(PredictorChoice::Averaging(0.25)
            .to_string()
            .contains("0.25"));
    }
}
