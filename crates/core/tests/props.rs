//! Property-based tests of the thrifty-barrier algorithm invariants.

use proptest::prelude::*;
use tb_core::{
    AlgorithmConfig, BarrierAlgorithm, BarrierPc, BitPredictor, LastValuePredictor, SleepPolicy,
    ThreadId, ThreadTiming,
};
use tb_energy::SleepTable;
use tb_sim::Cycles;

proptest! {
    /// best_fit returns the deepest state whose scaled round trip fits;
    /// every deeper state must not fit, and the chosen one must.
    #[test]
    fn best_fit_is_deepest_that_fits(
        stall_us in 0u64..1_000,
        margin in 1.0f64..4.0,
    ) {
        let table = SleepTable::paper();
        let stall = Cycles::from_micros(stall_us);
        match table.best_fit(stall, margin) {
            Some(id) => {
                prop_assert!(table.state(id).round_trip().scale(margin) <= stall);
                for deeper in id.index() + 1..table.len() {
                    let s = table.iter().nth(deeper).unwrap();
                    prop_assert!(
                        s.round_trip().scale(margin) > stall,
                        "a deeper state also fits"
                    );
                }
            }
            None => {
                for s in &table {
                    prop_assert!(s.round_trip().scale(margin) > stall);
                }
            }
        }
    }

    /// best_fit is monotone: a longer stall never selects a shallower
    /// state.
    #[test]
    fn best_fit_monotone_in_stall(a_us in 0u64..2_000, b_us in 0u64..2_000) {
        let table = SleepTable::paper();
        let (lo, hi) = (a_us.min(b_us), a_us.max(b_us));
        let s_lo = table.best_fit(Cycles::from_micros(lo), 2.0).map(|i| i.index());
        let s_hi = table.best_fit(Cycles::from_micros(hi), 2.0).map(|i| i.index());
        match (s_lo, s_hi) {
            (Some(a), Some(b)) => prop_assert!(a <= b),
            (Some(_), None) => prop_assert!(false, "longer stall lost its state"),
            _ => {}
        }
    }

    /// BRTS induction: after any sequence of published BITs, every
    /// thread's BRTS equals their running sum, and the last thread's
    /// measured BIT reconstructs the published value exactly.
    #[test]
    fn brts_induction_sums(bits_us in proptest::collection::vec(1u64..100_000, 1..40)) {
        let mut timing = ThreadTiming::new();
        let mut sum = Cycles::ZERO;
        for &b in &bits_us {
            let bit = Cycles::from_micros(b);
            sum += bit;
            // The releaser arriving exactly at the release measures the BIT.
            prop_assert_eq!(timing.measure_bit(sum), bit);
            prop_assert_eq!(timing.advance(bit), sum);
            prop_assert_eq!(timing.brts(), sum);
        }
    }

    /// The arrival estimate decomposes exactly: compute + predicted stall
    /// equals predicted BIT whenever the thread arrives before the
    /// predicted release.
    #[test]
    fn estimate_decomposition(
        brts_us in 0u64..100_000,
        compute_us in 0u64..50_000,
        predicted_us in 0u64..100_000,
    ) {
        let mut timing = ThreadTiming::new();
        timing.advance(Cycles::from_micros(brts_us));
        let now = Cycles::from_micros(brts_us + compute_us);
        let e = timing.estimate(now, Cycles::from_micros(predicted_us));
        prop_assert_eq!(e.compute_time, Cycles::from_micros(compute_us));
        if compute_us <= predicted_us {
            prop_assert_eq!(
                e.compute_time + e.predicted_stall,
                Cycles::from_micros(predicted_us)
            );
        } else {
            prop_assert_eq!(e.predicted_stall, Cycles::ZERO);
        }
    }

    /// Overprediction penalties are never negative and equal the late
    /// part of the wake-up exactly.
    #[test]
    fn penalty_is_late_part(brts_us in 0u64..100_000, wake_us in 0u64..200_000) {
        let mut timing = ThreadTiming::new();
        timing.advance(Cycles::from_micros(brts_us));
        let penalty = timing.overprediction_penalty(Cycles::from_micros(wake_us));
        if wake_us > brts_us {
            prop_assert_eq!(penalty, Cycles::from_micros(wake_us - brts_us));
        } else {
            prop_assert_eq!(penalty, Cycles::ZERO);
        }
    }

    /// Last-value prediction returns exactly the last accepted update,
    /// and disable bits are sticky and thread-local.
    #[test]
    fn last_value_returns_last_accepted(
        updates_us in proptest::collection::vec(1u64..1_000_000, 1..30),
        disable_thread in 0usize..8,
    ) {
        let pc = BarrierPc::new(0x10);
        let mut p = LastValuePredictor::new(8, None);
        let mut last = None;
        for (i, &u) in updates_us.iter().enumerate() {
            p.update(pc, i as u64, Cycles::from_micros(u));
            last = Some(Cycles::from_micros(u));
        }
        for t in 0..8 {
            prop_assert_eq!(p.predict(pc, 99, ThreadId::new(t)), last);
        }
        p.disable(pc, ThreadId::new(disable_thread));
        for t in 0..8 {
            let expected = if t == disable_thread { None } else { last };
            prop_assert_eq!(p.predict(pc, 99, ThreadId::new(t)), expected);
        }
    }

    /// The filtered predictor never installs a measurement more than
    /// `factor` times the current entry.
    #[test]
    fn underprediction_filter_bounds_growth(
        updates_us in proptest::collection::vec(1u64..10_000_000, 2..40),
        factor in 1.5f64..16.0,
    ) {
        let pc = BarrierPc::new(0x20);
        let mut p = LastValuePredictor::new(2, Some(factor));
        let mut entry: Option<u64> = None;
        for (i, &u) in updates_us.iter().enumerate() {
            let outcome = p.update(pc, i as u64, Cycles::from_micros(u));
            match entry {
                Some(prev) if (u as f64) > (prev as f64) * factor => {
                    prop_assert_eq!(outcome, tb_core::UpdateOutcome::SkippedInordinate);
                }
                _ => {
                    prop_assert_eq!(outcome, tb_core::UpdateOutcome::Applied);
                    entry = Some(u);
                }
            }
            prop_assert_eq!(
                p.predict(pc, i as u64 + 1, ThreadId::new(0)),
                entry.map(Cycles::from_micros)
            );
        }
    }

    /// A full algorithm episode driven with arbitrary (ordered) arrival
    /// times keeps every invariant: the measured BIT equals release minus
    /// previous release, all threads end with identical BRTS, and sleep
    /// decisions only fire with enough predicted stall.
    #[test]
    fn algorithm_episodes_maintain_invariants(
        episode_arrivals in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000, 4),
            2..12,
        ),
    ) {
        let threads = 4;
        let pc = BarrierPc::new(0x33);
        let mut algo = BarrierAlgorithm::new(AlgorithmConfig::thrifty(), threads);
        let policy = SleepPolicy::paper();
        let mut release = Cycles::ZERO;
        for offsets in &episode_arrivals {
            // Arrival times: release + per-thread offset; the largest
            // offset arrives last.
            let mut order: Vec<usize> = (0..threads).collect();
            order.sort_by_key(|&t| offsets[t]);
            let last = *order.last().unwrap();
            for &t in &order[..threads - 1] {
                let now = release + Cycles::from_micros(offsets[t]);
                let d = algo.on_early_arrival(ThreadId::new(t), pc, now);
                if let tb_core::SleepChoice::Sleep { state, .. } = d.choice {
                    let stall = d.predicted_stall.expect("sleeping needs a prediction");
                    prop_assert!(
                        policy.table().state(state).round_trip().scale(2.0) <= stall
                    );
                }
            }
            let last_now = release + Cycles::from_micros(offsets[last]);
            let rel = algo.on_last_arrival(ThreadId::new(last), pc, last_now);
            prop_assert_eq!(rel.measured_bit, last_now - release);
            release = last_now;
            for t in 0..threads {
                let f = algo.finish_barrier(ThreadId::new(t), pc, release);
                prop_assert_eq!(f.new_brts, release);
                prop_assert_eq!(f.penalty, Cycles::ZERO, "on-time wake has no penalty");
            }
            for t in 0..threads {
                prop_assert_eq!(algo.brts(ThreadId::new(t)), release);
            }
        }
    }
}
