//! The ten SPLASH-2 application models (Table 2 of the paper).
//!
//! Each model reproduces the statistics the thrifty barrier is sensitive
//! to, with per-app quirks taken from the paper's text:
//!
//! * **Volrend** — the most imbalanced application (48.2 %), with large
//!   barrier interval times; the ideal scenario for deep sleep states
//!   (§5.2: "the application that benefits the most from deeper sleep
//!   states is Volrend").
//! * **Radix, FMM, Barnes, Water-Nsq** — the remaining *target*
//!   applications (imbalance ≥ 10 %). FMM's three main-loop barriers have
//!   distinct interval times, the structure plotted in Figure 3.
//! * **Water-Sp, Radiosity** — well balanced; thrifty ≈ baseline.
//! * **Ocean** — many frequently-invoked barriers whose interval times
//!   "can swing significantly across instances" (§5.2), defeating
//!   last-value prediction; the application that needs the §3.3.3 cut-off.
//! * **FFT, Cholesky** — "only a handful of non-repeating barriers, which
//!   leaves Thrifty's PC-indexed predictor unused" (§5.1); thrifty behaves
//!   exactly like baseline.
//!
//! Dirty-line footprints are largest for FMM, Water-Nsq, and Ocean, the
//! three applications whose Compute segment visibly grows under deep
//! sleep states in Figure 5 ("mainly due to cache flush overheads").

use crate::spec::{AppSpec, PhaseSpec, Variability};
use tb_sim::Cycles;

fn stable(jitter: f64) -> Variability {
    Variability::Stable { jitter }
}

fn phases(base_pc: u64, specs: &[(u64, u32, Variability)]) -> Vec<PhaseSpec> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(us, dirty, var))| {
            PhaseSpec::new(base_pc + i as u64, Cycles::from_micros(us), dirty, var)
        })
        .collect()
}

impl AppSpec {
    /// All ten applications, in Table 2's order (descending barrier
    /// imbalance).
    pub fn splash2() -> Vec<AppSpec> {
        vec![
            AppSpec::volrend(),
            AppSpec::radix(),
            AppSpec::fmm(),
            AppSpec::barnes(),
            AppSpec::water_nsq(),
            AppSpec::water_sp(),
            AppSpec::ocean(),
            AppSpec::fft(),
            AppSpec::cholesky(),
            AppSpec::radiosity(),
        ]
    }

    /// Looks an application up by its Table 2 name.
    pub fn by_name(name: &str) -> Option<AppSpec> {
        AppSpec::splash2().into_iter().find(|a| a.name == name)
    }

    /// The five *target* applications (imbalance ≥ 10 %).
    pub fn targets() -> Vec<AppSpec> {
        AppSpec::splash2()
            .into_iter()
            .filter(|a| a.is_target())
            .collect()
    }

    /// Volrend: volume rendering, `head` input. Highly imbalanced ray
    /// work, long frames.
    pub fn volrend() -> AppSpec {
        AppSpec {
            name: "Volrend".into(),
            problem_size: "head".into(),
            target_imbalance: 0.4820,
            setup_phases: phases(0x1100, &[(9000, 32, stable(0.02))]),
            loop_phases: phases(
                0x1200,
                &[(42000, 48, stable(0.03)), (26000, 48, stable(0.03))],
            ),
            iterations: 24,
            skew: 3.0,
        }
    }

    /// Radix: parallel radix sort, 1M integers, radix 1024.
    pub fn radix() -> AppSpec {
        AppSpec {
            name: "Radix".into(),
            problem_size: "1M integers, radix 1,024".into(),
            setup_phases: phases(0x2100, &[(5000, 32, stable(0.02))]),
            loop_phases: phases(
                0x2200,
                &[
                    (7000, 64, stable(0.02)),
                    (9000, 64, stable(0.02)),
                    (5000, 32, stable(0.02)),
                    (8000, 64, stable(0.02)),
                ],
            ),
            iterations: 18,
            target_imbalance: 0.1950,
            skew: 2.0,
        }
    }

    /// FMM: fast multipole n-body, 16k particles. The Figure 3 subject:
    /// three main-loop barriers with clearly distinct interval times.
    pub fn fmm() -> AppSpec {
        AppSpec {
            name: "FMM".into(),
            problem_size: "16k particles, 8 time steps".into(),
            setup_phases: phases(0x3100, &[(7000, 64, stable(0.02))]),
            loop_phases: phases(
                0x3200,
                &[
                    (6000, 192, stable(0.03)),
                    (18000, 192, stable(0.03)),
                    (10000, 128, stable(0.03)),
                ],
            ),
            iterations: 32,
            target_imbalance: 0.1656,
            skew: 2.0,
        }
    }

    /// Barnes: Barnes-Hut n-body, 16k particles. Work drifts slowly as the
    /// bodies cluster.
    pub fn barnes() -> AppSpec {
        AppSpec {
            name: "Barnes".into(),
            problem_size: "16k particles, 8 time steps".into(),
            setup_phases: phases(0x4100, &[(6000, 48, stable(0.02))]),
            loop_phases: phases(
                0x4200,
                &[
                    (
                        13000,
                        96,
                        Variability::Drift {
                            per_iter: 0.004,
                            jitter: 0.03,
                        },
                    ),
                    (8000, 64, stable(0.03)),
                    (10000, 64, stable(0.03)),
                ],
            ),
            iterations: 24,
            target_imbalance: 0.1593,
            skew: 2.0,
        }
    }

    /// Water-Nsq: O(n²) molecular dynamics, 512 molecules. Large dirty
    /// working set per phase (pairwise force updates).
    pub fn water_nsq() -> AppSpec {
        AppSpec {
            name: "Water-Nsq".into(),
            problem_size: "512 molecules, 12 time steps".into(),
            setup_phases: phases(0x5100, &[(5000, 64, stable(0.02))]),
            loop_phases: phases(
                0x5200,
                &[
                    (14000, 256, stable(0.02)),
                    (9000, 192, stable(0.02)),
                    (11000, 128, stable(0.02)),
                ],
            ),
            iterations: 24,
            target_imbalance: 0.1290,
            skew: 2.0,
        }
    }

    /// Water-Sp: spatial-decomposition molecular dynamics; better balanced
    /// than Water-Nsq.
    pub fn water_sp() -> AppSpec {
        AppSpec {
            name: "Water-Sp".into(),
            problem_size: "512 molecules, 12 time steps".into(),
            setup_phases: phases(0x6100, &[(5000, 48, stable(0.02))]),
            loop_phases: phases(
                0x6200,
                &[
                    (11000, 96, stable(0.02)),
                    (8000, 64, stable(0.02)),
                    (9000, 64, stable(0.02)),
                ],
            ),
            iterations: 24,
            target_imbalance: 0.0979,
            skew: 2.0,
        }
    }

    /// Ocean: grid-based ocean currents, 514×514. Many short, frequently
    /// invoked barriers whose interval times swing bimodally — the
    /// workload that punishes overprediction (§5.2).
    pub fn ocean() -> AppSpec {
        // Short, frequently-invoked barriers: most instances drop to
        // ~100-160 µs, where an exposed exit transition (up to 35 µs) is a
        // double-digit fraction of the interval — the regime in which
        // §3.3.3's cut-off earns its keep.
        let swing = Variability::Swing {
            low_scale: 0.18,
            low_prob: 0.55,
            jitter: 0.04,
        };
        AppSpec {
            name: "Ocean".into(),
            problem_size: "514 by 514 ocean".into(),
            setup_phases: phases(0x7100, &[(400, 64, stable(0.02))]),
            loop_phases: phases(
                0x7200,
                &[
                    (900, 192, swing),
                    (600, 128, swing),
                    (750, 128, swing),
                    (500, 96, swing),
                    (850, 128, swing),
                    (650, 96, swing),
                ],
            ),
            iterations: 28,
            target_imbalance: 0.0760,
            skew: 2.0,
        }
    }

    /// FFT: six one-shot transpose/compute steps; every barrier site
    /// executes exactly once, so PC-indexed prediction never has history.
    pub fn fft() -> AppSpec {
        AppSpec {
            name: "FFT".into(),
            problem_size: "64k points".into(),
            setup_phases: phases(
                0x8100,
                &[
                    (5000, 64, stable(0.02)),
                    (8000, 96, stable(0.02)),
                    (7000, 96, stable(0.02)),
                    (8000, 96, stable(0.02)),
                    (6000, 64, stable(0.02)),
                    (5000, 64, stable(0.02)),
                ],
            ),
            loop_phases: vec![],
            iterations: 0,
            target_imbalance: 0.0382,
            skew: 2.0,
        }
    }

    /// Cholesky: sparse factorization, tk15; a handful of non-repeating
    /// barriers around task-queue phases.
    pub fn cholesky() -> AppSpec {
        AppSpec {
            name: "Cholesky".into(),
            problem_size: "tk15".into(),
            setup_phases: phases(
                0x9100,
                &[
                    (7000, 64, stable(0.02)),
                    (12000, 96, stable(0.02)),
                    (9000, 64, stable(0.02)),
                    (8000, 64, stable(0.02)),
                    (6000, 48, stable(0.02)),
                ],
            ),
            loop_phases: vec![],
            iterations: 0,
            target_imbalance: 0.0164,
            skew: 2.0,
        }
    }

    /// Radiosity: task-stealing global illumination; nearly perfectly
    /// balanced.
    pub fn radiosity() -> AppSpec {
        AppSpec {
            name: "Radiosity".into(),
            problem_size: "room -ae 5000.0 -en 0.05 -bf 0.1".into(),
            setup_phases: phases(0xa100, &[(5000, 32, stable(0.02))]),
            loop_phases: phases(
                0xa200,
                &[(8000, 48, stable(0.02)), (7000, 48, stable(0.02))],
            ),
            iterations: 22,
            target_imbalance: 0.0104,
            skew: 1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ten_apps_in_table2_order() {
        let apps = AppSpec::splash2();
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Volrend",
                "Radix",
                "FMM",
                "Barnes",
                "Water-Nsq",
                "Water-Sp",
                "Ocean",
                "FFT",
                "Cholesky",
                "Radiosity"
            ]
        );
        // Descending imbalance, as in Table 2.
        for w in apps.windows(2) {
            assert!(w[0].target_imbalance > w[1].target_imbalance);
        }
    }

    #[test]
    fn table2_imbalance_values() {
        let get = |n: &str| AppSpec::by_name(n).unwrap().target_imbalance;
        assert_eq!(get("Volrend"), 0.4820);
        assert_eq!(get("Radix"), 0.1950);
        assert_eq!(get("FMM"), 0.1656);
        assert_eq!(get("Barnes"), 0.1593);
        assert_eq!(get("Water-Nsq"), 0.1290);
        assert_eq!(get("Water-Sp"), 0.0979);
        assert_eq!(get("Ocean"), 0.0760);
        assert_eq!(get("FFT"), 0.0382);
        assert_eq!(get("Cholesky"), 0.0164);
        assert_eq!(get("Radiosity"), 0.0104);
    }

    #[test]
    fn exactly_five_targets() {
        let targets = AppSpec::targets();
        assert_eq!(targets.len(), 5);
        assert!(targets.iter().all(|a| a.target_imbalance >= 0.10));
        assert_eq!(targets[0].name, "Volrend");
        assert_eq!(targets[4].name, "Water-Nsq");
    }

    #[test]
    fn all_specs_validate() {
        for app in AppSpec::splash2() {
            app.validate();
        }
    }

    #[test]
    fn pcs_globally_unique_across_apps() {
        let mut seen = HashSet::new();
        for app in AppSpec::splash2() {
            for p in app.setup_phases.iter().chain(&app.loop_phases) {
                assert!(seen.insert(p.pc), "duplicate pc {:#x}", p.pc);
            }
        }
    }

    #[test]
    fn fft_and_cholesky_have_only_one_shot_barriers() {
        for name in ["FFT", "Cholesky"] {
            let app = AppSpec::by_name(name).unwrap();
            assert!(
                app.loop_phases.is_empty(),
                "{name} must not repeat barriers"
            );
            assert!(
                app.setup_phases.len() >= 5,
                "{name} has a handful of barriers"
            );
        }
    }

    #[test]
    fn ocean_swings_and_others_do_not() {
        let ocean = AppSpec::by_name("Ocean").unwrap();
        assert!(ocean
            .loop_phases
            .iter()
            .all(|p| matches!(p.variability, Variability::Swing { .. })));
        let fmm = AppSpec::by_name("FMM").unwrap();
        assert!(fmm
            .loop_phases
            .iter()
            .all(|p| matches!(p.variability, Variability::Stable { .. })));
    }

    #[test]
    fn fmm_has_three_distinct_loop_barriers_for_figure3() {
        let fmm = AppSpec::by_name("FMM").unwrap();
        assert_eq!(fmm.loop_phases.len(), 3);
        let intervals: HashSet<u64> = fmm
            .loop_phases
            .iter()
            .map(|p| p.base_interval.as_u64())
            .collect();
        assert_eq!(intervals.len(), 3, "Figure 3 needs distinct BITs");
    }

    #[test]
    fn volrend_has_large_intervals() {
        let volrend = AppSpec::by_name("Volrend").unwrap();
        let max = volrend
            .loop_phases
            .iter()
            .map(|p| p.base_interval)
            .max()
            .unwrap();
        assert!(max >= tb_sim::Cycles::from_millis(4));
    }

    #[test]
    fn flush_heavy_apps_have_big_dirty_footprints() {
        for name in ["FMM", "Water-Nsq", "Ocean"] {
            let app = AppSpec::by_name(name).unwrap();
            let max_dirty = app.loop_phases.iter().map(|p| p.dirty_lines).max().unwrap();
            assert!(max_dirty >= 128, "{name} should stress the flush path");
        }
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(
            AppSpec::by_name("Raytrace").is_none(),
            "excluded by the paper"
        );
        assert!(AppSpec::by_name("LU").is_none(), "excluded by the paper");
    }

    #[test]
    fn calibration_hits_table2_for_every_app() {
        // The headline property of the workload substrate: measured
        // baseline imbalance matches Table 2 within a small tolerance.
        for app in AppSpec::splash2() {
            let trace = app.generate(64, 42);
            let got = trace.analytic_imbalance();
            assert!(
                (got - app.target_imbalance).abs() < 0.01,
                "{}: imbalance {:.4} vs Table 2 {:.4}",
                app.name,
                got,
                app.target_imbalance
            );
        }
    }
}
