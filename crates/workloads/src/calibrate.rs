//! Calibration of the imbalance spread.
//!
//! For each application we must choose the work-spread `w` so that the
//! generated trace's *measured* baseline barrier imbalance equals the
//! paper's Table 2 value. The mapping `w → imbalance` is monotone (more
//! spread, more stall) and continuous for a fixed random stream, so a
//! simple bisection over `w ∈ [0, 1)` converges quickly. The measurement
//! used during calibration is [`crate::AppTrace::analytic_imbalance`],
//! which matches the full machine simulation to well under a percentage
//! point because barrier entry/exit overheads are microseconds against
//! millisecond intervals.

use crate::spec::AppSpec;

/// Upper bound of the spread parameter (exclusive); at `w → 1` every
/// thread's work goes to zero except the stragglers'.
const W_MAX: f64 = 0.999;

/// Bisection iterations; 40 halvings of `[0,1]` reach ~1e-12 resolution.
const ITERATIONS: u32 = 40;

/// Solves the spread `w` for which the generated trace's imbalance matches
/// `spec.target_imbalance`.
///
/// # Panics
///
/// Panics if the target is unreachable even at the maximum spread (the
/// spec validation bounds make this impossible for sane skews, but a
/// pathological spec with `skew` enormous could trip it).
pub fn calibrate_spread(spec: &AppSpec, threads: usize, seed: u64) -> f64 {
    let imbalance_at = |w: f64| {
        spec.generate_with_spread(threads, seed, w)
            .analytic_imbalance()
    };
    let target = spec.target_imbalance;
    let at_max = imbalance_at(W_MAX);
    assert!(
        at_max >= target,
        "{}: target imbalance {target:.3} unreachable (max {at_max:.3}); \
         reduce skew or target",
        spec.name
    );
    let (mut lo, mut hi) = (0.0_f64, W_MAX);
    for _ in 0..ITERATIONS {
        let mid = 0.5 * (lo + hi);
        if imbalance_at(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PhaseSpec, Variability};
    use tb_sim::Cycles;

    fn spec(target: f64) -> AppSpec {
        AppSpec {
            name: "Cal".into(),
            problem_size: "x".into(),
            target_imbalance: target,
            setup_phases: vec![],
            loop_phases: vec![PhaseSpec::new(
                1,
                Cycles::from_micros(1000),
                0,
                Variability::Stable { jitter: 0.0 },
            )],
            iterations: 30,
            skew: 2.0,
        }
    }

    #[test]
    fn hits_low_and_high_targets() {
        for target in [0.01, 0.05, 0.16, 0.30, 0.482] {
            let s = spec(target);
            let w = calibrate_spread(&s, 64, 11);
            let got = s.generate_with_spread(64, 11, w).analytic_imbalance();
            assert!(
                (got - target).abs() < 0.005,
                "target {target}: got {got} at w={w}"
            );
        }
    }

    #[test]
    fn spread_grows_with_target() {
        let w_small = calibrate_spread(&spec(0.05), 32, 3);
        let w_large = calibrate_spread(&spec(0.30), 32, 3);
        assert!(w_small < w_large);
    }

    #[test]
    fn calibration_is_thread_count_aware() {
        // The same target should be achievable at different machine sizes.
        for threads in [16, 32, 64] {
            let s = spec(0.20);
            let w = calibrate_spread(&s, threads, 5);
            let got = s.generate_with_spread(threads, 5, w).analytic_imbalance();
            assert!((got - 0.20).abs() < 0.01, "threads={threads}: {got}");
        }
    }
}
