//! Application and phase descriptions.
//!
//! An application is a sequence of *setup* phases (each ending at a unique,
//! non-repeating barrier site) followed by a main loop of phases whose
//! barrier sites repeat every iteration — the SPMD structure §3.2 of the
//! paper exploits for PC-indexed prediction.

use serde::{Deserialize, Serialize};
use std::fmt;
use tb_sim::Cycles;

/// How a phase's interval time varies across dynamic instances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Variability {
    /// Stable interval with small multiplicative Gaussian jitter
    /// (`scale = 1 + jitter·N(0,1)`, clamped). Last-value prediction works
    /// well here.
    Stable {
        /// Standard deviation of the multiplicative jitter (e.g. 0.03).
        jitter: f64,
    },
    /// Bimodal swings: with probability `low_prob` an instance shrinks to
    /// `low_scale` of the base. This is Ocean's pattern (§5.2): last-value
    /// prediction "overkills" after a long instance is followed by a short
    /// one.
    Swing {
        /// Interval multiplier of the short mode (e.g. 0.12).
        low_scale: f64,
        /// Probability of the short mode per instance.
        low_prob: f64,
        /// Residual jitter applied on top.
        jitter: f64,
    },
    /// Slow multiplicative drift across iterations (`scale = (1 +
    /// per_iter)^iteration`), as work grows or shrinks over time steps.
    Drift {
        /// Per-iteration growth rate (may be negative).
        per_iter: f64,
        /// Residual jitter applied on top.
        jitter: f64,
    },
}

impl Variability {
    /// The deterministic part of the instance scale (jitter excluded).
    pub fn base_scale(&self, iteration: u32, is_low: bool) -> f64 {
        match *self {
            Variability::Stable { .. } => 1.0,
            Variability::Swing { low_scale, .. } => {
                if is_low {
                    low_scale
                } else {
                    1.0
                }
            }
            Variability::Drift { per_iter, .. } => (1.0 + per_iter).powi(iteration as i32),
        }
    }

    /// The jitter magnitude.
    pub fn jitter(&self) -> f64 {
        match *self {
            Variability::Stable { jitter }
            | Variability::Swing { jitter, .. }
            | Variability::Drift { jitter, .. } => jitter,
        }
    }
}

/// One compute phase ending at a barrier site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// The barrier's program counter (site identifier).
    pub pc: u64,
    /// Mean interval time of the phase (compute + stall of the average
    /// instance) before imbalance spreading.
    pub base_interval: Cycles,
    /// Dirty shared cache lines each thread produces during the phase —
    /// what a deep-sleep flush must write back.
    pub dirty_lines: u32,
    /// Instance-to-instance variability model.
    pub variability: Variability,
}

impl PhaseSpec {
    /// Creates a phase.
    ///
    /// # Panics
    ///
    /// Panics if `base_interval` is zero.
    pub fn new(pc: u64, base_interval: Cycles, dirty_lines: u32, variability: Variability) -> Self {
        assert!(
            base_interval > Cycles::ZERO,
            "phase {pc:#x}: base interval must be positive"
        );
        PhaseSpec {
            pc,
            base_interval,
            dirty_lines,
            variability,
        }
    }
}

/// A complete application model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Application name as in Table 2 ("Volrend", "Radix", …).
    pub name: String,
    /// Problem size string from Table 2 (for the regenerated table).
    pub problem_size: String,
    /// Table 2 barrier imbalance, as a fraction (0.482 for Volrend).
    pub target_imbalance: f64,
    /// One-shot phases executed before the main loop; each site runs once.
    pub setup_phases: Vec<PhaseSpec>,
    /// Phases of the main loop; each site runs `iterations` times.
    pub loop_phases: Vec<PhaseSpec>,
    /// Main-loop iteration count.
    pub iterations: u32,
    /// Skew exponent of the per-thread work distribution: thread work
    /// `X = U^skew` for `U ~ Uniform[0,1)`. Higher skew concentrates the
    /// imbalance in fewer straggler threads.
    pub skew: f64,
}

impl AppSpec {
    /// Total number of dynamic barrier instances.
    pub fn total_instances(&self) -> usize {
        self.setup_phases.len() + self.loop_phases.len() * self.iterations as usize
    }

    /// Number of static barrier sites.
    pub fn total_sites(&self) -> usize {
        self.setup_phases.len() + self.loop_phases.len()
    }

    /// `true` when the app is one of the paper's five *target*
    /// applications (barrier imbalance ≥ 10 %).
    pub fn is_target(&self) -> bool {
        self.target_imbalance >= 0.10
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no phases, duplicate site PCs, a target
    /// imbalance outside `(0, 0.66)` (the model's saturation limit), or a
    /// zero iteration count with loop phases present.
    pub fn validate(&self) {
        assert!(
            self.total_sites() > 0,
            "{}: an application needs at least one barrier",
            self.name
        );
        assert!(
            self.target_imbalance > 0.0 && self.target_imbalance < 0.66,
            "{}: target imbalance {} outside the model's range",
            self.name,
            self.target_imbalance
        );
        if !self.loop_phases.is_empty() {
            assert!(
                self.iterations > 0,
                "{}: loop phases present but zero iterations",
                self.name
            );
        }
        let mut pcs: Vec<u64> = self
            .setup_phases
            .iter()
            .chain(&self.loop_phases)
            .map(|p| p.pc)
            .collect();
        pcs.sort_unstable();
        let before = pcs.len();
        pcs.dedup();
        assert_eq!(before, pcs.len(), "{}: duplicate barrier PCs", self.name);
        assert!(self.skew >= 1.0, "{}: skew must be >= 1", self.name);
    }
}

impl fmt::Display for AppSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {} sites, {} instances, target imbalance {:.2}%",
            self.name,
            self.problem_size,
            self.total_sites(),
            self.total_instances(),
            self.target_imbalance * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(pc: u64) -> PhaseSpec {
        PhaseSpec::new(
            pc,
            Cycles::from_micros(500),
            32,
            Variability::Stable { jitter: 0.02 },
        )
    }

    fn spec() -> AppSpec {
        AppSpec {
            name: "Test".into(),
            problem_size: "tiny".into(),
            target_imbalance: 0.15,
            setup_phases: vec![phase(1), phase(2)],
            loop_phases: vec![phase(10), phase(11), phase(12)],
            iterations: 4,
            skew: 2.0,
        }
    }

    #[test]
    fn instance_accounting() {
        let s = spec();
        assert_eq!(s.total_sites(), 5);
        assert_eq!(s.total_instances(), 2 + 3 * 4);
        s.validate();
    }

    #[test]
    fn target_classification() {
        let mut s = spec();
        assert!(s.is_target());
        s.target_imbalance = 0.05;
        assert!(!s.is_target());
    }

    #[test]
    #[should_panic(expected = "duplicate barrier PCs")]
    fn duplicate_pcs_rejected() {
        let mut s = spec();
        s.loop_phases.push(phase(1));
        s.validate();
    }

    #[test]
    #[should_panic(expected = "zero iterations")]
    fn zero_iterations_with_loop_rejected() {
        let mut s = spec();
        s.iterations = 0;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "outside the model's range")]
    fn absurd_imbalance_rejected() {
        let mut s = spec();
        s.target_imbalance = 0.9;
        s.validate();
    }

    #[test]
    fn variability_scales() {
        let st = Variability::Stable { jitter: 0.1 };
        assert_eq!(st.base_scale(5, false), 1.0);
        assert_eq!(st.jitter(), 0.1);

        let sw = Variability::Swing {
            low_scale: 0.2,
            low_prob: 0.5,
            jitter: 0.0,
        };
        assert_eq!(sw.base_scale(0, true), 0.2);
        assert_eq!(sw.base_scale(0, false), 1.0);

        let dr = Variability::Drift {
            per_iter: 0.1,
            jitter: 0.0,
        };
        assert!((dr.base_scale(2, false) - 1.21).abs() < 1e-12);
        assert_eq!(dr.base_scale(0, false), 1.0);
    }

    #[test]
    #[should_panic(expected = "base interval must be positive")]
    fn zero_interval_rejected() {
        let _ = PhaseSpec::new(1, Cycles::ZERO, 0, Variability::Stable { jitter: 0.0 });
    }

    #[test]
    fn display_summarizes() {
        let s = spec().to_string();
        assert!(s.contains("Test"));
        assert!(s.contains("15.00%"));
    }
}
