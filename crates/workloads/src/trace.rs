//! Deterministic trace generation.
//!
//! A trace is the fully materialized list of barrier episodes: for every
//! dynamic barrier instance, the compute duration of each thread in the
//! phase leading to it. Generation is a pure function of (spec, threads,
//! seed), so every experiment in the repository replays exactly.
//!
//! The per-thread work model within one phase instance is
//!
//! ```text
//! T(thread) = base · scale(instance) · ((1 − w) + w · X(thread))
//! ```
//!
//! with `X = U^skew` for `U ~ Uniform[0,1)` drawn independently per
//! (instance, thread) — so the straggler identity shifts across instances,
//! which is precisely why *direct* BST prediction is hard while the
//! interval (`max T`) stays stable (§3.2, Figure 3). The spread `w ∈ [0,1)`
//! is calibrated by [`crate::calibrate`] so the trace's measured imbalance
//! matches Table 2.

use crate::calibrate::calibrate_spread;
use crate::spec::{AppSpec, PhaseSpec, Variability};
use serde::{Deserialize, Serialize};
use tb_sim::{Cycles, SimRng};

/// One barrier episode: a phase instance and each thread's compute time in
/// it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// The barrier site ending the phase.
    pub pc: u64,
    /// Per-thread compute duration for this interval.
    pub compute: Vec<Cycles>,
    /// Dirty shared lines each thread produced during the phase.
    pub dirty_lines: u32,
}

impl TraceStep {
    /// The phase's interval floor: the slowest thread's compute time (the
    /// true interval also includes barrier entry/exit overheads).
    pub fn max_compute(&self) -> Cycles {
        self.compute.iter().copied().max().unwrap_or(Cycles::ZERO)
    }

    /// A thread's stall in a perfectly-synchronized execution.
    pub fn ideal_stall(&self, thread: usize) -> Cycles {
        self.max_compute() - self.compute[thread]
    }
}

/// A fully materialized application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppTrace {
    /// The application's name.
    pub app_name: String,
    /// Thread (= processor) count.
    pub threads: usize,
    /// Barrier episodes in execution order.
    pub steps: Vec<TraceStep>,
    /// The calibrated spread `w` that hit the target imbalance.
    pub spread: f64,
}

impl AppTrace {
    /// The barrier imbalance of this trace under ideal (zero-overhead)
    /// barriers: total stall time over total CPU time.
    pub fn analytic_imbalance(&self) -> f64 {
        let mut stall = 0.0;
        let mut total = 0.0;
        for step in &self.steps {
            let max = step.max_compute().as_u64() as f64;
            for c in &step.compute {
                stall += max - c.as_u64() as f64;
                total += max;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            stall / total
        }
    }

    /// Wall-clock time of an ideal execution: the sum of interval floors.
    pub fn ideal_duration(&self) -> Cycles {
        self.steps.iter().map(|s| s.max_compute()).sum()
    }

    /// Returns a copy of the trace with preemption/I-O disturbances
    /// injected (§3.4.2 of the paper): with probability `prob` per episode,
    /// one randomly chosen thread's compute time is extended by `delay`.
    ///
    /// The last thread to arrive then measures an inordinately long BIT,
    /// which the underprediction filter should refuse to install in the
    /// prediction table.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn with_disturbance(&self, seed: u64, prob: f64, delay: Cycles) -> AppTrace {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0,1]");
        let mut rng = SimRng::new(seed).derive("disturbance", 0);
        let mut out = self.clone();
        for step in &mut out.steps {
            if rng.chance(prob) {
                let victim = rng.below(step.compute.len() as u64) as usize;
                step.compute[victim] += delay;
            }
        }
        out
    }

    /// Number of barrier episodes.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the trace has no episodes.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Generates one phase instance's per-thread compute times.
pub(crate) fn instance_compute(
    phase: &PhaseSpec,
    iteration: u32,
    threads: usize,
    spread: f64,
    skew: f64,
    rng: &mut SimRng,
) -> Vec<Cycles> {
    let is_low = match phase.variability {
        Variability::Swing { low_prob, .. } => rng.chance(low_prob),
        _ => false,
    };
    let jitter = phase.variability.jitter();
    let jitter_scale = if jitter > 0.0 {
        (1.0 + rng.normal(0.0, jitter)).max(0.05)
    } else {
        1.0
    };
    let scale = phase.variability.base_scale(iteration, is_low) * jitter_scale;
    let base = phase.base_interval.as_u64() as f64 * scale;
    (0..threads)
        .map(|_| {
            let x = rng.uniform().powf(skew);
            let t = base * ((1.0 - spread) + spread * x);
            Cycles::new(t.max(1.0).round() as u64)
        })
        .collect()
}

impl AppSpec {
    /// Generates the deterministic trace of this application for `threads`
    /// processors from `seed`, calibrating the imbalance spread so the
    /// trace matches the Table 2 target.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`AppSpec::validate`] or `threads < 2`.
    pub fn generate(&self, threads: usize, seed: u64) -> AppTrace {
        self.validate();
        assert!(threads >= 2, "imbalance needs at least two threads");
        let spread = calibrate_spread(self, threads, seed);
        self.generate_with_spread(threads, seed, spread)
    }

    /// Like [`AppSpec::generate`], but returns the trace behind an
    /// [`Arc`](std::sync::Arc) so experiment harnesses can hand one
    /// materialized trace to many concurrent consumers (the full config
    /// matrix, replicated seeds) without cloning the step list.
    pub fn generate_shared(&self, threads: usize, seed: u64) -> std::sync::Arc<AppTrace> {
        std::sync::Arc::new(self.generate(threads, seed))
    }

    /// Generates the trace with an explicit spread (used by calibration
    /// itself and by tests).
    pub fn generate_with_spread(&self, threads: usize, seed: u64, spread: f64) -> AppTrace {
        let root = SimRng::new(seed).derive(&self.name, 0);
        let mut steps = Vec::with_capacity(
            self.setup_phases.len() + self.loop_phases.len() * self.iterations as usize,
        );
        for (i, phase) in self.setup_phases.iter().enumerate() {
            let mut rng = root.derive("setup", i as u64);
            steps.push(TraceStep {
                pc: phase.pc,
                compute: instance_compute(phase, 0, threads, spread, self.skew, &mut rng),
                dirty_lines: phase.dirty_lines,
            });
        }
        for iter in 0..self.iterations {
            for (p, phase) in self.loop_phases.iter().enumerate() {
                let mut rng = root.derive("loop", (iter as u64) << 16 | p as u64);
                steps.push(TraceStep {
                    pc: phase.pc,
                    compute: instance_compute(phase, iter, threads, spread, self.skew, &mut rng),
                    dirty_lines: phase.dirty_lines,
                });
            }
        }
        AppTrace {
            app_name: self.name.clone(),
            threads,
            steps,
            spread,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AppSpec {
        AppSpec {
            name: "T".into(),
            problem_size: "x".into(),
            target_imbalance: 0.16,
            setup_phases: vec![PhaseSpec::new(
                1,
                Cycles::from_micros(300),
                16,
                Variability::Stable { jitter: 0.0 },
            )],
            loop_phases: vec![
                PhaseSpec::new(
                    10,
                    Cycles::from_micros(800),
                    32,
                    Variability::Stable { jitter: 0.02 },
                ),
                PhaseSpec::new(
                    11,
                    Cycles::from_micros(400),
                    32,
                    Variability::Stable { jitter: 0.02 },
                ),
            ],
            iterations: 10,
            skew: 2.0,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec();
        let a = s.generate(16, 7);
        let b = s.generate(16, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn generate_shared_matches_generate() {
        let s = spec();
        let owned = s.generate(8, 7);
        let shared = s.generate_shared(8, 7);
        assert_eq!(*shared, owned);
        // Cloning the handle shares the allocation rather than the steps.
        let other = std::sync::Arc::clone(&shared);
        assert!(std::sync::Arc::ptr_eq(&shared, &other));
    }

    #[test]
    fn different_seeds_differ() {
        let s = spec();
        let a = s.generate(16, 7);
        let b = s.generate(16, 8);
        assert_ne!(a.steps, b.steps);
    }

    #[test]
    fn step_layout_matches_spec() {
        let s = spec();
        let t = s.generate(8, 1);
        assert_eq!(t.len(), 1 + 2 * 10);
        assert_eq!(t.steps[0].pc, 1);
        assert_eq!(t.steps[1].pc, 10);
        assert_eq!(t.steps[2].pc, 11);
        assert_eq!(t.steps[3].pc, 10);
        assert!(t.steps.iter().all(|st| st.compute.len() == 8));
        assert!(!t.is_empty());
    }

    #[test]
    fn calibration_hits_target() {
        let s = spec();
        let t = s.generate(64, 3);
        assert!(
            (t.analytic_imbalance() - 0.16).abs() < 0.015,
            "calibrated imbalance {} vs target 0.16",
            t.analytic_imbalance()
        );
    }

    #[test]
    fn spread_zero_is_perfectly_balanced() {
        let s = spec();
        let t = s.generate_with_spread(8, 1, 0.0);
        assert!(t.analytic_imbalance() < 1e-9);
        for step in &t.steps {
            let first = step.compute[0];
            assert!(step.compute.iter().all(|&c| c == first));
        }
    }

    #[test]
    fn imbalance_monotone_in_spread() {
        let s = spec();
        let low = s.generate_with_spread(32, 1, 0.2).analytic_imbalance();
        let high = s.generate_with_spread(32, 1, 0.8).analytic_imbalance();
        assert!(low < high);
    }

    #[test]
    fn ideal_stall_and_duration() {
        let s = spec();
        let t = s.generate(4, 2);
        let step = &t.steps[0];
        let max = step.max_compute();
        for (i, &c) in step.compute.iter().enumerate() {
            assert_eq!(step.ideal_stall(i), max - c);
        }
        assert_eq!(
            t.ideal_duration(),
            t.steps.iter().map(|s| s.max_compute()).sum::<Cycles>()
        );
    }

    #[test]
    fn pc_indexed_interval_is_stable_but_bst_is_not() {
        // The Figure 3 phenomenon: per-site interval CV is small, while a
        // single thread's stall varies a lot across instances of the site.
        let s = spec();
        let t = s.generate(64, 5);
        let mut intervals = tb_sim::OnlineStats::new();
        let mut stalls = tb_sim::OnlineStats::new();
        for step in t.steps.iter().filter(|st| st.pc == 10) {
            intervals.push(step.max_compute().as_u64() as f64);
            stalls.push(step.ideal_stall(3).as_u64() as f64);
        }
        assert!(
            intervals.cv() < 0.5 * stalls.cv(),
            "interval CV {} should be well below BST CV {}",
            intervals.cv(),
            stalls.cv()
        );
    }

    #[test]
    fn swing_produces_bimodal_intervals() {
        let mut s = spec();
        s.loop_phases = vec![PhaseSpec::new(
            20,
            Cycles::from_micros(1000),
            16,
            Variability::Swing {
                low_scale: 0.1,
                low_prob: 0.5,
                jitter: 0.0,
            },
        )];
        s.iterations = 40;
        let t = s.generate_with_spread(8, 9, 0.3);
        let mut low = 0;
        let mut high = 0;
        for step in &t.steps[1..] {
            if step.max_compute() < Cycles::from_micros(500) {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 5, "short instances occur ({low})");
        assert!(high > 5, "long instances occur ({high})");
    }

    #[test]
    #[should_panic(expected = "at least two threads")]
    fn single_thread_rejected() {
        spec().generate(1, 0);
    }

    #[test]
    fn disturbance_extends_some_episodes() {
        let s = spec();
        let t = s.generate(8, 3);
        let d = t.with_disturbance(7, 0.5, Cycles::from_millis(50));
        assert_eq!(d.len(), t.len());
        let extended = t
            .steps
            .iter()
            .zip(&d.steps)
            .filter(|(a, b)| b.max_compute() > a.max_compute())
            .count();
        assert!(extended > 2, "some episodes disturbed ({extended})");
        assert!(extended < t.len(), "not all episodes disturbed");
        // Undisturbed episodes are bit-identical.
        assert!(t.steps.iter().zip(&d.steps).any(|(a, b)| a == b));
    }

    #[test]
    fn disturbance_probability_zero_is_identity() {
        let t = spec().generate(8, 3);
        assert_eq!(t.with_disturbance(1, 0.0, Cycles::from_millis(1)), t);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn disturbance_rejects_bad_probability() {
        let t = spec().generate(8, 3);
        let _ = t.with_disturbance(1, 1.5, Cycles::ZERO);
    }
}
