#![warn(missing_docs)]
//! Synthetic SPLASH-2-like barrier workloads (Table 2 of the paper).
//!
//! The paper evaluates on ten SPLASH-2 applications; what the thrifty
//! barrier actually *sees* of an application is its barrier structure:
//! which static barrier sites execute, how often, how long the compute
//! phases between them run, how that work is distributed across threads
//! (the *barrier imbalance*), how stable each site's interval time is
//! across dynamic instances, and how much dirty shared data each phase
//! leaves in the caches. This crate reproduces exactly those statistics:
//!
//! * [`spec`] — application descriptions: phases with base interval times,
//!   per-instance variability models (stable / swinging / drifting), and
//!   dirty-line footprints.
//! * [`calibrate`] — solves each application's imbalance knob so that the
//!   generated trace's *measured* baseline barrier imbalance matches the
//!   paper's Table 2 value (Volrend 48.2 % … Radiosity 1.04 %).
//! * [`apps`] — the ten application models, with each app's documented
//!   quirks: Ocean's swinging interval times that defeat last-value
//!   prediction, FFT's and Cholesky's handful of *non-repeating* barriers
//!   that leave the PC-indexed predictor unused, Volrend's huge intervals.
//! * [`trace`] — deterministic generation of per-(phase, instance, thread)
//!   compute durations from a seed.
//!
//! # Examples
//!
//! ```
//! use tb_workloads::AppSpec;
//!
//! let fmm = AppSpec::by_name("FMM").unwrap();
//! let trace = fmm.generate(64, 42);
//! // The calibrated trace matches Table 2's imbalance for FMM (16.56%).
//! assert!((trace.analytic_imbalance() - 0.1656).abs() < 0.02);
//! ```

pub mod apps;
pub mod calibrate;
pub mod spec;
pub mod trace;

pub use spec::{AppSpec, PhaseSpec, Variability};
pub use trace::{AppTrace, TraceStep};
