//! Property-based tests of workload generation and calibration.

use proptest::prelude::*;
use tb_sim::Cycles;
use tb_workloads::{AppSpec, PhaseSpec, Variability};

fn arb_spec() -> impl Strategy<Value = AppSpec> {
    (
        1usize..4,     // loop phases
        1u32..12,      // iterations
        100u64..5_000, // base interval µs
        0.02f64..0.40, // target imbalance
        1.0f64..3.0,   // skew
    )
        .prop_map(|(phases, iterations, base_us, target, skew)| AppSpec {
            name: "Prop".into(),
            problem_size: "prop".into(),
            target_imbalance: target,
            setup_phases: vec![],
            loop_phases: (0..phases)
                .map(|i| {
                    PhaseSpec::new(
                        0x100 + i as u64,
                        Cycles::from_micros(base_us + i as u64 * 100),
                        8,
                        Variability::Stable { jitter: 0.02 },
                    )
                })
                .collect(),
            iterations,
            skew,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generation is a pure function of (spec, threads, seed).
    #[test]
    fn generation_deterministic(spec in arb_spec(), seed in any::<u64>()) {
        let a = spec.generate(8, seed);
        let b = spec.generate(8, seed);
        prop_assert_eq!(a, b);
    }

    /// The trace layout always matches the spec: episode count, per-step
    /// thread count, positive compute times, and PCs cycling through the
    /// loop phases.
    #[test]
    fn trace_layout_matches_spec(spec in arb_spec(), seed in any::<u64>()) {
        let threads = 8;
        let t = spec.generate(threads, seed);
        prop_assert_eq!(t.len(), spec.total_instances());
        for (i, step) in t.steps.iter().enumerate() {
            prop_assert_eq!(step.compute.len(), threads);
            prop_assert!(step.compute.iter().all(|&c| c > Cycles::ZERO));
            let phase = &spec.loop_phases[i % spec.loop_phases.len()];
            prop_assert_eq!(step.pc, phase.pc);
            prop_assert_eq!(step.dirty_lines, phase.dirty_lines);
        }
    }

    /// Calibration hits the requested Table-2-style imbalance within one
    /// percentage point for any feasible spec.
    #[test]
    fn calibration_converges(spec in arb_spec(), seed in any::<u64>()) {
        let t = spec.generate(32, seed);
        prop_assert!(
            (t.analytic_imbalance() - spec.target_imbalance).abs() < 0.01,
            "target {} got {}",
            spec.target_imbalance,
            t.analytic_imbalance()
        );
        prop_assert!((0.0..1.0).contains(&t.spread));
    }

    /// Imbalance is monotone in the spread knob.
    #[test]
    fn imbalance_monotone_in_spread(
        spec in arb_spec(),
        seed in any::<u64>(),
        w1 in 0.0f64..0.99,
        w2 in 0.0f64..0.99,
    ) {
        let (lo, hi) = (w1.min(w2), w1.max(w2));
        prop_assume!(hi - lo > 0.05);
        let a = spec.generate_with_spread(16, seed, lo).analytic_imbalance();
        let b = spec.generate_with_spread(16, seed, hi).analytic_imbalance();
        prop_assert!(a <= b + 1e-9, "imbalance({lo})={a} > imbalance({hi})={b}");
    }

    /// Per-step stall identities: `ideal_stall(t) = max_compute − compute[t]`
    /// and the slowest thread has zero stall.
    #[test]
    fn stall_identities(spec in arb_spec(), seed in any::<u64>()) {
        let t = spec.generate(8, seed);
        for step in &t.steps {
            let max = step.max_compute();
            let mut any_zero = false;
            for (i, &c) in step.compute.iter().enumerate() {
                prop_assert_eq!(step.ideal_stall(i), max - c);
                any_zero |= step.ideal_stall(i) == Cycles::ZERO;
            }
            prop_assert!(any_zero, "the slowest thread stalls zero");
        }
    }

    /// Disturbances only ever lengthen compute times, never shorten them.
    #[test]
    fn disturbance_monotone(spec in arb_spec(), seed in any::<u64>(), prob in 0.0f64..1.0) {
        let t = spec.generate(8, seed);
        let d = t.with_disturbance(seed ^ 1, prob, Cycles::from_millis(10));
        for (a, b) in t.steps.iter().zip(&d.steps) {
            for (ca, cb) in a.compute.iter().zip(&b.compute) {
                prop_assert!(cb >= ca);
            }
        }
    }
}
