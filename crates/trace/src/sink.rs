//! Where captured events go: the [`TraceSink`] trait, a disabled sink, a
//! mutex-guarded in-memory sink for the simulator, and a lock-free
//! per-thread sink for the real-threads runtime.

use crate::event::TraceEvent;
use crate::ring::{EventRing, SpscRing};
use std::sync::{Arc, Mutex};

/// Destination for trace events.
///
/// Producers call [`record`](TraceSink::record) from their hot paths, so
/// implementations must be cheap and must never block for long; sinks with
/// bounded storage drop events (and count the drops) rather than stall the
/// workload.
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn record(&self, ev: TraceEvent);

    /// Whether this sink wants events at all. Producers may (but need not)
    /// skip event construction when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that discards everything. Exists mostly for overhead
/// measurements; production code expresses "tracing off" as a
/// [`SinkHandle::disabled`] handle instead, which skips even the virtual
/// call.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A cheap, cloneable, optional reference to a sink.
///
/// This is what instrumented components embed. The default handle is
/// disabled: `emit` is then a single `Option` test with no virtual call, so
/// instrumentation costs nearly nothing when tracing is off.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Arc<dyn TraceSink>>);

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SinkHandle")
            .field(&if self.0.is_some() {
                "attached"
            } else {
                "disabled"
            })
            .finish()
    }
}

impl SinkHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        SinkHandle(None)
    }

    /// Wraps a concrete sink.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        SinkHandle(Some(sink))
    }

    /// Whether events will actually be kept.
    pub fn is_enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|s| s.enabled())
    }

    /// Records one event if a sink is attached.
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.record(ev);
        }
    }
}

impl From<Arc<dyn TraceSink>> for SinkHandle {
    fn from(sink: Arc<dyn TraceSink>) -> Self {
        SinkHandle::new(sink)
    }
}

/// An in-memory sink with one mutex-guarded [`EventRing`] per thread.
///
/// Suited to the discrete-event simulator, where `record` is called from a
/// single driver thread and the per-thread mutexes are never contended.
#[derive(Debug)]
pub struct MemorySink {
    rings: Vec<Mutex<EventRing>>,
}

impl MemorySink {
    /// Creates a sink for `threads` threads with `capacity_per_thread`
    /// events of storage each.
    pub fn new(threads: usize, capacity_per_thread: usize) -> Self {
        MemorySink {
            rings: (0..threads)
                .map(|_| Mutex::new(EventRing::new(capacity_per_thread)))
                .collect(),
        }
    }

    /// Total events dropped across all threads.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.lock().unwrap().dropped()).sum()
    }

    /// Collects every retained event, sorted by timestamp (ties broken by
    /// thread index for determinism).
    pub fn drain_sorted(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for ring in &self.rings {
            all.extend(ring.lock().unwrap().to_vec());
        }
        all.sort_by_key(|ev| (ev.at, ev.thread));
        all
    }
}

impl TraceSink for MemorySink {
    fn record(&self, ev: TraceEvent) {
        if let Some(ring) = self.rings.get(ev.thread as usize) {
            ring.lock().unwrap().push(ev);
        }
    }
}

/// A lock-free sink with one [`SpscRing`] per thread, for the real-threads
/// runtime.
///
/// Routing is by `ev.thread`, and every producer emits only events stamped
/// with its own thread index (the algorithm emits on the calling thread),
/// so each ring sees exactly one producer — the SPSC contract holds without
/// any locking on the record path.
#[derive(Debug)]
pub struct SpscSink {
    rings: Vec<SpscRing>,
}

impl SpscSink {
    /// Creates a sink for `threads` threads with `capacity_per_thread`
    /// events of storage each.
    pub fn new(threads: usize, capacity_per_thread: usize) -> Self {
        SpscSink {
            rings: (0..threads)
                .map(|_| SpscRing::new(capacity_per_thread))
                .collect(),
        }
    }

    /// Total events dropped across all threads.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Drains every ring (single consumer: call after the traced section
    /// has quiesced), sorted by timestamp with thread-index tie-breaks.
    pub fn drain_sorted(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for ring in &self.rings {
            all.extend(ring.drain());
        }
        all.sort_by_key(|ev| (ev.at, ev.thread));
        all
    }
}

impl TraceSink for SpscSink {
    fn record(&self, ev: TraceEvent) {
        if let Some(ring) = self.rings.get(ev.thread as usize) {
            ring.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;
    use tb_sim::Cycles;

    fn ev(t: u64, thread: usize) -> TraceEvent {
        TraceEvent::new(
            Cycles::new(t),
            thread,
            TraceEventKind::SpinStart { episode: t, pc: 1 },
        )
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = SinkHandle::default();
        assert!(!h.is_enabled());
        h.emit(ev(1, 0)); // no-op, must not panic
        assert_eq!(format!("{h:?}"), "SinkHandle(\"disabled\")");
    }

    #[test]
    fn null_sink_reports_disabled() {
        let h = SinkHandle::new(Arc::new(NullSink));
        assert!(!h.is_enabled());
        h.emit(ev(1, 0));
    }

    #[test]
    fn memory_sink_routes_and_sorts() {
        let sink = Arc::new(MemorySink::new(2, 8));
        let h = SinkHandle::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        assert!(h.is_enabled());
        h.emit(ev(5, 1));
        h.emit(ev(3, 0));
        h.emit(ev(5, 0));
        h.emit(ev(9, 99)); // out-of-range thread is ignored
        let drained = sink.drain_sorted();
        let order: Vec<(u64, u32)> = drained.iter().map(|e| (e.at.as_u64(), e.thread)).collect();
        assert_eq!(order, vec![(3, 0), (5, 0), (5, 1)]);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn memory_sink_counts_drops() {
        let sink = MemorySink::new(1, 2);
        for i in 0..5 {
            sink.record(ev(i, 0));
        }
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.drain_sorted().len(), 2);
    }

    #[test]
    fn spsc_sink_routes_per_thread() {
        let sink = Arc::new(SpscSink::new(4, 128));
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        sink.record(ev(i, tid));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let drained = sink.drain_sorted();
        assert_eq!(drained.len(), 400);
        assert_eq!(sink.dropped(), 0);
        assert!(drained.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
