//! Fixed-capacity event storage: a plain ring buffer for single-threaded
//! capture and a lock-free single-producer/single-consumer ring for the
//! real-threads runtime.

use crate::event::TraceEvent;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A fixed-capacity ring buffer of trace events that overwrites the oldest
/// entry when full, counting how many were lost.
///
/// Capture must never block or grow, so under pressure the *oldest* events
/// are sacrificed: the tail of a run (where mispredictions accumulate) is
/// usually the interesting part.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the next slot to write (wraps).
    next: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            dropped: 0,
        }
    }

    /// Appends one event, overwriting the oldest when full. Never
    /// allocates once the ring has filled.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events in recording order (oldest first).
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

/// A lock-free single-producer/single-consumer event ring for the
/// real-threads runtime: the owning thread pushes without taking any lock,
/// and a quiesced-time reader drains.
///
/// Unlike [`EventRing`], a full SPSC ring drops the *newest* event
/// (overwriting the oldest under a concurrent reader is not possible
/// without locks), again counting losses.
#[derive(Debug)]
pub struct SpscRing {
    buf: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    /// Next sequence number to write; owned by the producer.
    head: AtomicUsize,
    /// Next sequence number to read; owned by the consumer.
    tail: AtomicUsize,
    /// Events rejected because the ring was full.
    dropped: AtomicU64,
}

// SAFETY: slots between `tail` and `head` are initialized and only touched
// by the consumer; slots outside that window only by the producer. The
// Release store of `head` in `push` publishes the slot write to the
// consumer's Acquire load, and symmetrically for `tail`.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

impl SpscRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let buf: Vec<UnsafeCell<MaybeUninit<TraceEvent>>> = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        SpscRing {
            buf: buf.into_boxed_slice(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one event. Must only be called from the single producer
    /// thread. Returns `false` (and counts a drop) when the ring is full.
    #[inline]
    pub fn push(&self, ev: TraceEvent) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) == self.buf.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let slot = &self.buf[head % self.buf.len()];
        // SAFETY: the slot is outside the reader's window (see type-level
        // safety comment), and we are the only producer.
        unsafe { (*slot.get()).write(ev) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Removes the oldest event. Must only be called from the single
    /// consumer thread.
    #[inline]
    pub fn pop(&self) -> Option<TraceEvent> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let slot = &self.buf[tail % self.buf.len()];
        // SAFETY: `tail < head`, so the producer has initialized this slot
        // and published it with its Release store of `head`.
        let ev = unsafe { (*slot.get()).assume_init() };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Some(ev)
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Acquire)
            .wrapping_sub(self.tail.load(Ordering::Acquire))
    }

    /// `true` when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains everything currently buffered (consumer side).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;
    use tb_sim::Cycles;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::new(
            Cycles::new(i),
            0,
            TraceEventKind::SpinStart { episode: i, pc: 1 },
        )
    }

    #[test]
    fn ring_keeps_newest_when_full() {
        let mut r = EventRing::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let kept: Vec<u64> = r.to_vec().iter().map(|e| e.at.as_u64()).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest overwritten, order kept");
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut r = EventRing::new(8);
        assert!(r.is_empty());
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_vec().len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = EventRing::new(0);
    }

    #[test]
    fn spsc_single_thread_fifo() {
        let r = SpscRing::new(4);
        for i in 0..4 {
            assert!(r.push(ev(i)));
        }
        assert!(!r.push(ev(99)), "full ring rejects");
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.len(), 4);
        let drained: Vec<u64> = r.drain().iter().map(|e| e.at.as_u64()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        assert!(r.is_empty());
        // Reusable after draining.
        assert!(r.push(ev(5)));
        assert_eq!(r.pop().unwrap().at, Cycles::new(5));
    }

    #[test]
    fn spsc_cross_thread_transfers_everything() {
        use std::sync::Arc;
        let r = Arc::new(SpscRing::new(64));
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..10_000 {
                    if r.push(ev(i)) {
                        pushed += 1;
                    }
                }
                pushed
            })
        };
        let mut got: Vec<u64> = Vec::new();
        while !producer.is_finished() {
            while let Some(e) = r.pop() {
                got.push(e.at.as_u64());
            }
        }
        let pushed = producer.join().unwrap();
        while let Some(e) = r.pop() {
            got.push(e.at.as_u64());
        }
        assert_eq!(got.len() as u64, pushed);
        assert_eq!(pushed + r.dropped(), 10_000);
        // FIFO order is preserved.
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }
}
