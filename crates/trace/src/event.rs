//! The trace event vocabulary: one `Copy` record per barrier-lifecycle
//! step, so recording never allocates on the hot path.

use serde::{Deserialize, Serialize};
use tb_sim::Cycles;

/// The class of an injected fault (see `tb-faults`). Lives here so every
/// layer that records a [`TraceEventKind::FaultInjected`] event shares one
/// vocabulary without depending on the injection crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A barrier-flag invalidation wake-up signal was dropped.
    LostWakeup,
    /// A barrier-flag invalidation wake-up signal was delivered late.
    DelayedWakeup,
    /// A countdown timer drifted from its programmed target.
    TimerDrift,
    /// A countdown timer fired spuriously early.
    SpuriousTimer,
    /// A sleep-state exit transition stalled past its rated latency.
    Oversleep,
    /// A real-threads `unpark` analog was delayed.
    DelayedUnpark,
    /// A guard timer wedged permanently: instead of rescuing its thread it
    /// went dead, leaving the thread stuck until the harness watchdog
    /// trips.
    WedgedGuard,
}

impl FaultKind {
    /// A stable short name for grouping and export.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LostWakeup => "lost_wakeup",
            FaultKind::DelayedWakeup => "delayed_wakeup",
            FaultKind::TimerDrift => "timer_drift",
            FaultKind::SpuriousTimer => "spurious_timer",
            FaultKind::Oversleep => "oversleep",
            FaultKind::DelayedUnpark => "delayed_unpark",
            FaultKind::WedgedGuard => "wedged_guard",
        }
    }
}

/// What happened at one point of a barrier episode.
///
/// Two producers share this vocabulary with disjoint kinds:
///
/// * the **algorithm** (`tb-core`) emits the semantic events `Prediction`,
///   `Release`, and `CutoffDisable`, stamping `episode` with the *per-site
///   dynamic instance*;
/// * the **executors** (`tb-machine`'s simulator, `tb-runtime`'s
///   real-threads barrier) emit the physical events (arrival, sleep/spin,
///   flush, wake-ups, departure), stamping `episode` with their own episode
///   index (the global trace step in the simulator, the per-site instance
///   in the runtime).
///
/// Within a producer the numbering is consistent, and every kind that needs
/// cross-referencing also carries the site `pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A thread checked in at the barrier (`last` marks the releaser).
    Arrival {
        /// Episode index (see type-level docs).
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// Whether this arrival released the barrier.
        last: bool,
    },
    /// The predictor produced a usable BIT prediction for an early arrival.
    Prediction {
        /// Per-site dynamic instance the prediction is for.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// The predicted barrier interval time.
        predicted_bit: Cycles,
        /// The derived predicted stall (BST).
        predicted_stall: Cycles,
    },
    /// An early arrival chose to sleep.
    SleepStart {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// Index of the chosen sleep state in the sleep table.
        state: u32,
        /// Whether the state required flushing dirty shared lines.
        needs_flush: bool,
    },
    /// An early arrival chose to spin conventionally.
    SpinStart {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
    },
    /// Dirty shared lines were written back before a non-snoopable sleep.
    Flush {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// Lines written back.
        lines: u64,
        /// Time the write-back took.
        duration: Cycles,
    },
    /// A sleeping thread's internal timer fired.
    InternalWake {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
    },
    /// A sleeping thread was woken by the release invalidation.
    ExternalWake {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
    },
    /// A sleeping thread took a spurious wake-up signal (§3.3.1).
    FalseWake {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
    },
    /// A thread woke before the release and fell into the residual spin.
    ResidualSpin {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
    },
    /// The last arrival released the barrier and published the measured
    /// BIT.
    Release {
        /// Per-site dynamic instance just released.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// The measured barrier interval time.
        measured_bit: Cycles,
        /// Whether the §3.4.2 underprediction filter skipped the predictor
        /// update for this measurement.
        update_skipped: bool,
    },
    /// A thread left the barrier (awake and past the release).
    Depart {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// How long after the release the thread departed (zero for the
        /// releaser and for on-time wake-ups).
        wake_latency: Cycles,
    },
    /// The §3.3.3 overprediction cut-off disabled prediction for this
    /// (thread, site).
    CutoffDisable {
        /// Per-site dynamic instance that tripped the cut-off.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// The overprediction penalty that tripped it.
        penalty: Cycles,
    },
    /// The fault-injection layer perturbed this thread's episode.
    FaultInjected {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// Which failure was injected.
        fault: FaultKind,
    },
    /// The guard timer rescued a thread whose primary wake-up path failed.
    GuardRecovery {
        /// Episode index.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// Whether the thread was asleep (vs. stuck spinning on a stale
        /// flag copy) when the guard fired.
        slept: bool,
    },
    /// A barrier site entered (`entered`) or left predictor quarantine.
    Quarantine {
        /// Per-site dynamic instance at the transition.
        episode: u64,
        /// Barrier site PC.
        pc: u64,
        /// `true` on entry (predictions suppressed), `false` on release
        /// (confidence rebuilt).
        entered: bool,
    },
    /// The sweep supervisor re-ran a transiently failed cell. Emitted by
    /// the harness, not the simulator: `episode` carries the cell's index
    /// within the sweep and `pc` is always zero (no barrier site).
    CellRetry {
        /// Cell index within the sweep (not a barrier episode).
        episode: u64,
        /// Unused for supervisor events; always zero.
        pc: u64,
        /// The attempt number about to run (1 = first retry).
        attempt: u32,
        /// Whether the failed attempt timed out (vs. panicked).
        timed_out: bool,
    },
}

impl TraceEventKind {
    /// A stable short name for grouping and export.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Arrival { .. } => "arrival",
            TraceEventKind::Prediction { .. } => "prediction",
            TraceEventKind::SleepStart { .. } => "sleep_start",
            TraceEventKind::SpinStart { .. } => "spin_start",
            TraceEventKind::Flush { .. } => "flush",
            TraceEventKind::InternalWake { .. } => "internal_wake",
            TraceEventKind::ExternalWake { .. } => "external_wake",
            TraceEventKind::FalseWake { .. } => "false_wake",
            TraceEventKind::ResidualSpin { .. } => "residual_spin",
            TraceEventKind::Release { .. } => "release",
            TraceEventKind::Depart { .. } => "depart",
            TraceEventKind::CutoffDisable { .. } => "cutoff_disable",
            TraceEventKind::FaultInjected { .. } => "fault_injected",
            TraceEventKind::GuardRecovery { .. } => "guard_recovery",
            TraceEventKind::Quarantine { .. } => "quarantine",
            TraceEventKind::CellRetry { .. } => "cell_retry",
        }
    }

    /// The episode index carried by the event.
    pub fn episode(&self) -> u64 {
        match *self {
            TraceEventKind::Arrival { episode, .. }
            | TraceEventKind::Prediction { episode, .. }
            | TraceEventKind::SleepStart { episode, .. }
            | TraceEventKind::SpinStart { episode, .. }
            | TraceEventKind::Flush { episode, .. }
            | TraceEventKind::InternalWake { episode, .. }
            | TraceEventKind::ExternalWake { episode, .. }
            | TraceEventKind::FalseWake { episode, .. }
            | TraceEventKind::ResidualSpin { episode, .. }
            | TraceEventKind::Release { episode, .. }
            | TraceEventKind::Depart { episode, .. }
            | TraceEventKind::CutoffDisable { episode, .. }
            | TraceEventKind::FaultInjected { episode, .. }
            | TraceEventKind::GuardRecovery { episode, .. }
            | TraceEventKind::Quarantine { episode, .. }
            | TraceEventKind::CellRetry { episode, .. } => episode,
        }
    }

    /// The barrier site PC carried by the event.
    pub fn pc(&self) -> u64 {
        match *self {
            TraceEventKind::Arrival { pc, .. }
            | TraceEventKind::Prediction { pc, .. }
            | TraceEventKind::SleepStart { pc, .. }
            | TraceEventKind::SpinStart { pc, .. }
            | TraceEventKind::Flush { pc, .. }
            | TraceEventKind::InternalWake { pc, .. }
            | TraceEventKind::ExternalWake { pc, .. }
            | TraceEventKind::FalseWake { pc, .. }
            | TraceEventKind::ResidualSpin { pc, .. }
            | TraceEventKind::Release { pc, .. }
            | TraceEventKind::Depart { pc, .. }
            | TraceEventKind::CutoffDisable { pc, .. }
            | TraceEventKind::FaultInjected { pc, .. }
            | TraceEventKind::GuardRecovery { pc, .. }
            | TraceEventKind::Quarantine { pc, .. }
            | TraceEventKind::CellRetry { pc, .. } => pc,
        }
    }
}

/// One timestamped, thread-attributed trace record. `Copy` and fixed-size
/// so ring-buffer capture never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation (or runtime-clock) timestamp of the event.
    pub at: Cycles,
    /// Dense index of the thread the event belongs to.
    pub thread: u32,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Creates an event.
    pub fn new(at: Cycles, thread: usize, kind: TraceEventKind) -> Self {
        TraceEvent {
            at,
            thread: thread as u32,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_kind() {
        let kinds = [
            TraceEventKind::Arrival {
                episode: 3,
                pc: 7,
                last: false,
            },
            TraceEventKind::Prediction {
                episode: 3,
                pc: 7,
                predicted_bit: Cycles::new(10),
                predicted_stall: Cycles::new(4),
            },
            TraceEventKind::SleepStart {
                episode: 3,
                pc: 7,
                state: 1,
                needs_flush: true,
            },
            TraceEventKind::SpinStart { episode: 3, pc: 7 },
            TraceEventKind::Flush {
                episode: 3,
                pc: 7,
                lines: 5,
                duration: Cycles::new(9),
            },
            TraceEventKind::InternalWake { episode: 3, pc: 7 },
            TraceEventKind::ExternalWake { episode: 3, pc: 7 },
            TraceEventKind::FalseWake { episode: 3, pc: 7 },
            TraceEventKind::ResidualSpin { episode: 3, pc: 7 },
            TraceEventKind::Release {
                episode: 3,
                pc: 7,
                measured_bit: Cycles::new(22),
                update_skipped: false,
            },
            TraceEventKind::Depart {
                episode: 3,
                pc: 7,
                wake_latency: Cycles::new(1),
            },
            TraceEventKind::CutoffDisable {
                episode: 3,
                pc: 7,
                penalty: Cycles::new(2),
            },
            TraceEventKind::FaultInjected {
                episode: 3,
                pc: 7,
                fault: FaultKind::LostWakeup,
            },
            TraceEventKind::GuardRecovery {
                episode: 3,
                pc: 7,
                slept: true,
            },
            TraceEventKind::Quarantine {
                episode: 3,
                pc: 7,
                entered: true,
            },
            TraceEventKind::CellRetry {
                episode: 3,
                pc: 7,
                attempt: 1,
                timed_out: false,
            },
        ];
        let mut names = std::collections::BTreeSet::new();
        for k in kinds {
            assert_eq!(k.episode(), 3);
            assert_eq!(k.pc(), 7);
            names.insert(k.name());
        }
        assert_eq!(names.len(), 16, "names are distinct");
    }

    #[test]
    fn fault_kind_names_are_distinct() {
        let kinds = [
            FaultKind::LostWakeup,
            FaultKind::DelayedWakeup,
            FaultKind::TimerDrift,
            FaultKind::SpuriousTimer,
            FaultKind::Oversleep,
            FaultKind::DelayedUnpark,
            FaultKind::WedgedGuard,
        ];
        let names: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn events_serialize() {
        let ev = TraceEvent::new(
            Cycles::new(42),
            5,
            TraceEventKind::SpinStart { episode: 0, pc: 16 },
        );
        let s = serde::json::to_string(&ev);
        assert!(s.contains("SpinStart"), "{s}");
        assert!(s.contains("42"), "{s}");
    }
}
